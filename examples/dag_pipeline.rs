//! A dependent analytics pipeline, scheduled level by level (§III's DAG
//! leveling): extract → two parallel transforms → aggregate.
//!
//! Compares the end-to-end dollar bill of the pipeline under LiPS vs. the
//! Hadoop default scheduler. Data copies LiPS makes in early levels stay
//! in place for later levels.
//!
//! Run with: cargo run --release --example dag_pipeline

use lips::cluster::ec2_20_node;
use lips::core::dag::run_dag;
use lips::core::{HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips::sim::Scheduler;
use lips::workload::{JobDag, JobId, JobKind, JobSpec};

fn pipeline() -> JobDag {
    let jobs = vec![
        // Level 0: scan the raw logs.
        JobSpec::new(0, "extract-logs", JobKind::Grep, 8.0 * 1024.0, 128),
        // Level 1: two independent transforms over the extract.
        JobSpec::new(1, "sessionize", JobKind::Stress2, 4.0 * 1024.0, 64),
        JobSpec::new(2, "tokenize", JobKind::WordCount, 4.0 * 1024.0, 64),
        // Level 2: the final aggregate.
        JobSpec::new(3, "aggregate", JobKind::WordCount, 2.0 * 1024.0, 32),
    ];
    let edges = vec![
        (JobId(0), JobId(1)),
        (JobId(0), JobId(2)),
        (JobId(1), JobId(3)),
        (JobId(2), JobId(3)),
    ];
    JobDag::new(jobs, edges).expect("valid pipeline")
}

fn main() {
    let dag = pipeline();
    let levels = dag.levels().expect("acyclic");
    println!("Pipeline has {} levels:", levels.len());
    for (i, level) in levels.iter().enumerate() {
        let names: Vec<&str> = dag
            .jobs
            .iter()
            .filter(|j| level.contains(&j.id))
            .map(|j| j.name.as_str())
            .collect();
        println!("  level {i}: {}", names.join(", "));
    }
    println!();

    println!("{:<16} {:>9} {:>14}", "scheduler", "total $", "end-to-end");
    println!("{}", "-".repeat(42));
    for (name, factory) in [
        (
            "lips",
            Box::new(|_: usize| {
                Box::new(LipsScheduler::new(SchedulerConfig::small_cluster(1600.0)))
                    as Box<dyn Scheduler>
            }) as Box<dyn Fn(usize) -> Box<dyn Scheduler>>,
        ),
        (
            "hadoop-default",
            Box::new(|_: usize| Box::new(HadoopDefaultScheduler::new()) as Box<dyn Scheduler>),
        ),
    ] {
        let mut cluster = ec2_20_node(0.5, 1e9);
        let report = run_dag(&mut cluster, &dag, factory, 11).expect("pipeline completes");
        println!(
            "{:<16} {:>9.4} {:>12.0} s",
            name, report.total_dollars, report.makespan
        );
    }
    println!("\nLiPS ships hot inputs toward cheap zones in level 0; levels 1-2 then");
    println!("read the already-moved copies — co-scheduling compounds across levels.");
}
