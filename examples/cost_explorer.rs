//! Cost explorer: should *your* job move its data to cheaper cycles?
//!
//! An interactive-ish version of the paper's Figure 1 break-even calculus
//! (`c·a > c·b + d`). Pass your job's CPU intensity and the two nodes'
//! prices; get the verdict and the sensitivity around it.
//!
//! Usage:
//!   cargo run --release --example cost_explorer -- \
//!       <cpu_sec_per_mb> <src_millicent_per_ecu_s> \
//!       <dst_millicent_per_ecu_s> <transfer_millicent_per_mb>
//!
//! With no arguments, runs a demo over the paper's benchmark kinds.

use lips::cluster::{BLOCK_MB, MILLICENT};
use lips::core::analysis::{break_even_ratio, move_pays_off, savings_per_mb};
use lips::workload::JobKind;

fn main() {
    let args: Vec<f64> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();

    if args.len() == 4 {
        let (c, a_mc, b_mc, d_mc) = (args[0], args[1], args[2], args[3]);
        let (a, b, d) = (a_mc * MILLICENT, b_mc * MILLICENT, d_mc * MILLICENT);
        let save = savings_per_mb(c, a, b, d);
        println!("job intensity: {c} ECU-s/MB");
        println!("source node:   {a_mc} millicent/ECU-s");
        println!("target node:   {b_mc} millicent/ECU-s");
        println!("transfer:      {d_mc} millicent/MB");
        println!();
        if move_pays_off(c, a, b, d) {
            println!(
                "MOVE: you save {:.2} millicents per MB ({:.1} per 64 MB block).",
                save / MILLICENT,
                save * BLOCK_MB / MILLICENT
            );
        } else {
            println!(
                "STAY: moving would *lose* {:.2} millicents per MB.",
                -save / MILLICENT
            );
        }
        let be = break_even_ratio(c, b, d);
        println!(
            "Break-even price ratio a/b for this job: {:.2} (yours is {:.2}).",
            be,
            a / b
        );
        return;
    }

    println!("No (or malformed) arguments — demo mode with the paper's kinds.\n");
    println!("Scenario: data on an m1.medium (5.4 mc/ECU-s), candidate c1.medium");
    println!("(1.1 mc/ECU-s), cross-zone transfer at $0.01/GB.\n");
    let a = 5.4 * MILLICENT;
    let b = 1.1 * MILLICENT;
    let d = 62.5 * MILLICENT / BLOCK_MB;
    for kind in JobKind::ALL {
        let c = kind.tcp_ecu_sec_per_mb();
        let verdict = if kind == JobKind::Pi {
            "MOVE (no data to ship at all)".to_string()
        } else if move_pays_off(c, a, b, d) {
            format!(
                "MOVE  (+{:.1} mc/block)",
                savings_per_mb(c, a, b, d) * BLOCK_MB / MILLICENT
            )
        } else {
            format!(
                "STAY  ({:.1} mc/block loss if moved)",
                -savings_per_mb(c, a, b, d) * BLOCK_MB / MILLICENT
            )
        };
        println!("{:<10} -> {verdict}", kind.name());
    }
}
