//! Quickstart: five minutes with LiPS.
//!
//! Builds a small heterogeneous EC2-like cluster, submits a mixed
//! MapReduce workload, and compares the dollar bill under LiPS vs.
//! Hadoop's default scheduler and the delay scheduler.
//!
//! Run with: `cargo run --release --example quickstart`

use lips::cluster::ec2_20_node;
use lips::core::{DelayScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips::sim::{Placement, Scheduler, Simulation};
use lips::workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

fn main() {
    // A 20-node cluster across three availability zones; half the nodes
    // are c1.medium (fast, cheap per CPU-second), half m1.medium
    // (slow, expensive per CPU-second).
    let make_cluster = || ec2_20_node(0.5, 1e9);

    // A small mixed workload: an I/O-bound grep, a CPU-bound word count,
    // and a pure-CPU Pi estimation.
    let make_jobs = || {
        vec![
            JobSpec::new(0, "grep-logs", JobKind::Grep, 4.0 * 1024.0, 64),
            JobSpec::new(1, "wordcount", JobKind::WordCount, 4.0 * 1024.0, 64),
            JobSpec::new(2, "estimate-pi", JobKind::Pi, 0.0, 8),
        ]
    };

    println!("scheduler        total $   cpu $     transfer $  makespan");
    println!("----------------------------------------------------------");
    let mut lips_cost = 0.0;
    let mut delay_cost = 0.0;
    for (name, mut sched) in [
        // A 1600 s epoch sits at the cost-optimal end of the dial for
        // this workload (see the fig8 binary for the full tradeoff).
        (
            "lips",
            Box::new(LipsScheduler::new(SchedulerConfig::small_cluster(1600.0)))
                as Box<dyn Scheduler>,
        ),
        ("hadoop-default", Box::new(HadoopDefaultScheduler::new())),
        ("delay", Box::new(DelayScheduler::default())),
    ] {
        let mut cluster = make_cluster();
        let workload = bind_workload(&mut cluster, make_jobs(), PlacementPolicy::RoundRobin, 7);
        // Inputs start HDFS-style: blocks spread over the DataNodes.
        let placement = Placement::spread_blocks(&cluster, 7);
        let report = Simulation::new(&cluster, &workload)
            .with_placement(placement)
            .run(sched.as_mut())
            .expect("simulation completes");
        println!(
            "{:<16} {:<9.4} {:<9.4} {:<11.4} {:>6.0} s",
            name,
            report.metrics.total_dollars(),
            report.metrics.cpu_dollars,
            report.metrics.transfer_dollars(),
            report.makespan,
        );
        match name {
            "lips" => lips_cost = report.metrics.total_dollars(),
            "delay" => delay_cost = report.metrics.total_dollars(),
            _ => {}
        }
    }
    println!(
        "\nLiPS saved {:.0}% of the dollar bill vs. the delay scheduler,",
        (1.0 - lips_cost / delay_cost) * 100.0
    );
    println!("trading some makespan for it — the paper's core result in miniature.");
}
