//! What is one more cheap node worth? — LP sensitivity analysis on a
//! scheduling epoch.
//!
//! Solves an offline co-scheduling LP directly through the public LP API
//! and reads the dual values: the shadow price of a machine's capacity row
//! is the dollars the optimal schedule would save per extra ECU-second of
//! capacity on that node. Saturated cheap nodes carry negative shadow
//! prices (more capacity ⇒ lower cost); idle expensive nodes carry zero.
//!
//! Run with: cargo run --release --example shadow_prices

use lips::cluster::{ec2_20_node, StoreId};
use lips::lp::sensitivity::analyze;
use lips::lp::{Cmp, Model};
use lips::workload::{JobKind, JobSpec};

fn main() {
    let cluster = ec2_20_node(0.5, 1.0);
    let jobs = [
        JobSpec::new(0, "wc", JobKind::WordCount, 4096.0, 64),
        JobSpec::new(1, "stress", JobKind::Stress2, 4096.0, 64),
    ];

    // A compact Fig-2-style LP built by hand through the public API:
    // x[k][l] = fraction of job k on machine l, reading from store l
    // (data reachable everywhere at the zone price for illustration).
    let epoch = 600.0;
    let mut m = Model::minimize();
    let mut x = Vec::new();
    for (k, job) in jobs.iter().enumerate() {
        let mut row = Vec::new();
        for mach in &cluster.machines {
            let cost = job.total_ecu_sec() * mach.cpu_cost
                + job.input_mb * cluster.ms_cost(mach.id, StoreId(mach.id.0));
            row.push(m.add_var(format!("x{}_{}", k, mach.id.0), 0.0, 1.0, cost));
        }
        x.push(row);
    }
    for row in &x {
        m.add_constraint(row.iter().map(|&v| (v, 1.0)), Cmp::Ge, 1.0);
    }
    // Capacity rows, one per machine, in machine order.
    let cap_row_base = m.num_constraints();
    for (l, mach) in cluster.machines.iter().enumerate() {
        let terms: Vec<_> = (0..jobs.len())
            .map(|k| (x[k][l], jobs[k].total_ecu_sec()))
            .collect();
        m.add_constraint(terms, Cmp::Le, mach.capacity_ecu_seconds(epoch));
    }

    let sol = m.solve().expect("epoch LP solves");
    let sens = analyze(&m, &sol);

    println!("Epoch LP optimum: ${:.4}\n", sol.objective());
    println!(
        "{:<16} {:>12} {:>22}",
        "node", "$/ECU-s", "shadow $ per ECU-s cap"
    );
    println!("{}", "-".repeat(54));
    let mut rows: Vec<(String, f64, f64)> = cluster
        .machines
        .iter()
        .enumerate()
        .map(|(l, mach)| {
            (
                mach.name.clone(),
                mach.cpu_cost,
                sens.shadow_prices[cap_row_base + l],
            )
        })
        .collect();
    rows.sort_by(|a, b| a.2.total_cmp(&b.2));
    for (name, price, shadow) in rows.iter().take(6) {
        println!("{name:<16} {price:>12.2e} {shadow:>22.3e}");
    }
    println!("...");
    let binding = rows.iter().filter(|r| r.2.abs() > 1e-12).count();
    println!(
        "\n{binding} of {} capacity rows are binding; the most negative shadow",
        rows.len()
    );
    println!("price marks the node whose extra capacity is worth the most — rent");
    println!("more of exactly that instance type first.");
}
