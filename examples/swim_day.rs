//! A day at Facebook scale (in miniature): replay a SWIM-like trace on
//! the 100-node testbed and compare the daily bill across schedulers —
//! the Figure 9 experiment as an application.
//!
//! Usage: cargo run --release --example swim_day -- [jobs] [epoch_s]
//! (defaults: 100 jobs, 600 s epoch; the paper's full day is 400 jobs)

use lips::cluster::ec2_100_node;
use lips::core::{DelayScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips::sim::{Placement, Scheduler, Simulation};
use lips::workload::{bind_workload, swim_trace, PlacementPolicy, SwimCfg};

fn main() {
    let jobs: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);
    let epoch: f64 = std::env::args()
        .nth(2)
        .and_then(|a| a.parse().ok())
        .unwrap_or(600.0);
    let cfg = SwimCfg {
        jobs,
        ..Default::default()
    };

    println!("Replaying a {jobs}-job SWIM-like day on 100 EC2 nodes (3 zones,");
    println!("m1.small / m1.medium / c1.medium thirds); LiPS epoch {epoch} s.\n");

    println!(
        "{:<16} {:>9} {:>9} {:>10} {:>12}",
        "scheduler", "total $", "cpu $", "transfer $", "locality"
    );
    println!("{}", "-".repeat(60));
    for (name, mut sched) in [
        (
            "lips",
            Box::new(LipsScheduler::new(SchedulerConfig::large_cluster(epoch)))
                as Box<dyn Scheduler>,
        ),
        ("hadoop-default", Box::new(HadoopDefaultScheduler::new())),
        ("delay", Box::new(DelayScheduler::default())),
    ] {
        let mut cluster = ec2_100_node(1e9, 1);
        let trace = swim_trace(&cfg, 1);
        let workload = bind_workload(&mut cluster, trace, PlacementPolicy::RoundRobin, 1);
        let placement = Placement::spread_blocks(&cluster, 1);
        let r = Simulation::new(&cluster, &workload)
            .with_placement(placement)
            .run(sched.as_mut())
            .expect("completes");
        println!(
            "{:<16} {:>9.2} {:>9.2} {:>10.2} {:>11.0}%",
            name,
            r.metrics.total_dollars(),
            r.metrics.cpu_dollars,
            r.metrics.transfer_dollars(),
            r.metrics.locality_ratio() * 100.0,
        );
    }
    println!("\nNote how LiPS trades locality (it ships data to cheap zones) for");
    println!("a much smaller bill, while the delay scheduler maximizes locality.");
}
