//! Epoch tuning: explore the cost ↔ completion-time frontier for your own
//! workload (the paper's Figure 8 knob, as a tool).
//!
//! LiPS is re-run over a sweep of epoch lengths; for each point the dollar
//! bill and the makespan are printed, plus the "knee" recommendation
//! (cheapest epoch whose makespan is within a user-chosen slowdown budget
//! of the fastest run).
//!
//! Usage: cargo run --release --example epoch_tuning -- [max_slowdown]
//! (default slowdown budget: 1.5x the fastest observed makespan)

use lips::cluster::ec2_20_node;
use lips::core::{LipsScheduler, SchedulerConfig};
use lips::sim::{Placement, Simulation};
use lips::workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

fn main() {
    let max_slowdown: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1.5);

    let make_jobs = || {
        vec![
            JobSpec::new(0, "etl", JobKind::Stress2, 8.0 * 1024.0, 128),
            JobSpec::new(1, "index", JobKind::WordCount, 6.0 * 1024.0, 96),
            JobSpec::new(2, "scan", JobKind::Grep, 12.0 * 1024.0, 192),
        ]
    };

    println!("epoch (s)   total $    makespan (s)");
    println!("-------------------------------------");
    let mut points: Vec<(f64, f64, f64)> = Vec::new();
    for epoch in [100.0, 200.0, 400.0, 800.0, 1200.0, 1600.0, 2400.0, 3200.0] {
        let mut cluster = ec2_20_node(0.5, 1e9);
        let workload = bind_workload(&mut cluster, make_jobs(), PlacementPolicy::RoundRobin, 3);
        let placement = Placement::spread_blocks(&cluster, 3);
        let mut sched = LipsScheduler::new(SchedulerConfig::small_cluster(epoch));
        let r = Simulation::new(&cluster, &workload)
            .with_placement(placement)
            .run(&mut sched)
            .expect("completes");
        println!(
            "{epoch:>8.0}   {:<9.4} {:>9.0}",
            r.metrics.total_dollars(),
            r.makespan
        );
        points.push((epoch, r.metrics.total_dollars(), r.makespan));
    }

    let fastest = points.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
    let budget = fastest * max_slowdown;
    let knee = points
        .iter()
        .filter(|p| p.2 <= budget)
        .min_by(|a, b| a.1.total_cmp(&b.1));
    match knee {
        Some((e, cost, mk)) => {
            println!("\nRecommendation: epoch = {e:.0} s — ${cost:.4} at {mk:.0} s makespan");
            println!(
                "(cheapest point within {max_slowdown:.1}x of the fastest makespan {fastest:.0} s)"
            );
        }
        None => println!("\nNo point fits the slowdown budget — lower the epoch."),
    }
}
