//! Data placement at *write* time: the paper's new
//! ReplicationTargetChooser for the NameNode.
//!
//! The same workload runs from two different HDFS namespaces — one
//! populated by Hadoop's default writer-local / off-rack policy, one by
//! LiPS's cost-aware chooser that puts replicas next to cheap cycles.
//! The *delay* task scheduler (which waits for data-local slots) then
//! follows the data — and inherits most of LiPS's savings without any LP
//! running at read time, because the data was born in the right place.
//!
//! Run with: cargo run --release --example hdfs_placement

use lips::cluster::{ec2_20_node, MachineId};
use lips::core::DelayScheduler;
use lips::hdfs::{
    CostAwareTargetChooser, DefaultTargetChooser, NameNode, ReplicationTargetChooser,
};
use lips::sim::Simulation;
use lips::workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

type ChooserFactory = Box<dyn Fn() -> Box<dyn ReplicationTargetChooser>>;

fn main() {
    println!("Same cluster, same jobs, same (delay) task scheduler —");
    println!("only the NameNode's replication target chooser differs.\n");

    println!(
        "{:<18} {:>9} {:>10} {:>10}",
        "namenode policy", "total $", "cpu $", "locality"
    );
    println!("{}", "-".repeat(52));

    let mut results = Vec::new();
    let choosers: Vec<(&str, ChooserFactory)> = vec![
        (
            "hadoop-default",
            Box::new(|| Box::new(DefaultTargetChooser::new(7))),
        ),
        // WordCount-class intensity hint: data will be CPU-hungry.
        (
            "lips-cost-aware",
            Box::new(|| Box::new(CostAwareTargetChooser::new(1.4))),
        ),
    ];
    for (name, make_chooser) in choosers {
        let mut cluster = ec2_20_node(0.5, 1e9);
        let jobs = vec![
            JobSpec::new(0, "wc-1", JobKind::WordCount, 4096.0, 64),
            JobSpec::new(1, "wc-2", JobKind::WordCount, 4096.0, 64),
            JobSpec::new(2, "stress", JobKind::Stress2, 4096.0, 64),
        ];
        let bound = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 7);

        // Populate the namespace: each input written from a rotating
        // "writer" machine, 2-way replication.
        let mut nn = NameNode::new(2);
        let mut chooser = make_chooser();
        for (i, job) in bound.jobs.iter().enumerate() {
            if let Some(data) = job.data {
                nn.create_file(
                    &cluster,
                    data,
                    job.input_mb,
                    Some(MachineId(i * 7 % cluster.num_machines())),
                    chooser.as_mut(),
                )
                .expect("namespace has room");
            }
        }

        let report = Simulation::new(&cluster, &bound)
            .with_placement(nn.to_placement())
            .run(&mut DelayScheduler::new(60))
            .expect("completes");
        println!(
            "{:<18} {:>9.4} {:>10.4} {:>9.1}%",
            name,
            report.metrics.total_dollars(),
            report.metrics.cpu_dollars,
            report.metrics.locality_ratio() * 100.0,
        );
        results.push(report.metrics.total_dollars());
    }

    println!(
        "\nThe cost-aware namespace cut the bill by {:.0}% before any LP ran —",
        (1.0 - results[1] / results[0]) * 100.0
    );
    println!("placement-at-write and scheduling-at-read are the two halves of");
    println!("the paper's co-scheduling argument.");
}
