//! # LiPS — cost-efficient data and task co-scheduling for MapReduce
//!
//! A full Rust reproduction of *LiPS: A Cost-Efficient Data and Task
//! Co-Scheduler for MapReduce* (Ehsan, Chen, Kang, Sion, Wong — IPDPS 2013).
//!
//! This facade crate re-exports the workspace crates under one roof:
//!
//! * [`lp`] — the linear-programming substrate (two-phase bounded-variable
//!   revised simplex; GLPK replacement).
//! * [`cluster`] — heterogeneous cloud model: machines, data stores,
//!   availability zones, instance pricing, the paper's `JD/JM/MS/SS/B`
//!   matrices.
//! * [`workload`] — MapReduce job models (Grep, Stress, WordCount, Pi), the
//!   Table IV suite, and the SWIM-like Facebook trace generator.
//! * [`sim`] — a discrete-event Hadoop-like cluster simulator with
//!   dollar-cost billing.
//! * [`core`] — the LiPS scheduler itself (offline Fig 2/3, online Fig 4
//!   epoch model) plus the Hadoop-default, delay, and fair baselines.
//! * [`audit`] — static analysis for LP models (lint rules, paper-invariant
//!   checks) and an independent optimality-certificate verifier.
//!
//! See `examples/quickstart.rs` for a five-minute tour and the `lips-bench`
//! crate for binaries regenerating every table and figure of the paper.

pub mod experiment;

pub use experiment::{Experiment, SchedulerChoice};
pub use lips_audit as audit;
pub use lips_cluster as cluster;
pub use lips_core as core;
pub use lips_hdfs as hdfs;
pub use lips_lp as lp;
pub use lips_sim as sim;
pub use lips_workload as workload;
