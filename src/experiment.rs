//! High-level experiment builder: cluster + workload + policy in one
//! fluent chain.
//!
//! Collapses the bind/place/simulate boilerplate that every study repeats:
//!
//! ```
//! use lips::experiment::{Experiment, SchedulerChoice};
//! use lips::workload::{JobKind, JobSpec};
//!
//! let report = Experiment::new()
//!     .ec2_mixed(20, 0.5)
//!     .jobs(vec![JobSpec::new(0, "grep", JobKind::Grep, 1024.0, 16)])
//!     .scheduler(SchedulerChoice::Lips { epoch_s: 800.0 })
//!     .seed(7)
//!     .run()
//!     .unwrap();
//! assert_eq!(report.outcomes.len(), 1);
//! ```

use lips_cluster::{ec2_100_node, ec2_mixed_cluster, Cluster};
use lips_core::{
    AdaptiveConfig, AdaptiveLips, DelayScheduler, FairScheduler, HadoopDefaultScheduler,
    LipsScheduler, SchedulerConfig,
};
use lips_sim::{Placement, Scheduler, SimError, SimReport, Simulation};
use lips_workload::{bind_workload, JobSpec, PlacementPolicy};

/// Which policy an [`Experiment`] runs.
#[derive(Debug, Clone)]
pub enum SchedulerChoice {
    /// LiPS with a fixed epoch (exact small-cluster model).
    Lips { epoch_s: f64 },
    /// LiPS with an explicit configuration.
    LipsConfigured(SchedulerConfig),
    /// Adaptive-epoch LiPS at a cost preference σ ∈ [0,1].
    LipsAdaptive { cost_preference: f64 },
    /// Hadoop's default FIFO-locality scheduler.
    HadoopDefault,
    /// Delay scheduling.
    Delay,
    /// FairScheduler-style pools.
    Fair,
}

impl SchedulerChoice {
    fn build(&self) -> Box<dyn Scheduler> {
        match self {
            SchedulerChoice::Lips { epoch_s } => {
                Box::new(LipsScheduler::new(SchedulerConfig::small_cluster(*epoch_s)))
            }
            SchedulerChoice::LipsConfigured(cfg) => Box::new(LipsScheduler::new(cfg.clone())),
            SchedulerChoice::LipsAdaptive { cost_preference } => Box::new(AdaptiveLips::new(
                SchedulerConfig::small_cluster(400.0),
                AdaptiveConfig {
                    cost_preference: *cost_preference,
                    ..Default::default()
                },
            )),
            SchedulerChoice::HadoopDefault => Box::new(HadoopDefaultScheduler::new()),
            SchedulerChoice::Delay => Box::new(DelayScheduler::default()),
            SchedulerChoice::Fair => Box::new(FairScheduler::new()),
        }
    }
}

/// Fluent experiment description. Defaults: 20-node 50 % c1.medium
/// testbed, empty workload, LiPS at a 600 s epoch, seed 2013, replication
/// 1, no stragglers/interference/speculation.
pub struct Experiment {
    cluster: Option<Cluster>,
    jobs: Vec<JobSpec>,
    scheduler: SchedulerChoice,
    seed: u64,
    replication: usize,
    stragglers: Option<(f64, f64)>,
    interference: f64,
    speculation: bool,
    validate: bool,
}

impl Default for Experiment {
    fn default() -> Self {
        Experiment {
            cluster: None,
            jobs: Vec::new(),
            scheduler: SchedulerChoice::Lips { epoch_s: 600.0 },
            seed: 2013,
            replication: 1,
            stragglers: None,
            interference: 0.0,
            speculation: false,
            validate: true,
        }
    }
}

impl Experiment {
    pub fn new() -> Self {
        Self::default()
    }

    /// Use the Fig-6-style testbed: `nodes` machines, `c1_fraction` of
    /// them c1.medium, three zones.
    pub fn ec2_mixed(mut self, nodes: usize, c1_fraction: f64) -> Self {
        self.cluster = Some(ec2_mixed_cluster(nodes, c1_fraction, 1e9, self.seed));
        self
    }

    /// Use the Fig-9 100-node, three-type testbed.
    pub fn ec2_hundred(mut self) -> Self {
        self.cluster = Some(ec2_100_node(1e9, self.seed));
        self
    }

    /// Use an explicit cluster.
    pub fn cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = Some(cluster);
        self
    }

    /// The workload to run.
    pub fn jobs(mut self, jobs: Vec<JobSpec>) -> Self {
        self.jobs = jobs;
        self
    }

    /// The scheduling policy.
    pub fn scheduler(mut self, s: SchedulerChoice) -> Self {
        self.scheduler = s;
        self
    }

    /// Seed for binding, block spread, and any injection (set *before*
    /// `ec2_*` if the cluster should share it).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// HDFS replication factor for the initial block spread.
    pub fn replication(mut self, r: usize) -> Self {
        self.replication = r.max(1);
        self
    }

    /// Straggler injection `(probability, slowdown)`.
    pub fn stragglers(mut self, prob: f64, slowdown: f64) -> Self {
        self.stragglers = Some((prob, slowdown));
        self
    }

    /// Network interference factor (see `Simulation::with_interference`).
    pub fn interference(mut self, factor: f64) -> Self {
        self.interference = factor;
        self
    }

    /// Hadoop-style speculative execution (needs stragglers to matter).
    pub fn speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Skip the post-run invariant check (on by default).
    pub fn without_validation(mut self) -> Self {
        self.validate = false;
        self
    }

    /// Build everything and run to completion.
    pub fn run(self) -> Result<SimReport, SimError> {
        let mut cluster = self
            .cluster
            .unwrap_or_else(|| ec2_mixed_cluster(20, 0.5, 1e9, self.seed));
        assert!(!self.jobs.is_empty(), "experiment needs at least one job");
        let bound = bind_workload(
            &mut cluster,
            self.jobs,
            PlacementPolicy::RoundRobin,
            self.seed,
        );
        let placement = if self.replication > 1 {
            Placement::spread_blocks_replicated(&cluster, self.seed, self.replication)
        } else {
            Placement::spread_blocks(&cluster, self.seed)
        };
        let mut sim = Simulation::new(&cluster, &bound)
            .with_placement(placement)
            .with_interference(self.interference)
            .with_speculation(self.speculation);
        if let Some((p, f)) = self.stragglers {
            sim = sim.with_stragglers(p, f, self.seed);
        }
        let mut sched = self.scheduler.build();
        let report = sim.run(sched.as_mut())?;
        if self.validate {
            lips_sim::assert_valid(&report, &cluster, &bound);
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_workload::JobKind;

    fn small_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec::new(0, "g", JobKind::Grep, 512.0, 8),
            JobSpec::new(1, "w", JobKind::WordCount, 512.0, 8),
        ]
    }

    #[test]
    fn default_experiment_runs_and_validates() {
        let r = Experiment::new().jobs(small_jobs()).run().unwrap();
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    fn every_scheduler_choice_works() {
        for choice in [
            SchedulerChoice::Lips { epoch_s: 400.0 },
            SchedulerChoice::LipsConfigured(SchedulerConfig::large_cluster(400.0)),
            SchedulerChoice::LipsAdaptive {
                cost_preference: 0.5,
            },
            SchedulerChoice::HadoopDefault,
            SchedulerChoice::Delay,
            SchedulerChoice::Fair,
        ] {
            let r = Experiment::new()
                .ec2_mixed(12, 0.5)
                .jobs(small_jobs())
                .scheduler(choice)
                .run()
                .unwrap();
            assert_eq!(r.outcomes.len(), 2);
        }
    }

    #[test]
    fn injections_compose() {
        let r = Experiment::new()
            .jobs(small_jobs())
            .replication(3)
            .stragglers(0.2, 3.0)
            .speculation(true)
            .interference(0.3)
            .scheduler(SchedulerChoice::Delay)
            .run()
            .unwrap();
        assert_eq!(r.outcomes.len(), 2);
    }

    #[test]
    #[should_panic]
    fn empty_workload_rejected() {
        let _ = Experiment::new().run();
    }
}
