//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with `#![proptest_config(...)]`, range and tuple
//! strategies, [`strategy::Just`], `prop::collection::vec`,
//! `any::<bool>()`, `prop_map` / `prop_flat_map`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name) and failing cases are
//! **not shrunk** — the panic message carries the full input instead.

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values (upstream's `Strategy`, minus shrinking).
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn sample(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.sample(rng)).sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                // `as` casts: the type list includes usize/isize, which
                // have no `From` conversion to i128.
                #[allow(clippy::cast_lossless)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                #[allow(clippy::cast_lossless)]
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.unit_f64() as $t) * (self.end - self.start)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }

    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident : $idx:tt),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A: 0);
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4);
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
    }

    /// Uniform `bool` (the `any::<bool>()` strategy).
    #[derive(Debug, Clone, Copy)]
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next() & 1 == 1
        }
    }
}

pub mod arbitrary {
    use crate::strategy::AnyBool;

    /// Types with a canonical strategy (`any::<T>()`).
    pub trait Arbitrary {
        type Strategy: crate::strategy::Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    impl Arbitrary for bool {
        type Strategy = AnyBool;

        fn arbitrary() -> AnyBool {
            AnyBool
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Upstream's `SizeRange`: an exact length or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-run configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed case (carried by `prop_assert!`).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    /// Deterministic SplitMix64 generator seeded from the test name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a), so each test gets a
        /// stable, distinct stream.
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        // Named like `Iterator::next` but not an iterator; a plain
        // generator method keeps call sites terse.
        #[allow(clippy::should_implement_trait)]
        pub fn next(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform integer in `[0, n)`.
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0);
            ((u128::from(self.next()) * u128::from(n)) >> 64) as u64
        }

        /// Uniform float in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// The test-declaration macro. Each `fn name(arg in strategy, ...) { .. }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                let __inputs = format!(concat!($(stringify!($arg), " = {:?}\n",)+), $(&$arg),+);
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} failed: {}\ninputs:\n{}",
                        __case + 1, __cfg.cases, e, __inputs
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Assert inside a `proptest!` body; failures report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)+);
    }};
}

/// Inequality assert inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            __a
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_hold(x in 0usize..10, f in -1.0f64..1.0, b in any::<bool>()) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&f));
            prop_assert!(usize::from(b) < 2);
        }

        #[test]
        fn vec_and_flat_map_compose(
            v in prop::collection::vec((0u32..5, 0.0f64..1.0), 1..4),
            w in (1usize..4).prop_flat_map(|n| prop::collection::vec(Just(n), n)),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 4);
            prop_assert!(w.iter().all(|&x| x == w.len()));
        }

        #[test]
        fn prop_map_applies(x in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 19);
        }
    }

    #[test]
    fn failing_case_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(5))]
            #[allow(unused)]
            fn inner(x in 0u32..10) {
                prop_assert!(x < 100, "impossible");
            }
        }
        // `inner` passes (all x < 100); now check a genuinely failing body.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(3))]
                #[allow(unused)]
                fn failing(x in 5u32..10) {
                    prop_assert!(x < 5, "x was {}", x);
                }
            }
            failing();
        });
        assert!(result.is_err());
        inner();
    }
}
