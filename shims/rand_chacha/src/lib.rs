//! Offline stand-in for `rand_chacha`, providing [`ChaCha8Rng`] on top of
//! the workspace's `rand` shim traits.
//!
//! The block function is a genuine ChaCha permutation with 8 double
//! rounds, so streams have ChaCha-quality statistics; the word-to-output
//! mapping is **not** guaranteed bit-compatible with upstream
//! `rand_chacha`. The workspace only relies on determinism per seed.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 double rounds, keyed by a 32-byte seed.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Key words (seed).
    key: [u32; 8],
    /// 64-bit block counter.
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next unread word in `block` (16 = exhausted).
    word_idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..8 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input) {
            *out = out.wrapping_add(inp);
        }
        self.block = state;
        self.counter = self.counter.wrapping_add(1);
        self.word_idx = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.word_idx >= 16 {
            self.refill();
        }
        let w = self.block[self.word_idx];
        self.word_idx += 1;
        w
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_word());
        let hi = u64::from(self.next_word());
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, w) in key.iter_mut().enumerate() {
            *w = u32::from_le_bytes(seed[i * 4..i * 4 + 4].try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            block: [0; 16],
            word_idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(2013);
        let mut b = ChaCha8Rng::seed_from_u64(2013);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = ChaCha8Rng::seed_from_u64(2014);
        assert_ne!(ChaCha8Rng::seed_from_u64(2013).next_u64(), c.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Crude equidistribution check: mean of 4096 unit doubles near 0.5.
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let mean: f64 = (0..4096).map(|_| rng.gen::<f64>()).sum::<f64>() / 4096.0;
        assert!((mean - 0.5).abs() < 0.02, "{mean}");
    }

    #[test]
    fn counter_advances_blocks() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let first_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        let second_block: Vec<u32> = (0..16).map(|_| rng.next_u32()).collect();
        assert_ne!(first_block, second_block);
    }
}
