//! Offline stand-in for `criterion`.
//!
//! Provides the bench-definition API this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_with_input`, `bench_function`, `BenchmarkId`, `black_box`) with
//! a simple wall-clock harness: each benchmark runs `sample_size` samples
//! after one warm-up and prints min / mean / max per iteration. No
//! statistics, plots, or baselines — just honest numbers offline.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Per-iteration timer handle passed to bench closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Time `routine`, running it once per sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up (not recorded).
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let ns: Vec<f64> = samples.iter().map(|d| d.as_secs_f64() * 1e9).collect();
    let mean = ns.iter().sum::<f64>() / ns.len() as f64;
    let min = ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = ns.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let fmt = |x: f64| -> String {
        if x >= 1e9 {
            format!("{:.3} s", x / 1e9)
        } else if x >= 1e6 {
            format!("{:.3} ms", x / 1e6)
        } else if x >= 1e3 {
            format!("{:.3} µs", x / 1e3)
        } else {
            format!("{x:.0} ns")
        }
    };
    println!("{name:<50} [{} {} {}]", fmt(min), fmt(mean), fmt(max));
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of recorded samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0);
        self.sample_size = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b.samples);
        self
    }

    pub fn finish(self) {}
}

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: 10,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, name: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 10,
        };
        f(&mut b);
        report(&name.to_string(), &b.samples);
        self
    }
}

/// Define a bench group: `criterion_group!(benches, f1, f2);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the bench binary's `main`: `criterion_main!(benches);`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_with_input(BenchmarkId::new("f", 1), &2u32, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            });
        });
        g.finish();
        assert_eq!(runs, 4); // 1 warm-up + 3 samples
        assert_eq!(BenchmarkId::new("a", "b").to_string(), "a/b");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
