//! Offline stand-in for the `rand` crate.
//!
//! The build container has no network access and an empty cargo registry,
//! so the workspace vendors a minimal implementation of the exact API
//! subset it uses: [`RngCore`], [`SeedableRng`], [`Rng`] (with
//! `gen_range` / `gen` / `gen_bool`), and [`seq::SliceRandom`]
//! (`shuffle` / `choose`). Streams are deterministic for a given seed but
//! are *not* bit-compatible with upstream `rand` — everything downstream
//! treats seeds as opaque reproducibility handles, never as references to
//! upstream golden values.

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a 64-bit generator.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill a byte slice (used by `SeedableRng::seed_from_u64`).
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via SplitMix64 (same idea as
    /// upstream, not the same bytes).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        sm.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expander and the engine behind the test helpers.
pub(crate) struct SplitMix64 {
    pub state: u64,
}

impl RngCore for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable from a range by `Rng::gen_range`.
pub trait SampleRange<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

#[inline]
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    // Lemire multiply-shift; the modulo bias is < 2^-64 per draw, far
    // below anything the simulations can observe.
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // 53 mantissa bits -> uniform in [0, 1).
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types with a uniform sampler over `[lo, hi)` / `[lo, hi]`.
///
/// A single blanket `SampleRange` impl over this trait (instead of one
/// impl per concrete range type) is what lets integer-literal inference
/// unify with `usize` at slice-index call sites, exactly as upstream
/// `rand` does.
pub trait SampleUniform: Sized {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            // `as` casts: the type list includes usize/isize, which have
            // no `From` conversion to i128.
            #[allow(clippy::cast_lossless)]
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let extra = i128::from(inclusive);
                let span = (hi as i128 - lo as i128 + extra) as u64;
                assert!(span > 0, "empty range in gen_range");
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_uniform!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "empty range in gen_range");
                lo + (unit_f64(rng) as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Types producible by `Rng::gen` (the `Standard` distribution subset).
pub trait Standard: Sized {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing convenience methods, blanket-implemented for every
/// [`RngCore`] like upstream `rand`.
pub trait Rng: RngCore {
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} outside [0,1]"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Named generators (only what the workspace needs).

    use super::{RngCore, SeedableRng};

    /// Small, fast default generator (xorshift*-style).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];

        fn from_seed(seed: Self::Seed) -> Self {
            let state = u64::from_le_bytes(seed) | 1; // never all-zero
            SmallRng { state }
        }
    }
}

pub mod seq {
    //! Slice helpers mirroring `rand::seq::SliceRandom`.

    use super::{uniform_u64_below, RngCore};

    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Up to `amount` distinct elements, uniformly without replacement.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher–Yates over an index table: the first `amount`
            // slots hold a uniform sample without replacement.
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = i + uniform_u64_below(rng, (self.len() - i) as u64) as usize;
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let i: i32 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&i));
            let u: usize = rng.gen_range(0..3);
            assert!(u < 3);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let fi: f64 = rng.gen_range(1.0..=2.0);
            assert!((1.0..=2.0).contains(&fi));
        }
    }

    #[test]
    fn seeding_is_deterministic_and_sensitive() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        let mut c = SmallRng::seed_from_u64(43);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = SmallRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_and_choose_cover_all_elements() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..10).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
