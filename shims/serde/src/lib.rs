//! Offline stand-in for `serde`.
//!
//! The build container has no registry access, so the workspace vendors a
//! small value-model serialization framework under the `serde` name:
//!
//! * [`Serialize`] lowers a value to a [`Value`] tree;
//! * [`Deserialize`] rebuilds a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//!   shim) generates both, honoring the `#[serde(...)]` attributes this
//!   workspace uses: `default`, `default = "path"`, `deny_unknown_fields`,
//!   `tag`, and `rename_all = "snake_case"`.
//!
//! The JSON text layer lives in the `serde_json` shim, which renders and
//! parses [`Value`] trees. The wire format matches real serde_json for the
//! shapes the workspace serializes (maps in field order, newtype structs
//! as their inner value, unit enum variants as strings).

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: what any serializable value lowers to.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (JSON object). Keys are not deduplicated.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in a `Map` value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }
}

/// Shared (de)serialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct Error(pub String);

impl Error {
    /// Mirror of `serde::de::Error::custom`.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub mod de {
    //! Deserialization-side names kept for source compatibility.
    pub use crate::Error;
}

pub mod ser {
    //! Serialization-side names kept for source compatibility.
    pub use crate::Error;
}

/// Lower `self` into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuild `Self` from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn type_err<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

// --- primitives -----------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_err("bool", other),
        }
    }
}

macro_rules! impl_serde_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // `as` cast: the list includes usize, which has no
            // `From` conversion to u64.
            #[allow(clippy::cast_lossless)]
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => return type_err("unsigned integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            // `as` cast: the list includes isize, which has no
            // `From` conversion to i64.
            #[allow(clippy::cast_lossless)]
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => {
                        i64::try_from(n).map_err(|_| Error(format!("{n} out of range")))?
                    }
                    ref other => return type_err("integer", other),
                };
                <$t>::try_from(n).map_err(|_| Error(format!("{n} out of range")))
            }
        }
    )*};
}

impl_serde_int!(i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(f64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(n) => Ok(n as $t),
                    Value::UInt(n) => Ok(n as $t),
                    // Real serde_json writes non-finite floats as null.
                    Value::Null => Ok(<$t>::NAN),
                    ref other => type_err("number", other),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_err("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

// --- containers -----------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => type_err("sequence", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_serde_tuple {
    ($(($($name:ident : $idx:tt),+) with $len:expr;)*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Seq(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Seq(items) => {
                        Err(Error(format!("expected tuple of {}, found {}", $len, items.len())))
                    }
                    other => type_err("tuple sequence", other),
                }
            }
        }
    )*};
}

impl_serde_tuple! {
    (A: 0) with 1;
    (A: 0, B: 1) with 2;
    (A: 0, B: 1, C: 2) with 3;
    (A: 0, B: 1, C: 2, D: 3) with 4;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_roundtrips() {
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(u64::from_value(&7u64.to_value()).unwrap(), 7);
        assert_eq!(i32::from_value(&(-3i32).to_value()).unwrap(), -3);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(String::from_value(&"hi".to_value()).unwrap(), "hi");
        assert!(f64::from_value(&Value::Null).unwrap().is_nan());
    }

    #[test]
    fn container_roundtrips() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.0), ("b".into(), 2.5)];
        let back: Vec<(String, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(v, back);
        let o: Option<u32> = None;
        assert_eq!(o.to_value(), Value::Null);
        let o2: Option<u32> = Deserialize::from_value(&Value::UInt(3)).unwrap();
        assert_eq!(o2, Some(3));
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }

    #[test]
    fn map_lookup() {
        let m = Value::Map(vec![("k".into(), Value::Bool(true))]);
        assert_eq!(m.get("k"), Some(&Value::Bool(true)));
        assert_eq!(m.get("missing"), None);
    }
}
