//! Offline stand-in for `serde_json` over the workspace `serde` shim's
//! [`Value`] model: deterministic rendering (map insertion order, shortest
//! round-trip float formatting) and a recursive-descent parser.

use serde::{Deserialize, Serialize, Value};

pub use serde::Error;

/// Render a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Render a value as indented JSON (two spaces, serde_json style).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into any deserializable type.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

// --- writer ---------------------------------------------------------------

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // `{:?}` keeps the `.0` on integral floats and prints the
                // shortest digits that round-trip, like serde_json.
                out.push_str(&format!("{f:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                write_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --- parser ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            None => Err(Error("unexpected end of input".into())),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_seq(),
            Some(b'{') => self.parse_map(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            Some(other) => Err(Error(format!(
                "unexpected `{}` at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn parse_seq(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_map(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over plain UTF-8 runs.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error(format!("bad \\u escape `{hex}`")))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                });
            }
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::UInt(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("a\"b\\c\n").unwrap(), r#""a\"b\\c\n""#);
        let x: f64 = from_str("1.5").unwrap();
        assert_eq!(x, 1.5);
        let y: f64 = from_str("3").unwrap();
        assert_eq!(y, 3.0);
        let s: String = from_str(r#""a\"bA""#).unwrap();
        assert_eq!(s, "a\"bA");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(String::from("a"), 1.25f64), (String::from("b"), -2.0)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1.25],["b",-2.0]]"#);
        let back: Vec<(String, f64)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_shortest_repr_roundtrips_exactly() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            1e-12,
            123456.789,
            f64::MAX,
            f64::MIN_POSITIVE,
        ] {
            let back: f64 = from_str(&to_string(&f).unwrap()).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f}");
        }
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
        let x: f64 = from_str("null").unwrap();
        assert!(x.is_nan());
    }

    #[test]
    fn pretty_printing_indents() {
        let v = vec![1u32, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(from_str::<f64>("1.5garbage").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<String>("\"unterminated").is_err());
    }
}
