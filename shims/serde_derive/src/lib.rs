//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! workspace's value-model `serde` shim without `syn`/`quote`: the item is
//! parsed with a small hand-rolled token walker and the impls are emitted
//! as source strings.
//!
//! Supported shapes (everything this workspace derives):
//!
//! * named-field structs, newtype/tuple structs, unit enums;
//! * externally tagged enums (unit variants as strings, payload variants
//!   as single-key maps);
//! * internally tagged enums: `#[serde(tag = "...", rename_all =
//!   "snake_case")]`;
//! * field attrs `#[serde(default)]` and `#[serde(default = "path")]`;
//! * container attr `#[serde(deny_unknown_fields)]`.
//!
//! Anything else (generics, lifetimes, unions) produces a compile error
//! naming the unsupported construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// --- parsed representation ------------------------------------------------

#[derive(Debug, Default)]
struct ContainerAttrs {
    tag: Option<String>,
    rename_all_snake: bool,
    deny_unknown: bool,
}

#[derive(Debug, Clone)]
enum DefaultKind {
    Std,
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: Option<DefaultKind>,
    is_option: bool,
}

#[derive(Debug)]
enum VariantFields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: VariantFields,
}

#[derive(Debug)]
enum ItemKind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Item {
    name: String,
    attrs: ContainerAttrs,
    kind: ItemKind,
}

// --- token walker ---------------------------------------------------------

struct Walker {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Walker {
    fn new(ts: TokenStream) -> Self {
        Walker {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == name {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    /// Collect `#[serde(...)]`-style attributes at the current position,
    /// returning the flattened serde attr entries and skipping the rest
    /// (doc comments etc.).
    fn parse_attrs(&mut self) -> Result<Vec<(String, Option<String>)>, String> {
        let mut out = Vec::new();
        while self.eat_punct('#') {
            let group = match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => g,
                other => return Err(format!("expected [...] after #, got {other:?}")),
            };
            let mut inner = Walker::new(group.stream());
            if inner.eat_ident("serde") {
                let args = match inner.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g,
                    other => return Err(format!("expected (...) after serde, got {other:?}")),
                };
                let mut aw = Walker::new(args.stream());
                loop {
                    let key = match aw.next() {
                        None => break,
                        Some(TokenTree::Ident(i)) => i.to_string(),
                        Some(other) => return Err(format!("bad serde attr token {other}")),
                    };
                    let value = if aw.eat_punct('=') {
                        match aw.next() {
                            Some(TokenTree::Literal(l)) => Some(strip_str_literal(&l.to_string())?),
                            other => return Err(format!("bad serde attr value {other:?}")),
                        }
                    } else {
                        None
                    };
                    out.push((key, value));
                    if !aw.eat_punct(',') {
                        break;
                    }
                }
            }
        }
        Ok(out)
    }

    /// Skip a `pub` / `pub(crate)` visibility prefix.
    fn skip_vis(&mut self) {
        if self.eat_ident("pub") {
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }

    /// Skip tokens until a top-level comma (exclusive); groups are atomic
    /// so nested commas are invisible. Returns the skipped tokens.
    fn take_until_comma(&mut self) -> Vec<TokenTree> {
        let mut taken = Vec::new();
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                if p.as_char() == ',' {
                    break;
                }
            }
            taken.push(self.next().unwrap());
        }
        taken
    }
}

fn strip_str_literal(lit: &str) -> Result<String, String> {
    let l = lit.trim();
    if l.len() >= 2 && l.starts_with('"') && l.ends_with('"') {
        Ok(l[1..l.len() - 1].to_string())
    } else {
        Err(format!("expected string literal, got {lit}"))
    }
}

fn container_attrs(entries: &[(String, Option<String>)]) -> Result<ContainerAttrs, String> {
    let mut attrs = ContainerAttrs::default();
    for (key, value) in entries {
        match (key.as_str(), value) {
            ("tag", Some(v)) => attrs.tag = Some(v.clone()),
            ("rename_all", Some(v)) if v == "snake_case" => attrs.rename_all_snake = true,
            ("rename_all", Some(v)) => return Err(format!("unsupported rename_all = {v:?}")),
            ("deny_unknown_fields", None) => attrs.deny_unknown = true,
            (k, _) => return Err(format!("unsupported container serde attr `{k}`")),
        }
    }
    Ok(attrs)
}

fn field_from_attrs(
    name: String,
    entries: &[(String, Option<String>)],
    ty: &[TokenTree],
) -> Result<Field, String> {
    let mut default = None;
    for (key, value) in entries {
        match (key.as_str(), value) {
            ("default", None) => default = Some(DefaultKind::Std),
            ("default", Some(path)) => default = Some(DefaultKind::Path(path.clone())),
            (k, _) => return Err(format!("unsupported field serde attr `{k}` on `{name}`")),
        }
    }
    let is_option = matches!(ty.first(), Some(TokenTree::Ident(i)) if i.to_string() == "Option");
    Ok(Field {
        name,
        default,
        is_option,
    })
}

/// Parse `name: Type` fields from a brace group's stream.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut w = Walker::new(stream);
    let mut fields = Vec::new();
    loop {
        let attrs = w.parse_attrs()?;
        w.skip_vis();
        let name = match w.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected field name, got {other}")),
        };
        if !w.eat_punct(':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        let ty = w.take_until_comma();
        fields.push(field_from_attrs(name, &attrs, &ty)?);
        if !w.eat_punct(',') {
            break;
        }
    }
    Ok(fields)
}

/// Count tuple-struct / tuple-variant fields in a paren group's stream.
fn count_tuple_fields(stream: TokenStream) -> Result<usize, String> {
    let mut w = Walker::new(stream);
    let mut count = 0;
    loop {
        let _ = w.parse_attrs()?;
        w.skip_vis();
        let ty = w.take_until_comma();
        if !ty.is_empty() {
            count += 1;
        }
        if !w.eat_punct(',') {
            break;
        }
    }
    Ok(count)
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut w = Walker::new(stream);
    let mut variants = Vec::new();
    loop {
        let _attrs = w.parse_attrs()?;
        let name = match w.next() {
            None => break,
            Some(TokenTree::Ident(i)) => i.to_string(),
            Some(other) => return Err(format!("expected variant name, got {other}")),
        };
        let fields = match w.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let g = g.stream();
                w.pos += 1;
                VariantFields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let g = g.stream();
                w.pos += 1;
                VariantFields::Tuple(count_tuple_fields(g)?)
            }
            _ => VariantFields::Unit,
        };
        if w.eat_punct('=') {
            // Explicit discriminant: skip its expression.
            let _ = w.take_until_comma();
        }
        variants.push(Variant { name, fields });
        if !w.eat_punct(',') {
            break;
        }
    }
    Ok(variants)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut w = Walker::new(input);
    let attr_entries = w.parse_attrs()?;
    let attrs = container_attrs(&attr_entries)?;
    w.skip_vis();
    let is_enum = if w.eat_ident("struct") {
        false
    } else if w.eat_ident("enum") {
        true
    } else {
        return Err("expected `struct` or `enum` (unions are unsupported)".into());
    };
    let name = match w.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected item name, got {other:?}")),
    };
    if let Some(TokenTree::Punct(p)) = w.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is unsupported by the serde shim"
            ));
        }
    }
    let kind = if is_enum {
        match w.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("expected enum body, got {other:?}")),
        }
    } else {
        match w.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream())?)
            }
            other => return Err(format!("expected struct body, got {other:?}")),
        }
    };
    Ok(Item { name, attrs, kind })
}

// --- codegen --------------------------------------------------------------

/// serde's `rename_all = "snake_case"` rule.
fn snake_case(name: &str) -> String {
    let mut out = String::new();
    for (i, ch) in name.chars().enumerate() {
        if ch.is_ascii_uppercase() {
            if i > 0 {
                out.push('_');
            }
            out.push(ch.to_ascii_lowercase());
        } else {
            out.push(ch);
        }
    }
    out
}

fn variant_wire_name(attrs: &ContainerAttrs, variant: &str) -> String {
    if attrs.rename_all_snake {
        snake_case(variant)
    } else {
        variant.to_string()
    }
}

fn missing_field_expr(field: &Field) -> String {
    match &field.default {
        Some(DefaultKind::Std) => "::core::default::Default::default()".into(),
        Some(DefaultKind::Path(p)) => format!("{p}()"),
        None if field.is_option => "::core::option::Option::None".into(),
        None => format!(
            "return ::core::result::Result::Err(::serde::Error(::std::format!(\
             \"missing field `{}`\")))",
            field.name
        ),
    }
}

/// `Ok(Path { f: ..., ... })` construction body from a map expression.
fn named_fields_construct(path: &str, fields: &[Field], map_expr: &str) -> String {
    let mut out = format!("::core::result::Result::Ok({path} {{\n");
    for f in fields {
        out.push_str(&format!(
            "    {name}: match {map_expr}.get(\"{name}\") {{\n\
                     ::core::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     ::core::option::Option::None => {missing},\n\
                 }},\n",
            name = f.name,
            missing = missing_field_expr(f),
        ));
    }
    out.push_str("})");
    out
}

/// Unknown-key guard over `entries` given the allowed key list.
fn deny_unknown_guard(fields: &[Field], extra_allowed: &[&str]) -> String {
    let mut allowed: Vec<String> = fields.iter().map(|f| format!("\"{}\"", f.name)).collect();
    allowed.extend(extra_allowed.iter().map(|k| format!("\"{k}\"")));
    let arms = if allowed.is_empty() {
        "\"\"".to_string()
    } else {
        allowed.join(" | ")
    };
    format!(
        "for (__k, _) in __entries.iter() {{\n\
            match __k.as_str() {{\n\
                {arms} => {{}}\n\
                __other => return ::core::result::Result::Err(::serde::Error(\
                    ::std::format!(\"unknown field `{{}}`\", __other))),\n\
            }}\n\
        }}\n"
    )
}

fn gen_serialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let mut entries = String::new();
            for f in fields {
                entries.push_str(&format!(
                    "(::std::string::String::from(\"{0}\"), \
                     ::serde::Serialize::to_value(&self.{0})), ",
                    f.name
                ));
            }
            format!("::serde::Value::Map(::std::vec![{entries}])")
        }
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let wire = variant_wire_name(&item.attrs, &v.name);
                match (&v.fields, &item.attrs.tag) {
                    (VariantFields::Unit, None) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Str(\
                             ::std::string::String::from(\"{wire}\")),\n",
                            v = v.name
                        ));
                    }
                    (VariantFields::Unit, Some(tag)) => {
                        arms.push_str(&format!(
                            "{name}::{v} => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{tag}\"), \
                              ::serde::Value::Str(::std::string::String::from(\"{wire}\")))]),\n",
                            v = v.name
                        ));
                    }
                    (VariantFields::Named(fields), tag) => {
                        let binds: Vec<&str> = fields.iter().map(|f| f.name.as_str()).collect();
                        let field_entries: String = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from(\"{0}\"), \
                                     ::serde::Serialize::to_value({0})), ",
                                    f.name
                                )
                            })
                            .collect();
                        let inner = match tag {
                            Some(tag) => format!(
                                "::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{tag}\"), \
                                  ::serde::Value::Str(::std::string::String::from(\"{wire}\"))), \
                                 {field_entries}])"
                            ),
                            None => format!(
                                "::serde::Value::Map(::std::vec![\
                                 (::std::string::String::from(\"{wire}\"), \
                                  ::serde::Value::Map(::std::vec![{field_entries}]))])"
                            ),
                        };
                        arms.push_str(&format!(
                            "{name}::{v} {{ {binds} }} => {inner},\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                    (VariantFields::Tuple(_), Some(_)) => {
                        return Err(format!(
                            "tuple variant `{}` cannot be internally tagged",
                            v.name
                        ));
                    }
                    (VariantFields::Tuple(n), None) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Seq(::std::vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(::std::vec![\
                             (::std::string::String::from(\"{wire}\"), {payload})]),\n",
                            v = v.name,
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
            fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
        }}\n"
    ))
}

fn gen_deserialize(item: &Item) -> Result<String, String> {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let guard = if item.attrs.deny_unknown {
                deny_unknown_guard(fields, &[])
            } else {
                String::new()
            };
            let construct = named_fields_construct(name, fields, "__value");
            format!(
                "match __value {{\n\
                    ::serde::Value::Map(__entries) => {{\n\
                        let _ = &__entries;\n{guard}{construct}\n}}\n\
                    __other => ::core::result::Result::Err(::serde::Error(::std::format!(\
                        \"expected map for struct {name}, found {{}}\", __other.kind()))),\n\
                }}"
            )
        }
        ItemKind::TupleStruct(1) => {
            format!(
                "::core::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            )
        }
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "match __value {{\n\
                    ::serde::Value::Seq(__items) if __items.len() == {n} => \
                        ::core::result::Result::Ok({name}({items})),\n\
                    __other => ::core::result::Result::Err(::serde::Error(::std::format!(\
                        \"expected sequence of {n} for {name}, found {{}}\", __other.kind()))),\n\
                }}",
                items = items.join(", ")
            )
        }
        ItemKind::Enum(variants) => match &item.attrs.tag {
            Some(tag) => {
                let mut arms = String::new();
                for v in variants {
                    let wire = variant_wire_name(&item.attrs, &v.name);
                    match &v.fields {
                        VariantFields::Unit => {
                            let guard = if item.attrs.deny_unknown {
                                deny_unknown_guard(&[], &[tag])
                            } else {
                                String::new()
                            };
                            arms.push_str(&format!(
                                "\"{wire}\" => {{ {guard}\
                                 ::core::result::Result::Ok({name}::{v}) }}\n",
                                v = v.name
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let guard = if item.attrs.deny_unknown {
                                deny_unknown_guard(fields, &[tag])
                            } else {
                                String::new()
                            };
                            let construct = named_fields_construct(
                                &format!("{name}::{}", v.name),
                                fields,
                                "__value",
                            );
                            arms.push_str(&format!("\"{wire}\" => {{ {guard}{construct} }}\n"));
                        }
                        VariantFields::Tuple(_) => {
                            return Err(format!(
                                "tuple variant `{}` cannot be internally tagged",
                                v.name
                            ));
                        }
                    }
                }
                format!(
                    "match __value {{\n\
                        ::serde::Value::Map(__entries) => {{\n\
                            let _ = &__entries;\n\
                            let __tag = match __value.get(\"{tag}\") {{\n\
                                ::core::option::Option::Some(::serde::Value::Str(__s)) => \
                                    __s.as_str(),\n\
                                _ => return ::core::result::Result::Err(::serde::Error(\
                                    ::std::format!(\"missing `{tag}` tag for enum {name}\"))),\n\
                            }};\n\
                            match __tag {{\n{arms}\
                                __other => ::core::result::Result::Err(::serde::Error(\
                                    ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                            }}\n\
                        }}\n\
                        __other => ::core::result::Result::Err(::serde::Error(::std::format!(\
                            \"expected map for enum {name}, found {{}}\", __other.kind()))),\n\
                    }}"
                )
            }
            None => {
                let mut str_arms = String::new();
                let mut map_arms = String::new();
                for v in variants {
                    let wire = variant_wire_name(&item.attrs, &v.name);
                    match &v.fields {
                        VariantFields::Unit => {
                            str_arms.push_str(&format!(
                                "\"{wire}\" => ::core::result::Result::Ok({name}::{v}),\n",
                                v = v.name
                            ));
                        }
                        VariantFields::Named(fields) => {
                            let construct = named_fields_construct(
                                &format!("{name}::{}", v.name),
                                fields,
                                "__payload",
                            );
                            map_arms.push_str(&format!("\"{wire}\" => {{ {construct} }}\n"));
                        }
                        VariantFields::Tuple(n) => {
                            let construct = if *n == 1 {
                                format!(
                                    "::core::result::Result::Ok({name}::{v}(\
                                     ::serde::Deserialize::from_value(__payload)?))",
                                    v = v.name
                                )
                            } else {
                                let items: Vec<String> = (0..*n)
                                    .map(|i| {
                                        format!("::serde::Deserialize::from_value(&__items[{i}])?")
                                    })
                                    .collect();
                                format!(
                                    "match __payload {{\n\
                                        ::serde::Value::Seq(__items) if __items.len() == {n} => \
                                            ::core::result::Result::Ok({name}::{v}({items})),\n\
                                        _ => ::core::result::Result::Err(::serde::Error(\
                                            ::std::format!(\"bad payload for {name}::{v}\"))),\n\
                                    }}",
                                    v = v.name,
                                    items = items.join(", ")
                                )
                            };
                            map_arms.push_str(&format!("\"{wire}\" => {{ {construct} }}\n"));
                        }
                    }
                }
                format!(
                    "match __value {{\n\
                        ::serde::Value::Str(__s) => match __s.as_str() {{\n{str_arms}\
                            __other => ::core::result::Result::Err(::serde::Error(\
                                ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                        }},\n\
                        ::serde::Value::Map(__entries) if __entries.len() == 1 => {{\n\
                            let (__variant, __payload) = &__entries[0];\n\
                            match __variant.as_str() {{\n{map_arms}\
                                __other => ::core::result::Result::Err(::serde::Error(\
                                    ::std::format!(\"unknown {name} variant `{{}}`\", __other))),\n\
                            }}\n\
                        }}\n\
                        __other => ::core::result::Result::Err(::serde::Error(::std::format!(\
                            \"expected string or map for enum {name}, found {{}}\", \
                            __other.kind()))),\n\
                    }}"
                )
            }
        },
    };
    Ok(format!(
        "impl ::serde::Deserialize for {name} {{\n\
            fn from_value(__value: &::serde::Value) \
                -> ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
        }}\n"
    ))
}

fn expand(input: TokenStream, gen: fn(&Item) -> Result<String, String>) -> TokenStream {
    let rendered = parse_item(input).and_then(|item| gen(&item));
    match rendered {
        Ok(code) => code.parse().unwrap_or_else(|e| {
            format!("::core::compile_error!(\"serde shim codegen error: {e}\");")
                .parse()
                .unwrap()
        }),
        Err(msg) => {
            let escaped = msg.replace('\\', "\\\\").replace('"', "\\\"");
            format!("::core::compile_error!(\"serde shim: {escaped}\");")
                .parse()
                .unwrap()
        }
    }
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}
