//! Head-to-head scheduler runs on identical conditions.
//!
//! Each scheduler gets its own freshly built (but identically seeded)
//! cluster, workload binding, and initial block placement, so runs are
//! independent yet perfectly comparable.

use lips_cluster::Cluster;
use lips_core::{
    DelayScheduler, FairScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig,
};
use lips_sim::{Placement, Scheduler, SimReport, Simulation};
use lips_workload::{bind_workload, JobSpec, PlacementPolicy};

/// Which policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulerKind {
    Lips,
    HadoopDefault,
    Delay,
    Fair,
}

impl SchedulerKind {
    pub const ALL: [SchedulerKind; 4] = [
        SchedulerKind::Lips,
        SchedulerKind::HadoopDefault,
        SchedulerKind::Delay,
        SchedulerKind::Fair,
    ];

    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::Lips => "LiPS",
            SchedulerKind::HadoopDefault => "Hadoop default",
            SchedulerKind::Delay => "Delay",
            SchedulerKind::Fair => "Fair",
        }
    }
}

/// One comparable experiment: cluster factory + workload factory + seeds.
pub struct MatchupSpec<C, W>
where
    C: Fn() -> Cluster,
    W: Fn() -> Vec<JobSpec>,
{
    pub make_cluster: C,
    pub make_jobs: W,
    /// Seed for input binding and the initial block spread.
    pub seed: u64,
    /// LiPS configuration (other schedulers have no knobs here).
    pub lips: SchedulerConfig,
}

/// Results per scheduler, in [`SchedulerKind::ALL`] order (minus any
/// schedulers not requested).
pub struct Matchup {
    pub reports: Vec<(SchedulerKind, SimReport)>,
}

impl Matchup {
    pub fn get(&self, kind: SchedulerKind) -> &SimReport {
        &self
            .reports
            .iter()
            .find(|(k, _)| *k == kind)
            .expect("scheduler was run")
            .1
    }

    /// Cost reduction of LiPS relative to `baseline`:
    /// `1 − cost(LiPS)/cost(baseline)`.
    pub fn lips_saving_vs(&self, baseline: SchedulerKind) -> f64 {
        let lips = self.get(SchedulerKind::Lips).metrics.total_dollars();
        let base = self.get(baseline).metrics.total_dollars();
        1.0 - lips / base
    }
}

/// Run `kinds` under identical conditions.
pub fn run_matchup<C, W>(spec: &MatchupSpec<C, W>, kinds: &[SchedulerKind]) -> Matchup
where
    C: Fn() -> Cluster,
    W: Fn() -> Vec<JobSpec>,
{
    let mut reports = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let mut cluster = (spec.make_cluster)();
        let bound = bind_workload(
            &mut cluster,
            (spec.make_jobs)(),
            PlacementPolicy::RoundRobin,
            spec.seed,
        );
        let placement = Placement::spread_blocks(&cluster, spec.seed);
        let sim = Simulation::new(&cluster, &bound).with_placement(placement);
        let report = match kind {
            SchedulerKind::Lips => {
                let mut s = LipsScheduler::new(spec.lips.clone());
                sim.run(&mut s)
            }
            SchedulerKind::HadoopDefault => {
                let mut s = HadoopDefaultScheduler::new();
                sim.run(&mut s)
            }
            SchedulerKind::Delay => {
                let mut s = DelayScheduler::default();
                sim.run(&mut s)
            }
            SchedulerKind::Fair => {
                let mut s = FairScheduler::new();
                sim.run(&mut s)
            }
        }
        .unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()));
        reports.push((kind, report));
    }
    Matchup { reports }
}

/// Convenience: run a scheduler by kind on explicit pieces (used by
/// benches that want to control the placement themselves).
pub fn run_one(
    cluster: &Cluster,
    bound: &lips_workload::BoundWorkload,
    placement: Placement,
    kind: SchedulerKind,
    lips: &SchedulerConfig,
) -> SimReport {
    let sim = Simulation::new(cluster, bound).with_placement(placement);
    let mut sched: Box<dyn Scheduler> = match kind {
        SchedulerKind::Lips => Box::new(LipsScheduler::new(lips.clone())),
        SchedulerKind::HadoopDefault => Box::new(HadoopDefaultScheduler::new()),
        SchedulerKind::Delay => Box::new(DelayScheduler::default()),
        SchedulerKind::Fair => Box::new(FairScheduler::new()),
    };
    sim.run(sched.as_mut())
        .unwrap_or_else(|e| panic!("{} failed: {e}", kind.label()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_cluster::ec2_20_node;
    use lips_workload::JobKind;

    fn spec() -> MatchupSpec<impl Fn() -> Cluster, impl Fn() -> Vec<JobSpec>> {
        MatchupSpec {
            make_cluster: || ec2_20_node(0.5, 1e9),
            make_jobs: || {
                vec![
                    JobSpec::new(0, "g", JobKind::Grep, 2048.0, 32),
                    JobSpec::new(1, "w", JobKind::WordCount, 2048.0, 32),
                ]
            },
            seed: 42,
            lips: SchedulerConfig::small_cluster(400.0),
        }
    }

    #[test]
    fn all_schedulers_complete_and_lips_wins() {
        let m = run_matchup(&spec(), &SchedulerKind::ALL);
        assert_eq!(m.reports.len(), 4);
        for (k, r) in &m.reports {
            assert_eq!(r.outcomes.len(), 2, "{}", k.label());
        }
        // The paper's headline ordering.
        assert!(m.lips_saving_vs(SchedulerKind::HadoopDefault) > 0.0);
        assert!(m.lips_saving_vs(SchedulerKind::Delay) > 0.0);
    }

    #[test]
    fn matchup_is_deterministic() {
        let a = run_matchup(&spec(), &[SchedulerKind::Lips]);
        let b = run_matchup(&spec(), &[SchedulerKind::Lips]);
        assert_eq!(
            a.get(SchedulerKind::Lips).metrics.total_dollars(),
            b.get(SchedulerKind::Lips).metrics.total_dollars()
        );
    }
}
