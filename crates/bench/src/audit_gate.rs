//! The `--audit` flag shared by the reproduction binaries.
//!
//! When present, the binary first lints and *certifies* the paper's three
//! LP families (Fig 2 immobile-data, Fig 3 co-scheduling, Fig 4 online
//! epoch) on the same 20-node testbed the experiments run on, across all
//! three node-mix settings. Any lint error or failed optimality
//! certificate aborts the run — numbers produced from an uncertified
//! model never reach the tables.

use lips_audit::Severity;
use lips_cluster::ec2_20_node;
use lips_core::lp_build::{audit_instance, EpochSolver, LpInstance, PruneConfig};
use lips_core::offline::lp_jobs_from_specs;
use lips_sim::Placement;
use lips_workload::{bind_workload, table_iv_suite, PlacementPolicy};

/// True when `--audit` was passed on the command line.
pub fn requested() -> bool {
    std::env::args().any(|a| a == "--audit")
}

/// Run the audit if `--audit` was passed; panics on any failure so a
/// broken model can never produce a quietly-wrong figure.
pub fn maybe_audit(epoch: f64) {
    if requested() {
        run(epoch);
    }
}

/// Lint + certify the Fig 2/3/4 models on the 20-node testbed.
pub fn run(epoch: f64) {
    println!("-- audit: linting and certifying Fig 2/3/4 LPs on the 20-node testbed --");
    for (label, c1_fraction) in [
        ("(i) 0%c1", 0.0),
        ("(ii) 25%c1", 0.25),
        ("(iii) 50%c1", 0.5),
    ] {
        let mut cluster = ec2_20_node(c1_fraction, 3600.0);
        let jobs = table_iv_suite();
        let bound = bind_workload(&mut cluster, jobs, PlacementPolicy::RandomUniform, 2013);
        let placement = Placement::from_cluster(&cluster);
        let lp_jobs = lp_jobs_from_specs(&bound.jobs, &placement);

        let fig2 = LpInstance {
            cluster: &cluster,
            jobs: lp_jobs,
            duration: 3600.0,
            fake_cost: None,
            allow_moves: false,
            enforce_transfer_time: false,
            store_free_mb: vec![],
            pool_floors: vec![],
            prune: PruneConfig::default(),
        };
        let fig3 = LpInstance {
            allow_moves: true,
            ..fig2.clone()
        };
        let fig4 = LpInstance {
            duration: epoch,
            fake_cost: Some(1.0),
            enforce_transfer_time: true,
            ..fig3.clone()
        };

        for (family, inst) in [("fig2", &fig2), ("fig3", &fig3), ("fig4", &fig4)] {
            let lints = audit_instance(inst);
            let errors: Vec<_> = lints
                .iter()
                .filter(|l| l.severity == Severity::Error)
                .collect();
            assert!(errors.is_empty(), "audit {family} {label}: {errors:?}");
            let report = EpochSolver::new(inst)
                .certify()
                .run()
                .unwrap_or_else(|e| panic!("audit {family} {label}: solve failed: {e}"));
            let cert = report.certificate.expect("certification was requested");
            assert!(cert.is_optimal(), "audit {family} {label}: {cert}");
            println!(
                "   {family} {label}: {} warnings, gap {:.2e} -> OPTIMAL",
                lints.len(),
                cert.as_full().expect("direct solve").duality_gap
            );
        }
    }
    println!("-- audit passed --\n");
}
