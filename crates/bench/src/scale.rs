//! The `BENCH_scale.json` trajectory: nodes × jobs vs. per-phase epoch
//! wall-time at 100 / 1k / 10k nodes.
//!
//! Each point replays a Google-trace-shaped workload
//! ([`lips_workload::google_synth`], round-tripped through the TSV
//! *reader* so the benchmark exercises the same parsing path a real
//! cluster-data summary file takes) against an `ec2_mixed_cluster` of the
//! point's size, solved with the block-angular sharded path
//! ([`EpochSolver::sharded`]) and chained shard/master bases across
//! epochs. Every certified epoch records the solver-metered
//! build / solve / certify split plus shard fan-out telemetry.
//!
//! The 10k-node point runs the §IV greedy **uncertified** by default —
//! the honest scale story is that certification (a full-model KKT pass:
//! every excluded column priced) costs more than the solve at that scale
//! — and records a *certified probe* alongside it: one sharded epoch at
//! the same node count (optionally a reduced job count) whose phase split
//! documents exactly what certification costs there. See DESIGN.md §3.14.

use std::io::Cursor;
use std::time::Instant;

use lips_cluster::{ec2_mixed_cluster, Cluster, DataId, StoreId};
use lips_core::lp_build::{EpochSolver, LpInstance, LpJob, PruneConfig, ShardOptions, ShardState};
use lips_core::offline::greedy_schedule;
use lips_workload::{
    google_records_to_jobs, google_synth, parse_google_tsv, write_google_tsv, GoogleSynthCfg,
};
use serde::Serialize;

/// One scale point's workload + solve policy.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleSpec {
    pub nodes: usize,
    pub jobs: usize,
    pub epochs: usize,
    /// `true`: the sharded certified path. `false`: the §IV greedy,
    /// uncertified (10k-node default).
    pub certified: bool,
    /// With `certified = false`, additionally run one *certified* sharded
    /// epoch at this node count with this many jobs, recording what the
    /// certified path costs at the scale the greedy serves.
    pub probe_jobs: Option<usize>,
}

/// One epoch of a scale point, on the workspace-wide stable schema
/// ([`lips_core::EpochRecord`]). Scale-specific field semantics:
/// `outcome` is `"sharded"` or `"greedy"`, `epoch_ms` the whole-epoch
/// wall-clock metered around the call, `incremental` whether carried
/// shard/master state was re-used (always false for the stateless
/// greedy), and the greedy leaves every model-side counter at zero —
/// it builds no model and certifies nothing, which is the point being
/// measured.
pub type ScaleEpoch = lips_core::EpochRecord;

/// One (nodes × jobs) point of the trajectory.
#[derive(Debug, Clone, Serialize)]
pub struct ScalePoint {
    pub nodes: usize,
    pub jobs: usize,
    /// `"sharded"` (certified) or `"greedy"` (uncertified).
    pub mode: String,
    pub epochs: Vec<ScaleEpoch>,
    pub total_build_ms: f64,
    pub total_solve_ms: f64,
    pub total_certify_ms: f64,
    pub total_epoch_ms: f64,
    pub all_certified: bool,
    /// Greedy points only: one certified sharded epoch at the same node
    /// count (`probe_jobs` jobs) — the measured certification cost the
    /// greedy avoids.
    pub certified_probe: Option<ScaleEpoch>,
    /// Job count of the certified probe, when present.
    pub probe_jobs: Option<usize>,
}

/// The default 100 / 1k / 10k trajectory of the acceptance criterion.
pub fn default_series() -> Vec<ScaleSpec> {
    vec![
        ScaleSpec {
            nodes: 100,
            jobs: 512,
            epochs: 3,
            certified: true,
            probe_jobs: None,
        },
        ScaleSpec {
            nodes: 1000,
            jobs: 2048,
            epochs: 3,
            certified: true,
            probe_jobs: None,
        },
        ScaleSpec {
            nodes: 10_000,
            jobs: 2048,
            epochs: 2,
            certified: false,
            probe_jobs: Some(256),
        },
    ]
}

/// Build the point's LP job set by synthesizing a Google-shaped trace and
/// feeding it through the real TSV reader. Every data-bearing job holds
/// its input on one store (round-robin), exactly like the epoch-sequence
/// benchmark; input-less service jobs carry fixed CPU work.
pub fn google_scale_jobs(cluster: &Cluster, n_jobs: usize, seed: u64) -> Vec<LpJob> {
    let cfg = GoogleSynthCfg {
        jobs: n_jobs,
        ..Default::default()
    };
    let mut buf = Vec::new();
    write_google_tsv(&google_synth(&cfg, seed), &mut buf).expect("in-memory write");
    let recs = parse_google_tsv(Cursor::new(buf)).expect("synth emits well-formed TSV");
    let specs = google_records_to_jobs(&recs);
    let stores = cluster.num_stores();
    specs
        .iter()
        .map(|s| {
            let size = s.effective_input_mb();
            LpJob {
                id: s.id,
                data: (size >= 1.0).then_some(DataId(s.id.0)),
                size_mb: size,
                tcp: s.tcp_ecu_sec_per_mb,
                fixed_ecu: s.ecu_sec_per_task * f64::from(s.tasks),
                avail: if size >= 1.0 {
                    vec![(StoreId(s.id.0 % stores), 1.0)]
                } else {
                    vec![]
                },
            }
        })
        .collect()
}

/// The epoch-`e` view of the base job set: surviving data shrinks ~3 % per
/// epoch (same steady-state drift as the epoch-sequence benchmark).
fn decayed(base: &[LpJob], epoch: usize) -> Vec<LpJob> {
    let remaining = 0.97f64.powi(epoch as i32).max(0.25);
    base.iter()
        .cloned()
        .map(|mut j| {
            j.size_mb *= remaining;
            j
        })
        .collect()
}

fn instance<'c>(cluster: &'c Cluster, jobs: Vec<LpJob>) -> LpInstance<'c> {
    LpInstance {
        cluster,
        jobs,
        duration: 600.0,
        fake_cost: Some(1.0),
        allow_moves: true,
        enforce_transfer_time: true,
        store_free_mb: vec![],
        pool_floors: vec![],
        prune: PruneConfig {
            max_machines_per_job: Some(16),
            max_new_stores_per_job: Some(6),
        },
    }
}

fn with_width<'a, 'b>(s: EpochSolver<'a, 'b>, threads: usize) -> EpochSolver<'a, 'b> {
    if threads > 0 {
        s.threads(threads)
    } else {
        s
    }
}

/// One certified sharded epoch, recorded with its phase split.
fn sharded_epoch(
    cluster: &Cluster,
    jobs: Vec<LpJob>,
    epoch: usize,
    state: Option<&ShardState>,
    threads: usize,
) -> (ScaleEpoch, ShardState) {
    let n_jobs = jobs.len();
    let carried = state.is_some();
    let inst = instance(cluster, jobs);
    let t = Instant::now();
    let report = with_width(EpochSolver::new(&inst), threads)
        .sharded_with(ShardOptions::default(), state)
        .run()
        .expect("scale epoch LP solves");
    let epoch_ms = t.elapsed().as_secs_f64() * 1e3;
    let certified = report
        .certificate
        .as_ref()
        .expect("sharded mode always certifies")
        .is_optimal();
    let (state, stats) = report.shard.expect("sharded mode carries state");
    let s = &report.schedule.stats;
    let rec = ScaleEpoch {
        epoch,
        jobs: n_jobs,
        outcome: "sharded".to_string(),
        warm: format!("{:?}", s.warm),
        iterations: s.iterations,
        phase1_iterations: s.phase1_iterations,
        refactors: s.refactors,
        ftran_nnz: s.ftran_nnz,
        dual_pivots: s.dual_pivots,
        bound_flips: s.bound_flips,
        pricing_rounds: stats.rounds,
        active_columns: stats.active_columns,
        total_columns: stats.total_columns,
        shards: stats.shards,
        shard_failures: stats.shard_failures,
        subproblem_ms: stats.subproblem_ms,
        presolve_removed: 0,
        build_ms: report.timings.build_ms,
        solve_ms: report.timings.solve_ms,
        certify_ms: report.timings.certify_ms,
        epoch_ms,
        objective: report.schedule.predicted_dollars,
        certified,
        incremental: carried,
    };
    (rec, state)
}

/// Run one point of the trajectory.
pub fn run_scale_point(spec: &ScaleSpec, threads: usize) -> ScalePoint {
    let cluster = ec2_mixed_cluster(spec.nodes, 0.4, 1e9, 1);
    let base = google_scale_jobs(&cluster, spec.jobs, 1);
    let mut out = ScalePoint {
        nodes: spec.nodes,
        jobs: spec.jobs,
        mode: if spec.certified { "sharded" } else { "greedy" }.to_string(),
        epochs: Vec::with_capacity(spec.epochs),
        total_build_ms: 0.0,
        total_solve_ms: 0.0,
        total_certify_ms: 0.0,
        total_epoch_ms: 0.0,
        all_certified: spec.certified,
        certified_probe: None,
        probe_jobs: None,
    };
    let mut state: Option<ShardState> = None;
    for e in 0..spec.epochs {
        let jobs = decayed(&base, e);
        let rec = if spec.certified {
            let (rec, next) = sharded_epoch(&cluster, jobs, e, state.as_ref(), threads);
            state = Some(next);
            rec
        } else {
            let n_jobs = jobs.len();
            let t = Instant::now();
            let (_picks, dollars) = greedy_schedule(&cluster, &jobs);
            let ms = t.elapsed().as_secs_f64() * 1e3;
            ScaleEpoch {
                epoch: e,
                jobs: n_jobs,
                outcome: "greedy".to_string(),
                solve_ms: ms,
                epoch_ms: ms,
                objective: dollars,
                ..ScaleEpoch::degraded(e, n_jobs)
            }
        };
        out.total_build_ms += rec.build_ms;
        out.total_solve_ms += rec.solve_ms;
        out.total_certify_ms += rec.certify_ms;
        out.total_epoch_ms += rec.epoch_ms;
        out.all_certified &= rec.certified || !spec.certified;
        out.epochs.push(rec);
    }
    if !spec.certified {
        if let Some(pj) = spec.probe_jobs {
            let probe_base = google_scale_jobs(&cluster, pj, 1);
            let (rec, _) = sharded_epoch(&cluster, probe_base, 0, None, threads);
            out.probe_jobs = Some(pj);
            out.certified_probe = Some(rec);
        }
    }
    out
}

/// The full `BENCH_scale.json` payload.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleReport {
    pub config: String,
    pub threads: usize,
    pub host_parallelism: usize,
    pub points: Vec<ScalePoint>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn google_jobs_feed_the_lp() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let jobs = google_scale_jobs(&cluster, 32, 1);
        assert_eq!(jobs.len(), 32);
        // Data-bearing jobs hold their input on a real store; service jobs
        // carry fixed work instead.
        for j in &jobs {
            if j.size_mb >= 1.0 {
                assert_eq!(j.avail.len(), 1);
                assert!(j.avail[0].0 .0 < cluster.num_stores());
            } else {
                assert!(j.fixed_ecu > 0.0, "input-less job with no work");
            }
        }
        // Deterministic per seed (the whole bench depends on it).
        let again = google_scale_jobs(&cluster, 32, 1);
        for (a, b) in jobs.iter().zip(&again) {
            assert_eq!(a.size_mb.to_bits(), b.size_mb.to_bits());
        }
    }

    #[test]
    fn tiny_certified_point_records_phases() {
        let spec = ScaleSpec {
            nodes: 20,
            jobs: 12,
            epochs: 2,
            certified: true,
            probe_jobs: None,
        };
        let p = run_scale_point(&spec, 1);
        assert!(p.all_certified);
        assert_eq!(p.epochs.len(), 2);
        for r in &p.epochs {
            assert!(r.certified);
            assert!(r.shards > 0);
            assert!(r.build_ms > 0.0 && r.solve_ms > 0.0 && r.certify_ms > 0.0);
            assert!(r.build_ms + r.solve_ms + r.certify_ms <= r.epoch_ms * 1.05 + 1.0);
        }
    }

    #[test]
    fn tiny_greedy_point_probes_certification_cost() {
        let spec = ScaleSpec {
            nodes: 20,
            jobs: 12,
            epochs: 1,
            certified: false,
            probe_jobs: Some(8),
        };
        let p = run_scale_point(&spec, 1);
        assert!(!p.all_certified);
        assert_eq!(p.mode, "greedy");
        assert!(p.epochs[0].objective > 0.0);
        let probe = p.certified_probe.as_ref().expect("probe requested");
        assert!(probe.certified);
        assert!(probe.certify_ms > 0.0, "the probe exists to meter this");
        assert_eq!(p.probe_jobs, Some(8));
    }
}
