//! Machine-readable experiment records, so EXPERIMENTS.md numbers can be
//! regenerated and diffed (`--json` flag on every binary).

use serde::{Deserialize, Serialize};

/// One experiment's key numbers, serialized as JSON by the binaries.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentRecord {
    /// Experiment id, e.g. `"fig6"`.
    pub id: String,
    /// Free-form label of the configuration, e.g. `"setting (iii)"`.
    pub config: String,
    /// Named scalar results, e.g. `("lips_dollars", 0.31)`.
    pub values: Vec<(String, f64)>,
}

impl ExperimentRecord {
    pub fn new(id: impl Into<String>, config: impl Into<String>) -> Self {
        ExperimentRecord {
            id: id.into(),
            config: config.into(),
            values: Vec::new(),
        }
    }

    pub fn value(mut self, name: impl Into<String>, v: f64) -> Self {
        self.values.push((name.into(), v));
        self
    }

    /// Render as a single JSON line.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("record serializes")
    }
}

/// Print records as JSON lines if `--json` was passed, otherwise no-op.
pub fn emit_json(records: &[ExperimentRecord]) {
    if std::env::args().any(|a| a == "--json") {
        for r in records {
            println!("{}", r.to_json());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_roundtrip() {
        let r = ExperimentRecord::new("fig6", "setting (i)")
            .value("lips", 0.25)
            .value("default", 1.0);
        let parsed: ExperimentRecord = serde_json::from_str(&r.to_json()).unwrap();
        assert_eq!(parsed.id, "fig6");
        assert_eq!(parsed.values.len(), 2);
        assert_eq!(parsed.values[0].1, 0.25);
    }
}
