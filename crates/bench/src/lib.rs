//! # lips-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), built on a
//! small shared library:
//!
//! * [`table`] — fixed-width ASCII table printing (paper-style rows).
//! * [`matchup`] — run LiPS / Hadoop-default / delay / fair head-to-head
//!   on identical clusters, workloads, and initial placements.
//! * [`fig5`] — the analytic simulation sweep of Figure 5 (LP optimum vs
//!   the 100 %-locality ideal-delay baseline on random clusters).
//! * [`report`] — machine-readable experiment records (JSON) so
//!   EXPERIMENTS.md numbers are regenerable.
//!
//! Every experiment is seeded and deterministic.

pub mod audit_gate;
pub mod experiments;
pub mod fig5;
pub mod lp_epoch;
pub mod matchup;
pub mod report;
pub mod scale;
pub mod serve_traj;
pub mod table;

pub use experiments::{fig11_run, fig6_run, fig8_run, fig9_run, Fig6Setting, PAPER_SCHEDULERS};
pub use fig5::{fig5_point, Fig5Point, Fig5Result};
pub use matchup::{run_matchup, Matchup, MatchupSpec, SchedulerKind};
pub use report::ExperimentRecord;
pub use table::Table;
