//! The Figure 5 analytic sweep: average cost reduction of the LiPS LP
//! optimum versus the 100 %-locality ideal-delay baseline, on random
//! clusters and workloads, as a function of problem size.
//!
//! Exactly the paper's §VI-B simulation: "The simulator creates and solves
//! the LP problem, and therefore, computes the dollar cost of the optimal
//! scheduling result. With the same setting, it then shuffles the data
//! blocks randomly within the cluster and then schedules ALL tasks local
//! to the data blocks … the result of such a default scheduling is the
//! same as the ideal delay scheduler."

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use lips_cluster::{random_cluster, RandomClusterCfg, StoreId, BLOCK_MB};
use lips_core::lp_build::{EpochSolver, LpInstance, LpJob, PruneConfig};
use lips_workload::{random_workload, RandomWorkloadCfg};

/// One x-axis point of Figure 5.
#[derive(Debug, Clone, Copy)]
pub struct Fig5Point {
    /// Total task count `J` (the figure's first coordinate).
    pub tasks: usize,
    /// Data stores `S`.
    pub stores: usize,
    /// Computation nodes `M`.
    pub machines: usize,
}

/// Result of one point, averaged over trials.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    pub point: Fig5Point,
    /// Mean LP-optimal dollars.
    pub lips_dollars: f64,
    /// Mean ideal-delay (100 % locality after random shuffle) dollars.
    pub ideal_delay_dollars: f64,
    /// Mean cost reduction `1 − lips/ideal`.
    pub reduction: f64,
    pub trials: usize,
}

/// Paper x-axis points (reading Figure 5's axis labels).
pub fn paper_points() -> Vec<Fig5Point> {
    vec![
        Fig5Point {
            tasks: 200,
            stores: 10,
            machines: 10,
        },
        Fig5Point {
            tasks: 400,
            stores: 25,
            machines: 25,
        },
        Fig5Point {
            tasks: 600,
            stores: 50,
            machines: 50,
        },
        Fig5Point {
            tasks: 800,
            stores: 75,
            machines: 75,
        },
        Fig5Point {
            tasks: 1000,
            stores: 100,
            machines: 100,
        },
    ]
}

/// Evaluate one Figure 5 point over `trials` random instances.
pub fn fig5_point(point: Fig5Point, trials: usize, seed: u64) -> Fig5Result {
    let mut lips_sum = 0.0;
    let mut ideal_sum = 0.0;
    for t in 0..trials {
        let trial_seed = seed.wrapping_mul(1_000_003).wrapping_add(t as u64);
        let (lips, ideal) = one_trial(point, trial_seed);
        lips_sum += lips;
        ideal_sum += ideal;
    }
    let (lips, ideal) = (lips_sum / trials as f64, ideal_sum / trials as f64);
    Fig5Result {
        point,
        lips_dollars: lips,
        ideal_delay_dollars: ideal,
        reduction: 1.0 - lips / ideal,
        trials,
    }
}

/// One random instance: returns `(lips_dollars, ideal_delay_dollars)`.
fn one_trial(point: Fig5Point, seed: u64) -> (f64, f64) {
    let cluster_cfg = RandomClusterCfg {
        machines: point.machines,
        stores: point.stores.max(point.machines),
        ..Default::default()
    };
    let cluster = random_cluster(&cluster_cfg, seed);
    // ~50 tasks per job, each task one block (paper jobs are block-split).
    let n_jobs = (point.tasks / 50).max(2);
    let blocks_per_job = point.tasks / n_jobs;
    let wl_cfg = RandomWorkloadCfg {
        jobs: n_jobs,
        input_mb: (
            blocks_per_job as f64 * BLOCK_MB,
            blocks_per_job as f64 * BLOCK_MB,
        ),
        ..Default::default()
    };
    let jobs = random_workload(&wl_cfg, seed.wrapping_add(1));
    let mut rng = ChaCha8Rng::seed_from_u64(seed.wrapping_add(2));

    // --- LiPS: LP optimum with each job's data at one random origin -----
    let lp_jobs: Vec<LpJob> = jobs
        .iter()
        .map(|j| LpJob {
            id: j.id,
            data: Some(lips_cluster::DataId(j.id.0)),
            size_mb: j.input_mb,
            tcp: j.tcp_ecu_sec_per_mb,
            fixed_ecu: 0.0,
            avail: vec![(StoreId(rng.gen_range(0..point.machines)), 1.0)],
        })
        .collect();
    let uptime = 1e7; // abundant time: the offline setting
                      // With abundant capacity the LP only ever uses the cheapest machines,
                      // so pruning the candidate sets loses nothing while keeping the
                      // 100-node points fast.
    let inst = LpInstance {
        cluster: &cluster,
        jobs: lp_jobs,
        duration: uptime,
        fake_cost: None,
        allow_moves: true,
        enforce_transfer_time: false,
        store_free_mb: vec![],
        pool_floors: vec![],
        prune: PruneConfig {
            max_machines_per_job: Some(40),
            max_new_stores_per_job: Some(12),
        },
    };
    let sched = EpochSolver::new(&inst)
        .certify()
        .run()
        .expect("offline LP solvable")
        .schedule;
    let lips_dollars = sched.predicted_dollars;

    // --- Ideal delay: random block shuffle, every task local ------------
    // Each block lands on a random machine's store and runs there:
    // cost = block work × that machine's CPU price; zero transfer.
    let mut ideal = 0.0;
    for j in &jobs {
        let blocks = (j.input_mb / BLOCK_MB).ceil() as usize;
        let work_per_block = j.total_ecu_sec() / blocks as f64;
        for _ in 0..blocks {
            let m = rng.gen_range(0..point.machines);
            ideal += work_per_block * cluster.machines[m].cpu_cost;
        }
    }
    (lips_dollars, ideal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_point_positive_reduction() {
        let r = fig5_point(
            Fig5Point {
                tasks: 100,
                stores: 8,
                machines: 8,
            },
            3,
            1,
        );
        assert!(r.lips_dollars > 0.0);
        assert!(r.ideal_delay_dollars > 0.0);
        assert!(r.reduction > 0.0, "LP must beat random-local: {r:?}");
        assert!(r.reduction < 1.0);
    }

    #[test]
    fn reduction_grows_with_cluster_size() {
        // The figure's headline shape: more nodes = more freedom = larger
        // savings. Averaged over enough trials that the gap dominates
        // per-seed noise, and compared with a small slack: the claim is
        // about the trend across a 3x size jump, not about any single
        // seed's sampling noise, so a strict zero-margin comparison would
        // make the test a coin flip near ties.
        let small = fig5_point(
            Fig5Point {
                tasks: 200,
                stores: 10,
                machines: 10,
            },
            10,
            7,
        );
        let large = fig5_point(
            Fig5Point {
                tasks: 400,
                stores: 30,
                machines: 30,
            },
            10,
            7,
        );
        assert!(
            large.reduction > small.reduction - 0.01,
            "small {} large {}",
            small.reduction,
            large.reduction
        );
        // Both ends of the sweep must still show a real saving.
        assert!(small.reduction > 0.05, "small point saved nothing");
        assert!(large.reduction > 0.05, "large point saved nothing");
    }

    #[test]
    fn deterministic_per_seed() {
        let p = Fig5Point {
            tasks: 100,
            stores: 8,
            machines: 8,
        };
        let a = fig5_point(p, 2, 3);
        let b = fig5_point(p, 2, 3);
        assert_eq!(a.lips_dollars, b.lips_dollars);
        assert_eq!(a.ideal_delay_dollars, b.ideal_delay_dollars);
    }
}
