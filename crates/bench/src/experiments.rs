//! Shared experiment logic for the figure binaries (Figures 6–11 all run
//! scheduler matchups on the paper's two testbeds; the binaries only
//! format results).

use lips_cluster::{ec2_100_node, ec2_20_node, Cluster};
use lips_core::SchedulerConfig;
use lips_workload::{swim_trace, table_iv_suite, JobSpec, SwimCfg};

use crate::matchup::{run_matchup, Matchup, MatchupSpec, SchedulerKind};

/// The three cluster settings of Figure 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig6Setting {
    /// (i) all 20 nodes m1.medium.
    AllM1Medium,
    /// (ii) 25 % c1.medium.
    QuarterC1,
    /// (iii) 50 % c1.medium.
    HalfC1,
}

impl Fig6Setting {
    pub const ALL: [Fig6Setting; 3] = [
        Fig6Setting::AllM1Medium,
        Fig6Setting::QuarterC1,
        Fig6Setting::HalfC1,
    ];

    pub fn c1_fraction(self) -> f64 {
        match self {
            Fig6Setting::AllM1Medium => 0.0,
            Fig6Setting::QuarterC1 => 0.25,
            Fig6Setting::HalfC1 => 0.5,
        }
    }

    pub fn label(self) -> &'static str {
        match self {
            Fig6Setting::AllM1Medium => "(i) 20x m1.medium",
            Fig6Setting::QuarterC1 => "(ii) 25% c1.medium",
            Fig6Setting::HalfC1 => "(iii) 50% c1.medium",
        }
    }
}

/// Schedulers compared in the paper's testbed figures.
pub const PAPER_SCHEDULERS: [SchedulerKind; 3] = [
    SchedulerKind::Lips,
    SchedulerKind::HadoopDefault,
    SchedulerKind::Delay,
];

/// Figures 6/7: Table IV suite (J1–J9, 1608 maps) on the 20-node testbed.
pub fn fig6_run(setting: Fig6Setting, epoch_s: f64, seed: u64) -> Matchup {
    let spec = MatchupSpec {
        make_cluster: move || ec2_20_node(setting.c1_fraction(), 1e9),
        make_jobs: table_iv_suite,
        seed,
        lips: SchedulerConfig::small_cluster(epoch_s),
    };
    run_matchup(&spec, &PAPER_SCHEDULERS)
}

/// Figure 8: LiPS-only epoch sweep on setting (iii).
pub fn fig8_run(epoch_s: f64, seed: u64) -> lips_sim::SimReport {
    let spec = MatchupSpec {
        make_cluster: || ec2_20_node(0.5, 1e9),
        make_jobs: table_iv_suite,
        seed,
        lips: SchedulerConfig::small_cluster(epoch_s),
    };
    let m = run_matchup(&spec, &[SchedulerKind::Lips]);
    m.reports.into_iter().next().unwrap().1
}

/// Figures 9/10: SWIM-like 400-job trace on the 100-node testbed.
///
/// `scale` shrinks the trace (job count) for quick runs; `1.0` is the
/// paper's full 400-job day.
pub fn fig9_run(epoch_s: f64, seed: u64, scale: f64) -> Matchup {
    let cfg = SwimCfg {
        jobs: (400.0 * scale).round().max(10.0) as usize,
        ..Default::default()
    };
    let spec = MatchupSpec {
        make_cluster: move || ec2_100_node(1e9, seed),
        make_jobs: move || swim_trace(&cfg, seed),
        seed,
        lips: SchedulerConfig::large_cluster(epoch_s),
    };
    run_matchup(&spec, &PAPER_SCHEDULERS)
}

/// Figure 11: per-node accumulated CPU (busy) seconds under LiPS for one
/// epoch length, on the Fig 6 setting (iii) testbed. Returns
/// `(machine label, busy seconds)` sorted by machine id.
pub fn fig11_run(epoch_s: f64, seed: u64) -> Vec<(String, f64)> {
    let report = fig8_run(epoch_s, seed);
    let cluster = fig6_cluster_for_labels();
    let mut rows: Vec<(String, f64)> = cluster
        .machines
        .iter()
        .map(|m| {
            let busy = report
                .metrics
                .busy_sec_by_machine
                .get(&m.id)
                .copied()
                .unwrap_or(0.0);
            (m.name.clone(), busy)
        })
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn fig6_cluster_for_labels() -> Cluster {
    ec2_20_node(0.5, 1e9)
}

/// A scaled-down Table IV suite (same job mix, smaller inputs) for quick
/// demo/CI runs.
pub fn mini_suite(divisor: u32) -> Vec<JobSpec> {
    table_iv_suite()
        .into_iter()
        .map(|mut j| {
            j.tasks = (j.tasks / divisor).max(1);
            j.input_mb /= f64::from(divisor);
            j
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_settings_enumerate() {
        assert_eq!(Fig6Setting::AllM1Medium.c1_fraction(), 0.0);
        assert_eq!(Fig6Setting::HalfC1.c1_fraction(), 0.5);
        assert_eq!(Fig6Setting::ALL.len(), 3);
    }

    #[test]
    fn mini_suite_preserves_mix() {
        let mini = mini_suite(8);
        assert_eq!(mini.len(), 9);
        let total: u32 = mini.iter().map(|j| j.tasks).sum();
        assert_eq!(total, 1608 / 8 + 1); // Pi jobs floor to 4/8 -> 0 -> max(1)
    }

    #[test]
    fn fig9_scaled_down_completes_with_all_paper_schedulers() {
        // A 5% trace on the full 100-node testbed, end to end.
        let m = fig9_run(600.0, 2, 0.05);
        for (k, r) in &m.reports {
            assert_eq!(r.outcomes.len(), 20, "{}", k.label());
        }
        // LiPS must be the cheapest of the three.
        assert!(m.lips_saving_vs(SchedulerKind::HadoopDefault) > 0.0);
        assert!(m.lips_saving_vs(SchedulerKind::Delay) > 0.0);
    }
}
