//! The 20-epoch cold-vs-warm LP workload behind `BENCH_lp_epoch.json`.
//!
//! Models the scheduler's steady state. A LiPS epoch is ~2000 s and the
//! Table-IV jobs run for hours, so consecutive epochs almost always see
//! the *same* job set with shrinking remaining data (transfers and maps
//! completed last epoch), and only occasionally a departure + arrival.
//! The sequence here mirrors that: sizes decay a few percent per epoch of
//! a job's age, and every `churn_every` epochs `churn` jobs complete and
//! are replaced by fresh ones. Cold mode solves each epoch from scratch;
//! warm mode chains each epoch's optimal basis into the next via
//! [`lips_core::lp_build::solve_certified_warm`]. Every epoch is
//! KKT-certified in both modes, so the comparison can never trade
//! correctness for speed.

use lips_cluster::{ec2_mixed_cluster, Cluster, DataId, StoreId};
use lips_core::lp_build::{solve_certified_warm, LpInstance, LpJob, PruneConfig};
use lips_lp::{WarmOutcome, WarmStart};
use lips_workload::JobId;
use serde::Serialize;

/// Epoch count used by the benchmark and the acceptance gate.
pub const EPOCHS: usize = 20;

/// The large-cluster configuration of the acceptance criterion: 100 nodes,
/// 40 % c1.medium, Fig-6 three-zone layout.
pub fn large_cluster() -> Cluster {
    ec2_mixed_cluster(100, 0.4, 1e9, 1)
}

/// One epoch's solver telemetry.
#[derive(Debug, Clone, Serialize)]
pub struct EpochRecord {
    pub epoch: usize,
    pub jobs: usize,
    pub iterations: usize,
    pub phase1_iterations: usize,
    pub refactors: usize,
    pub ftran_nnz: u64,
    /// `"Cold"`, `"Warm"`, or `"WarmRepaired"`.
    pub warm: String,
    /// Simplex wall-time as reported by the solver (excludes model
    /// construction and certification, which are identical in both modes).
    pub solve_ms: f64,
    pub objective: f64,
    pub certified: bool,
}

/// A full epoch sequence under one starting policy.
#[derive(Debug, Clone, Serialize)]
pub struct EpochRun {
    pub mode: String,
    pub epochs: Vec<EpochRecord>,
    pub total_iterations: usize,
    pub total_solve_ms: f64,
    pub total_ftran_nnz: u64,
    /// Epochs that actually started from the previous basis (warm mode
    /// only; the first epoch is always cold).
    pub warm_solves: usize,
    pub all_certified: bool,
}

/// Job set of epoch `e`: a sliding window over job ids that advances by
/// `churn` every `churn_every` epochs, with each surviving job's remaining
/// data shrinking ~3 % per epoch of age (work completed since arrival).
fn epoch_jobs(
    cluster: &Cluster,
    epoch: usize,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
) -> Vec<LpJob> {
    let first = (epoch / churn_every.max(1)) * churn;
    (first..first + base_jobs)
        .map(|k| {
            // Epoch the sliding window first reached job k.
            let arrived = if k < base_jobs {
                0
            } else {
                ((k - base_jobs) / churn.max(1) + 1) * churn_every.max(1)
            };
            let age = epoch.saturating_sub(arrived);
            let remaining = 0.97f64.powi(age as i32).max(0.25);
            LpJob {
                id: JobId(k),
                data: Some(DataId(k)),
                size_mb: 2048.0 * remaining,
                tcp: 1.0,
                fixed_ecu: 0.0,
                avail: vec![(StoreId(k % cluster.num_stores()), 1.0)],
            }
        })
        .collect()
}

/// Run `epochs` consecutive Fig-4 solves on `cluster`, either chaining
/// warm-start bases (`warm = true`) or cold-starting every epoch.
pub fn run_epochs(
    cluster: &Cluster,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
    epochs: usize,
    warm: bool,
) -> EpochRun {
    let mut basis: Option<WarmStart> = None;
    let mut out = EpochRun {
        mode: if warm { "warm" } else { "cold" }.to_string(),
        epochs: Vec::with_capacity(epochs),
        total_iterations: 0,
        total_solve_ms: 0.0,
        total_ftran_nnz: 0,
        warm_solves: 0,
        all_certified: true,
    };
    for e in 0..epochs {
        let jobs = epoch_jobs(cluster, e, base_jobs, churn, churn_every);
        let n_jobs = jobs.len();
        let inst = LpInstance {
            cluster,
            jobs,
            duration: 600.0,
            fake_cost: Some(1.0),
            allow_moves: true,
            enforce_transfer_time: true,
            store_free_mb: vec![],
            pool_floors: vec![],
            prune: PruneConfig {
                max_machines_per_job: Some(16),
                max_new_stores_per_job: Some(6),
            },
        };
        let seed = if warm { basis.as_ref() } else { None };
        let (sched, cert, next) = solve_certified_warm(&inst, seed).expect("epoch LP solves");
        basis = Some(next);

        let stats = sched.stats;
        if stats.warm != WarmOutcome::Cold {
            out.warm_solves += 1;
        }
        out.total_iterations += stats.iterations;
        out.total_solve_ms += stats.solve_ms;
        out.total_ftran_nnz += stats.ftran_nnz;
        out.all_certified &= cert.is_optimal();
        out.epochs.push(EpochRecord {
            epoch: e,
            jobs: n_jobs,
            iterations: stats.iterations,
            phase1_iterations: stats.phase1_iterations,
            refactors: stats.refactors,
            ftran_nnz: stats.ftran_nnz,
            warm: format!("{:?}", stats.warm),
            solve_ms: stats.solve_ms,
            objective: sched.predicted_dollars,
            certified: cert.is_optimal(),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_sequence_chains_bases_and_certifies() {
        // Small config so the test stays fast; the full large-cluster
        // numbers are produced by the `lp_bench` binary.
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let cold = run_epochs(&cluster, 8, 1, 3, 6, false);
        let warm = run_epochs(&cluster, 8, 1, 3, 6, true);
        assert!(cold.all_certified && warm.all_certified);
        assert_eq!(cold.warm_solves, 0);
        assert!(
            warm.warm_solves >= 3,
            "only {}/4 possible epochs warm-started",
            warm.warm_solves
        );
        assert!(
            warm.total_iterations < cold.total_iterations,
            "warm {} vs cold {} iterations",
            warm.total_iterations,
            cold.total_iterations
        );
        // Same models, same optima regardless of starting basis.
        for (a, b) in cold.epochs.iter().zip(&warm.epochs) {
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: cold {} vs warm {}",
                a.epoch,
                a.objective,
                b.objective
            );
        }
    }
}
