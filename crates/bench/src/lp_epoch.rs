//! The 20-epoch cold/warm/colgen LP workload behind `BENCH_lp_epoch.json`.
//!
//! Models the scheduler's steady state. A LiPS epoch is ~2000 s and the
//! Table-IV jobs run for hours, so consecutive epochs almost always see
//! the *same* job set with shrinking remaining data (transfers and maps
//! completed last epoch), and only occasionally a departure + arrival.
//! The sequence here mirrors that: sizes decay a few percent per epoch of
//! a job's age, and every `churn_every` epochs `churn` jobs complete and
//! are replaced by fresh ones. Three solve policies are compared:
//!
//! * [`EpochMode::Cold`] — each epoch's full model from scratch;
//! * [`EpochMode::Warm`] — full model, chaining each epoch's optimal basis
//!   into the next ([`EpochSolver::warm`]);
//! * [`EpochMode::ColGen`] — a column-generated restricted master
//!   ([`EpochSolver::colgen`]) carrying the surviving active columns *and*
//!   the basis across epochs;
//! * [`EpochMode::Sharded`] — the block-angular decomposition
//!   ([`EpochSolver::sharded`]): per-zone subproblems solved in parallel
//!   feed a stitched restricted master, shard and master bases chained
//!   across epochs.
//!
//! Every epoch is KKT-certified in all modes (the restricted modes
//! against the **full** model, excluded columns priced), so the
//! comparison can never trade correctness for speed.
//!
//! [`run_epochs_faulted`] additionally scripts mid-sequence machine
//! revocations, rejoins, repricings, and a store loss into the epoch loop
//! — the LP-level half of the fault story: the chained basis is repaired
//! (dead-machine rows/columns dropped) instead of discarded, and every
//! epoch must end certified against the *surviving* cluster or be
//! explicitly recorded as degraded.

use std::collections::HashMap;
use std::time::Instant;

use lips_cluster::{ec2_mixed_cluster, Cluster, DataId, StoreId};
use lips_core::lp_build::{
    sanitize_warm_start, ColGenOptions, ColGenState, EpochSolver, LpInstance, LpJob, PruneConfig,
    ShardOptions, ShardState,
};
pub use lips_core::EpochRecord;
use lips_lp::{WarmOutcome, WarmStart};
use lips_workload::JobId;
use serde::Serialize;

/// Epoch count used by the benchmark and the acceptance gate.
pub const EPOCHS: usize = 20;

/// The large-cluster configuration of the acceptance criterion: 100 nodes,
/// 40 % c1.medium, Fig-6 three-zone layout.
pub fn large_cluster() -> Cluster {
    ec2_mixed_cluster(100, 0.4, 1e9, 1)
}

/// How consecutive epoch LPs are solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Full model, cold start every epoch.
    Cold,
    /// Full model, warm-started from the previous epoch's basis.
    Warm,
    /// Column-generated restricted master with cross-epoch column + basis
    /// reuse.
    ColGen,
    /// The churn fast path: certification-safe presolve + bounded
    /// dual-simplex re-solve from the previous epoch's basis
    /// ([`EpochSolver::dual`] + [`EpochSolver::presolve`]), falling back
    /// to the presolved warm primal when the carried basis is not dual
    /// feasible (always on the first epoch, which has no basis).
    Dual,
    /// The block-angular decomposition: machines partitioned into zone
    /// shards, per-shard restricted subproblems solved in parallel
    /// (dual-first from their prior-epoch bases), stitched and re-priced
    /// by a small master until the full-model KKT certifier accepts
    /// ([`EpochSolver::sharded`]), with shard + master bases carried
    /// across epochs.
    Sharded,
}

impl EpochMode {
    fn label(self) -> &'static str {
        match self {
            EpochMode::Cold => "cold",
            EpochMode::Warm => "warm",
            EpochMode::ColGen => "colgen",
            EpochMode::Dual => "dual",
            EpochMode::Sharded => "sharded",
        }
    }
}

// One epoch's solver telemetry is recorded on the workspace-wide stable
// schema, `lips_core::EpochRecord` (re-exported above): the same shape the
// online scheduler logs per decision epoch and the serve daemon exposes
// over its metrics endpoint. Bench-specific semantics of shared fields:
// `outcome` holds the [`EpochMode`] label (the rung is *chosen* here, not
// discovered by a ladder), `epoch_ms` is the honest whole-call wall-time
// (build + solve + pricing + certification, metered around the call rather
// than summed from phase timings), and `incremental` means the mode
// re-used carried state — a chained basis that warmed, or carried
// colgen/shard state.

/// A full epoch sequence under one starting policy.
#[derive(Debug, Clone, Serialize)]
pub struct EpochRun {
    pub mode: String,
    pub epochs: Vec<EpochRecord>,
    pub total_iterations: usize,
    pub total_solve_ms: f64,
    /// Solver-metered model-construction wall-time summed over epochs.
    pub total_build_ms: f64,
    /// Solver-metered certification wall-time summed over epochs.
    pub total_certify_ms: f64,
    /// Build + solve + certify wall-time summed over epochs.
    pub total_epoch_ms: f64,
    pub total_ftran_nnz: u64,
    pub total_pricing_rounds: usize,
    /// Epochs that actually started from the previous basis (warm/colgen
    /// modes; the first epoch is always cold).
    pub warm_solves: usize,
    /// Mean `active_columns / total_columns` across epochs (1.0 for the
    /// full-model modes). The acceptance gate wants ≤ 0.5 for colgen.
    pub active_column_share: f64,
    pub all_certified: bool,
}

/// Job set of epoch `e`: a sliding window over job ids that advances by
/// `churn` every `churn_every` epochs, with each surviving job's remaining
/// data shrinking ~3 % per epoch of age (work completed since arrival).
fn epoch_jobs(
    cluster: &Cluster,
    epoch: usize,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
) -> Vec<LpJob> {
    let first = (epoch / churn_every.max(1)) * churn;
    (first..first + base_jobs)
        .map(|k| {
            // Epoch the sliding window first reached job k.
            let arrived = if k < base_jobs {
                0
            } else {
                ((k - base_jobs) / churn.max(1) + 1) * churn_every.max(1)
            };
            let age = epoch.saturating_sub(arrived);
            let remaining = 0.97f64.powi(age as i32).max(0.25);
            LpJob {
                id: JobId(k),
                data: Some(DataId(k)),
                size_mb: 2048.0 * remaining,
                tcp: 1.0,
                fixed_ecu: 0.0,
                avail: vec![(StoreId(k % cluster.num_stores()), 1.0)],
            }
        })
        .collect()
}

/// Apply an explicit worker count to a solver (`0` keeps the default).
fn with_width<'a, 'b>(s: EpochSolver<'a, 'b>, threads: usize) -> EpochSolver<'a, 'b> {
    if threads > 0 {
        s.threads(threads)
    } else {
        s
    }
}

/// Run `epochs` consecutive Fig-4 solves on `cluster` under `mode`.
///
/// `threads` sets the worker count for model build, pricing, and
/// certification (`0` keeps [`EpochSolver`]'s default: `LIPS_THREADS` or
/// the host parallelism). The solve is bitwise identical at any width.
pub fn run_epochs(
    cluster: &Cluster,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
    epochs: usize,
    mode: EpochMode,
    threads: usize,
) -> EpochRun {
    let mut basis: Option<WarmStart> = None;
    let mut colgen_state: Option<ColGenState> = None;
    let mut shard_state: Option<ShardState> = None;
    let mut share_sum = 0.0;
    let mut out = EpochRun {
        mode: mode.label().to_string(),
        epochs: Vec::with_capacity(epochs),
        total_iterations: 0,
        total_solve_ms: 0.0,
        total_build_ms: 0.0,
        total_certify_ms: 0.0,
        total_epoch_ms: 0.0,
        total_ftran_nnz: 0,
        total_pricing_rounds: 0,
        warm_solves: 0,
        active_column_share: 1.0,
        all_certified: true,
    };
    for e in 0..epochs {
        let jobs = epoch_jobs(cluster, e, base_jobs, churn, churn_every);
        let n_jobs = jobs.len();
        let inst = LpInstance {
            cluster,
            jobs,
            duration: 600.0,
            fake_cost: Some(1.0),
            allow_moves: true,
            enforce_transfer_time: true,
            store_free_mb: vec![],
            pool_floors: vec![],
            prune: PruneConfig {
                max_machines_per_job: Some(16),
                max_new_stores_per_job: Some(6),
            },
        };
        let t = Instant::now();
        // (shards, shard_failures, subproblem_ms); nonzero only in
        // sharded mode.
        let mut shard_info = (0usize, 0usize, 0.0f64);
        let (sched, certified, active, total, rounds, presolve_removed, timings) = match mode {
            EpochMode::Cold | EpochMode::Warm => {
                let seed = if mode == EpochMode::Warm {
                    basis.as_ref()
                } else {
                    None
                };
                let report = with_width(EpochSolver::new(&inst), threads)
                    .warm(seed)
                    .certify()
                    .run()
                    .expect("epoch LP solves");
                let certified = report
                    .certificate
                    .as_ref()
                    .expect("certification was requested")
                    .is_optimal();
                basis = Some(report.basis);
                (report.schedule, certified, 0, 0, 1, 0, report.timings)
            }
            EpochMode::Dual => {
                // Presolve + dual re-solve from the carried basis; when
                // the basis is not dual feasible (first epoch, heavy
                // churn) the rung fails fast and the presolved warm
                // primal takes over — exactly the scheduler's ladder.
                let report = with_width(EpochSolver::new(&inst), threads)
                    .warm(basis.as_ref())
                    .dual()
                    .presolve()
                    .certify()
                    .run()
                    .or_else(|_| {
                        with_width(EpochSolver::new(&inst), threads)
                            .warm(basis.as_ref())
                            .presolve()
                            .certify()
                            .run()
                    })
                    .expect("epoch LP solves");
                let certified = report
                    .certificate
                    .as_ref()
                    .expect("certification was requested")
                    .is_optimal();
                let removed = report.presolve_removed;
                basis = Some(report.basis);
                (report.schedule, certified, 0, 0, 1, removed, report.timings)
            }
            EpochMode::ColGen => {
                let report = with_width(EpochSolver::new(&inst), threads)
                    .colgen(ColGenOptions::default(), colgen_state.as_ref())
                    .run()
                    .expect("epoch LP solves");
                let certified = report
                    .certificate
                    .as_ref()
                    .expect("colgen mode always certifies")
                    .is_optimal();
                let (state, stats) = report.colgen.expect("colgen mode carries state");
                colgen_state = Some(state);
                (
                    report.schedule,
                    certified,
                    stats.active_columns,
                    stats.total_columns,
                    stats.rounds,
                    0,
                    report.timings,
                )
            }
            EpochMode::Sharded => {
                let report = with_width(EpochSolver::new(&inst), threads)
                    .sharded_with(ShardOptions::default(), shard_state.as_ref())
                    .run()
                    .expect("epoch LP solves");
                let certified = report
                    .certificate
                    .as_ref()
                    .expect("sharded mode always certifies")
                    .is_optimal();
                let (state, stats) = report.shard.expect("sharded mode carries state");
                shard_state = Some(state);
                shard_info = (stats.shards, stats.shard_failures, stats.subproblem_ms);
                (
                    report.schedule,
                    certified,
                    stats.active_columns,
                    stats.total_columns,
                    stats.rounds,
                    0,
                    report.timings,
                )
            }
        };
        let epoch_ms = t.elapsed().as_secs_f64() * 1e3;

        // Cold/warm/dual solve the full model: active = total by
        // definition. The restricted modes report their own counts.
        let (active, total) = if matches!(mode, EpochMode::ColGen | EpochMode::Sharded) {
            (active, total)
        } else {
            let full = lp_build_columns(&inst);
            (full, full)
        };
        share_sum += if total > 0 {
            active as f64 / total as f64
        } else {
            1.0
        };

        let stats = sched.stats;
        if stats.warm != WarmOutcome::Cold {
            out.warm_solves += 1;
        }
        out.total_iterations += stats.iterations;
        out.total_solve_ms += stats.solve_ms;
        out.total_build_ms += timings.build_ms;
        out.total_certify_ms += timings.certify_ms;
        out.total_epoch_ms += epoch_ms;
        out.total_ftran_nnz += stats.ftran_nnz;
        out.total_pricing_rounds += rounds;
        out.all_certified &= certified;
        let incremental = e > 0
            && match mode {
                EpochMode::Cold => false,
                EpochMode::Warm | EpochMode::Dual => stats.warm != WarmOutcome::Cold,
                EpochMode::ColGen | EpochMode::Sharded => true,
            };
        out.epochs.push(EpochRecord {
            epoch: e,
            jobs: n_jobs,
            outcome: mode.label().to_string(),
            warm: format!("{:?}", stats.warm),
            iterations: stats.iterations,
            phase1_iterations: stats.phase1_iterations,
            refactors: stats.refactors,
            ftran_nnz: stats.ftran_nnz,
            dual_pivots: stats.dual_pivots,
            bound_flips: stats.bound_flips,
            pricing_rounds: rounds,
            active_columns: active,
            total_columns: total,
            shards: shard_info.0,
            shard_failures: shard_info.1,
            subproblem_ms: shard_info.2,
            presolve_removed,
            build_ms: timings.build_ms,
            solve_ms: stats.solve_ms,
            certify_ms: timings.certify_ms,
            epoch_ms,
            objective: sched.predicted_dollars,
            certified,
            incremental,
        });
    }
    if epochs > 0 {
        out.active_column_share = share_sum / epochs as f64;
    }
    out
}

/// Task-column count of the full (pruned) model for an instance — the
/// denominator of the colgen active-share metric.
fn lp_build_columns(inst: &LpInstance<'_>) -> usize {
    lips_core::lp_build::count_task_columns(inst)
}

/// One scripted LP-level fault, applied at the *start* of an epoch before
/// its model is built.
#[derive(Debug, Clone, Copy)]
pub enum EpochFault {
    /// Machine index loses all capacity (`tp_ecu = 0`).
    Revoke(usize),
    /// A previously revoked machine index returns at full capacity.
    Rejoin(usize),
    /// Machine index is repriced to a new `$ / ECU-second`.
    Reprice(usize, f64),
    /// Store index drops out of every job's availability list (its
    /// replicas are gone; surviving replicas carry the coverage).
    LoseStore(usize),
}

/// Faults keyed by the epoch they strike at.
#[derive(Debug, Clone, Default)]
pub struct FaultScript {
    pub events: Vec<(usize, EpochFault)>,
}

impl FaultScript {
    /// The acceptance-criterion script: three machine revocations, one
    /// store loss, one repricing, and one rejoin spread over the run.
    /// Events deliberately avoid the churn epochs (every `churn_every`-th
    /// epoch swaps jobs and advances the window): an epoch that takes both
    /// a fault and a job swap is dominated by churn damage that every
    /// solver pays identically, which would confound the fault-re-solve
    /// measurement the script exists to make.
    pub fn acceptance(cluster: &Cluster) -> Self {
        let n = cluster.machines.len();
        FaultScript {
            events: vec![
                (3, EpochFault::Revoke(n / 4)),
                (6, EpochFault::LoseStore(0)),
                (8, EpochFault::Revoke(n / 2)),
                (
                    9,
                    EpochFault::Reprice(n - 1, cluster.machines[n - 1].cpu_cost * 1.5),
                ),
                (12, EpochFault::Revoke(3 * n / 4)),
                (17, EpochFault::Rejoin(n / 4)),
            ],
        }
    }
}

/// One epoch of the fault-mode series.
#[derive(Debug, Clone, Serialize)]
pub struct FaultEpochRecord {
    pub epoch: usize,
    pub jobs: usize,
    /// Faults that struck at this epoch (human-readable).
    pub events: Vec<String>,
    /// Warm-start entries dropped while repairing the chained basis
    /// against the surviving cluster.
    pub repaired: usize,
    pub iterations: usize,
    /// `"Cold"`, `"Warm"`, `"WarmRepaired"`, or `"Dual"`.
    pub warm: String,
    /// Dual-simplex pivots (0 unless the dual rung served this epoch).
    pub dual_pivots: usize,
    /// Nonbasic bound flips by the dual solver.
    pub bound_flips: usize,
    /// Head-to-head control (dual ladder, fault epochs only): iterations
    /// the repaired-warm *primal* rung spends on this exact model from
    /// this exact incoming basis. `None` on non-fault epochs, on the
    /// baseline ladder, or when the probe solve failed.
    pub primal_iterations: Option<usize>,
    pub solve_ms: f64,
    pub epoch_ms: f64,
    pub objective: f64,
    /// KKT-certified optimal against the surviving cluster.
    pub certified: bool,
    /// Every LP rung failed; the epoch fell off the ladder.
    pub degraded: bool,
}

/// The fault-mode epoch sequence summary recorded into
/// `BENCH_lp_epoch.json` by `lp_bench --faults`.
#[derive(Debug, Clone, Serialize)]
pub struct FaultEpochRun {
    pub epochs: Vec<FaultEpochRecord>,
    pub revocations: usize,
    pub rejoins: usize,
    pub repricings: usize,
    pub store_losses: usize,
    pub total_iterations: usize,
    pub total_epoch_ms: f64,
    /// Epochs that started from the (possibly repaired) previous basis.
    pub warm_solves: usize,
    /// Epochs served by the dual-simplex rung (only with the dual ladder).
    pub dual_solves: usize,
    pub certified_epochs: usize,
    pub degraded_epochs: usize,
    /// Every epoch either certified or explicitly degraded — the
    /// acceptance criterion. Always true by construction; serialized so
    /// the JSON is self-describing.
    pub all_accounted: bool,
}

/// Job set of epoch `e` in fault mode: same sliding window as
/// [`run_epochs`] but with **two** full replica holders per job (the HDFS
/// replication the fault story requires) minus any lost stores.
fn fault_epoch_jobs(
    cluster: &Cluster,
    epoch: usize,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
    lost_stores: &[usize],
) -> Vec<LpJob> {
    let stores = cluster.num_stores();
    epoch_jobs(cluster, epoch, base_jobs, churn, churn_every)
        .into_iter()
        .map(|mut j| {
            let primary = j.avail[0].0;
            let replica = StoreId((primary.0 + stores / 2 + 1) % stores);
            j.avail = [primary, replica]
                .into_iter()
                .filter(|s| !lost_stores.contains(&s.0))
                .map(|s| (s, 1.0))
                .collect();
            j
        })
        .collect()
}

/// Run `epochs` consecutive Fig-4 solves with `script`'s faults injected,
/// chaining (and repairing) the warm basis across topology changes.
///
/// Degradation ladder per epoch: dual re-solve from the repaired basis
/// (only with `dual`) → repaired-warm exact → cold exact → recorded as
/// degraded. Never panics on a solvable-cluster script. `dual = false` is
/// the PR-4 baseline ladder, kept so `lp_bench` can measure how many
/// simplex iterations the dual rung saves on exactly the same fault
/// script.
#[allow(clippy::too_many_arguments)] // a benchmark entry point, not an API
pub fn run_epochs_faulted(
    cluster: &Cluster,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
    epochs: usize,
    script: &FaultScript,
    threads: usize,
    dual: bool,
) -> FaultEpochRun {
    let mut live = cluster.clone();
    let mut revoked_tp: HashMap<usize, f64> = HashMap::new();
    let mut lost_stores: Vec<usize> = Vec::new();
    let mut basis: Option<WarmStart> = None;
    let mut out = FaultEpochRun {
        epochs: Vec::with_capacity(epochs),
        revocations: 0,
        rejoins: 0,
        repricings: 0,
        store_losses: 0,
        total_iterations: 0,
        total_epoch_ms: 0.0,
        warm_solves: 0,
        dual_solves: 0,
        certified_epochs: 0,
        degraded_epochs: 0,
        all_accounted: true,
    };
    for e in 0..epochs {
        let mut events = Vec::new();
        for &(at, fault) in &script.events {
            if at != e {
                continue;
            }
            match fault {
                EpochFault::Revoke(m) => {
                    let tp = live.machines[m].tp_ecu;
                    if tp > 0.0 {
                        revoked_tp.insert(m, tp);
                        live.machines[m].tp_ecu = 0.0;
                        out.revocations += 1;
                        events.push(format!("revoke m{m}"));
                    }
                }
                EpochFault::Rejoin(m) => {
                    if let Some(tp) = revoked_tp.remove(&m) {
                        live.machines[m].tp_ecu = tp;
                        out.rejoins += 1;
                        events.push(format!("rejoin m{m}"));
                    }
                }
                EpochFault::Reprice(m, cost) => {
                    live.machines[m].cpu_cost = cost;
                    out.repricings += 1;
                    events.push(format!("reprice m{m} to {cost:.2e}"));
                }
                EpochFault::LoseStore(s) => {
                    lost_stores.push(s);
                    out.store_losses += 1;
                    events.push(format!("lose s{s}"));
                }
            }
        }

        let jobs = fault_epoch_jobs(&live, e, base_jobs, churn, churn_every, &lost_stores);
        let n_jobs = jobs.len();
        let inst = LpInstance {
            cluster: &live,
            jobs,
            duration: 600.0,
            fake_cost: Some(1.0),
            allow_moves: true,
            enforce_transfer_time: true,
            store_free_mb: vec![],
            pool_floors: vec![],
            prune: PruneConfig {
                max_machines_per_job: Some(16),
                max_new_stores_per_job: Some(6),
            },
        };
        // Repair the chained basis against the surviving cluster instead
        // of cold-restarting: drop rows/columns naming dead machines.
        let repaired = match basis.as_mut() {
            Some(ws) => sanitize_warm_start(ws, &live),
            None => 0,
        };
        // Head-to-head probe: on fault epochs the dual ladder also solves
        // the same model from the same repaired basis with the primal
        // rung, so the recorded ratio compares the two methods on
        // identical inputs instead of across divergent chains. Runs
        // outside the timed section and never touches the chained basis.
        let primal_iterations = if dual && !events.is_empty() {
            with_width(EpochSolver::new(&inst), threads)
                .warm(basis.as_ref())
                .certify()
                .run()
                .ok()
                .map(|r| r.schedule.stats.iterations)
        } else {
            None
        };
        let t = Instant::now();
        let solved = if dual {
            // The dual rung runs unpresolved: on fault epochs the model
            // reduction costs more wall time than it saves, and projecting
            // an already-repaired basis into the reduced space starves the
            // dual seed (measured: the mass-revocation epoch declines that
            // the unreduced dual serves). Presolve earns its keep in the
            // steady churn series (`EpochMode::Dual`), not here.
            with_width(EpochSolver::new(&inst), threads)
                .warm(basis.as_ref())
                .dual()
                .certify()
                .run()
                .or_else(|_| {
                    with_width(EpochSolver::new(&inst), threads)
                        .warm(basis.as_ref())
                        .certify()
                        .run()
                })
                .or_else(|_| with_width(EpochSolver::new(&inst), threads).certify().run())
        } else {
            with_width(EpochSolver::new(&inst), threads)
                .warm(basis.as_ref())
                .certify()
                .run()
                .or_else(|_| with_width(EpochSolver::new(&inst), threads).certify().run())
        };
        let epoch_ms = t.elapsed().as_secs_f64() * 1e3;
        out.total_epoch_ms += epoch_ms;
        match solved {
            Ok(report) => {
                let certified = report
                    .certificate
                    .as_ref()
                    .expect("certification was requested")
                    .is_optimal();
                let stats = report.schedule.stats;
                if stats.warm != WarmOutcome::Cold {
                    out.warm_solves += 1;
                }
                if stats.warm == WarmOutcome::Dual {
                    out.dual_solves += 1;
                }
                out.total_iterations += stats.iterations;
                out.certified_epochs += usize::from(certified);
                out.degraded_epochs += usize::from(!certified);
                out.epochs.push(FaultEpochRecord {
                    epoch: e,
                    jobs: n_jobs,
                    events,
                    repaired,
                    iterations: stats.iterations,
                    warm: format!("{:?}", stats.warm),
                    dual_pivots: stats.dual_pivots,
                    bound_flips: stats.bound_flips,
                    primal_iterations,
                    solve_ms: stats.solve_ms,
                    epoch_ms,
                    objective: report.schedule.predicted_dollars,
                    certified,
                    degraded: !certified,
                });
                basis = Some(report.basis);
            }
            Err(_) => {
                // Both exact rungs failed: record the epoch as degraded
                // (the simulator's ladder would place greedily here) and
                // drop the basis so the next epoch restarts cleanly.
                out.degraded_epochs += 1;
                out.epochs.push(FaultEpochRecord {
                    epoch: e,
                    jobs: n_jobs,
                    events,
                    repaired,
                    iterations: 0,
                    warm: "Cold".to_string(),
                    dual_pivots: 0,
                    bound_flips: 0,
                    primal_iterations,
                    solve_ms: 0.0,
                    epoch_ms,
                    objective: 0.0,
                    certified: false,
                    degraded: true,
                });
                basis = None;
            }
        }
    }
    out
}

/// Total simplex iterations spent on the epochs where fault events
/// actually struck — a chain-level summary of how much each ladder paid
/// for the script's damage (the two ladders' chains diverge, so this is
/// context, not a controlled comparison; see [`dual_fault_head_to_head`]).
pub fn fault_epoch_iterations(run: &FaultEpochRun) -> usize {
    run.epochs
        .iter()
        .filter(|r| !r.events.is_empty())
        .map(|r| r.iterations)
        .sum()
}

/// The controlled fault-re-solve comparison from a dual-ladder run:
/// `(primal_iterations, dual_iterations)` summed over the fault epochs the
/// dual rung served, where both methods solved the *same* model from the
/// *same* repaired incoming basis (the head-to-head probe). This is the
/// numerator/denominator of `lp_bench`'s `dual_fault_iteration_ratio`.
/// `None` when the run has no dual-served fault epoch with a probe.
pub fn dual_fault_head_to_head(run: &FaultEpochRun) -> Option<(usize, usize)> {
    let pairs: Vec<(usize, usize)> = run
        .epochs
        .iter()
        .filter(|r| !r.events.is_empty() && r.warm == "Dual")
        .filter_map(|r| r.primal_iterations.map(|p| (p, r.iterations)))
        .collect();
    if pairs.is_empty() {
        return None;
    }
    Some(pairs.iter().fold((0, 0), |(a, b), &(p, d)| (a + p, b + d)))
}

/// One width of the thread-scaling series: the colgen epoch sequence
/// (build + pricing + certification — every parallelised stage) re-run at
/// a fixed worker count.
#[derive(Debug, Clone, Serialize)]
pub struct ThreadScalingPoint {
    pub threads: usize,
    /// Build + solve + price + certify wall-time summed over epochs.
    pub total_epoch_ms: f64,
    /// Simplex-only wall-time (serial in every width; a sanity baseline —
    /// the scaling headroom is `total_epoch_ms − total_solve_ms`).
    pub total_solve_ms: f64,
    /// `1-thread total_epoch_ms ÷ this width's` (higher = faster).
    pub speedup_vs_serial: f64,
    /// Every epoch's objective is **bitwise** equal to the 1-thread run's
    /// and the certificate verdicts match — the determinism contract,
    /// checked on the real workload rather than assumed.
    pub identical_to_serial: bool,
}

/// Run the colgen epoch sequence once per width in `widths` and compare
/// every run against the first (serial) one bit-for-bit.
///
/// The first entry of `widths` should be `1`; its `speedup_vs_serial` is
/// 1.0 by construction. On a single-core host the speedups will hover
/// around 1.0 — the point of the series is then the `identical_to_serial`
/// column, which must hold on any host.
pub fn thread_scaling(
    cluster: &Cluster,
    base_jobs: usize,
    churn: usize,
    churn_every: usize,
    epochs: usize,
    widths: &[usize],
) -> Vec<ThreadScalingPoint> {
    let mut serial: Option<EpochRun> = None;
    let mut out = Vec::with_capacity(widths.len());
    for &w in widths {
        let run = run_epochs(
            cluster,
            base_jobs,
            churn,
            churn_every,
            epochs,
            EpochMode::ColGen,
            w.max(1),
        );
        let baseline = serial.get_or_insert_with(|| run.clone());
        let identical = baseline.epochs.len() == run.epochs.len()
            && baseline.epochs.iter().zip(&run.epochs).all(|(a, b)| {
                a.objective.to_bits() == b.objective.to_bits()
                    && a.certified == b.certified
                    && a.active_columns == b.active_columns
                    && a.pricing_rounds == b.pricing_rounds
            });
        out.push(ThreadScalingPoint {
            threads: w.max(1),
            total_epoch_ms: run.total_epoch_ms,
            total_solve_ms: run.total_solve_ms,
            speedup_vs_serial: if run.total_epoch_ms > 0.0 {
                baseline.total_epoch_ms / run.total_epoch_ms
            } else {
                1.0
            },
            identical_to_serial: identical,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_sequence_chains_bases_and_certifies() {
        // Small config so the test stays fast; the full large-cluster
        // numbers are produced by the `lp_bench` binary.
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let cold = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Cold, 1);
        let warm = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Warm, 1);
        assert!(cold.all_certified && warm.all_certified);
        assert_eq!(cold.warm_solves, 0);
        assert!(
            warm.warm_solves >= 3,
            "only {}/4 possible epochs warm-started",
            warm.warm_solves
        );
        assert!(
            warm.total_iterations < cold.total_iterations,
            "warm {} vs cold {} iterations",
            warm.total_iterations,
            cold.total_iterations
        );
        // Same models, same optima regardless of starting basis.
        for (a, b) in cold.epochs.iter().zip(&warm.epochs) {
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: cold {} vs warm {}",
                a.epoch,
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn faulted_sequence_accounts_for_every_epoch() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let script = FaultScript {
            events: vec![
                (1, EpochFault::Revoke(4)),
                (2, EpochFault::LoseStore(0)),
                (3, EpochFault::Revoke(9)),
                (
                    4,
                    EpochFault::Reprice(1, cluster.machines[1].cpu_cost * 2.0),
                ),
                (5, EpochFault::Rejoin(4)),
            ],
        };
        let run = run_epochs_faulted(&cluster, 8, 1, 3, 6, &script, 1, false);
        assert_eq!(run.revocations, 2);
        assert_eq!(run.rejoins, 1);
        assert_eq!(run.repricings, 1);
        assert_eq!(run.store_losses, 1);
        assert_eq!(run.epochs.len(), 6);
        // Every epoch certified or explicitly degraded; this small script
        // leaves the cluster solvable, so all must certify.
        for r in &run.epochs {
            assert!(r.certified ^ r.degraded, "epoch {} unaccounted", r.epoch);
            assert!(r.certified, "epoch {} degraded: {:?}", r.epoch, r.events);
        }
        // The revocation epochs repaired the chained basis rather than
        // silently reusing rows for dead machines.
        assert!(
            run.epochs[1].repaired > 0 && run.epochs[3].repaired > 0,
            "revocation epochs must repair the basis: {:?}",
            run.epochs.iter().map(|r| r.repaired).collect::<Vec<_>>()
        );
        // And the repair kept warm-starting alive across the faults (a
        // structural break may legitimately fall back to cold, but the
        // majority of post-fault epochs must still reuse their basis).
        assert!(run.warm_solves >= 3, "only {} warm epochs", run.warm_solves);
    }

    #[test]
    fn dual_mode_is_bitwise_identical_across_thread_widths() {
        // The dual pivot loop is serial by design; threads parallelize the
        // model build, pricing, and certification around it. Every epoch
        // record — objective bits included — must be identical at any
        // width.
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let serial = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Dual, 1);
        for threads in [2usize, 4] {
            let wide = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Dual, threads);
            assert_eq!(serial.epochs.len(), wide.epochs.len());
            for (a, b) in serial.epochs.iter().zip(&wide.epochs) {
                assert_eq!(
                    a.objective.to_bits(),
                    b.objective.to_bits(),
                    "epoch {}: {} threads diverged bitwise ({} vs {})",
                    a.epoch,
                    threads,
                    a.objective,
                    b.objective
                );
                assert_eq!(a.iterations, b.iterations, "epoch {}", a.epoch);
                assert_eq!(a.dual_pivots, b.dual_pivots, "epoch {}", a.epoch);
                assert_eq!(a.bound_flips, b.bound_flips, "epoch {}", a.epoch);
                assert_eq!(a.presolve_removed, b.presolve_removed, "epoch {}", a.epoch);
                assert_eq!(a.warm, b.warm, "epoch {}", a.epoch);
            }
        }
    }

    #[test]
    fn dual_sequence_matches_optima_with_fewer_iterations() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let cold = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Cold, 1);
        let dual = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Dual, 1);
        assert!(dual.all_certified);
        // The steady-state epochs (no churn) must actually take the dual
        // rung, and dual pivots only ever appear on dual-served epochs.
        let dual_served = dual.epochs.iter().filter(|r| r.warm == "Dual").count();
        assert!(dual_served >= 2, "only {dual_served} epochs dual-resolved");
        for r in &dual.epochs {
            if r.warm != "Dual" {
                assert_eq!(r.dual_pivots, 0, "epoch {}", r.epoch);
            }
        }
        // Presolve actually removed something on this instance family.
        assert!(
            dual.epochs.iter().any(|r| r.presolve_removed > 0),
            "epoch presolve never reduced the model"
        );
        // Same models, same optima — the fast path is a path, not a model
        // change.
        assert!(dual.total_iterations < cold.total_iterations);
        for (a, b) in cold.epochs.iter().zip(&dual.epochs) {
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: cold {} vs dual {}",
                a.epoch,
                a.objective,
                b.objective
            );
        }
    }

    #[test]
    fn dual_fault_ladder_matches_baseline_and_saves_iterations() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        // Faults land off the churn epochs (0 and 3 here) for the same
        // reason as `FaultScript::acceptance`: a churn+fault compound
        // epoch measures churn damage, not fault recovery.
        let script = FaultScript {
            events: vec![
                (1, EpochFault::Revoke(4)),
                (
                    2,
                    EpochFault::Reprice(1, cluster.machines[1].cpu_cost * 2.0),
                ),
                (5, EpochFault::Rejoin(4)),
            ],
        };
        let base = run_epochs_faulted(&cluster, 8, 1, 3, 6, &script, 1, false);
        let dual = run_epochs_faulted(&cluster, 8, 1, 3, 6, &script, 1, true);
        assert_eq!(base.epochs.len(), dual.epochs.len());
        assert!(dual.dual_solves > 0, "the dual rung never served an epoch");
        assert_eq!(base.dual_solves, 0);
        for (a, b) in base.epochs.iter().zip(&dual.epochs) {
            assert!(a.certified && b.certified);
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: baseline {} vs dual-ladder {}",
                a.epoch,
                a.objective,
                b.objective
            );
        }
        assert!(
            dual.total_iterations <= base.total_iterations,
            "dual ladder cost extra pivots: {} vs {}",
            dual.total_iterations,
            base.total_iterations
        );
        // The headline savings are on the *fault* epochs themselves,
        // measured head-to-head: both methods solve the same model from
        // the same repaired basis, and the dual path must not lose.
        let (bf, df) = (fault_epoch_iterations(&base), fault_epoch_iterations(&dual));
        assert!(
            df <= bf,
            "fault-epoch dual re-solves cost extra: {df} vs {bf} chain iterations"
        );
        let (p, d) = dual_fault_head_to_head(&dual)
            .expect("no dual-served fault epoch carried a head-to-head probe");
        assert!(
            d * 2 <= p,
            "head-to-head: dual path spent {d} iterations vs primal's {p} on the same bases"
        );
    }

    #[test]
    fn sharded_sequence_matches_full_model_optima_with_phase_times() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let cold = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Cold, 1);
        let sh = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Sharded, 1);
        assert!(sh.all_certified);
        assert!(sh.active_column_share < 1.0, "stitched master never shrank");
        for (a, b) in cold.epochs.iter().zip(&sh.epochs) {
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: cold {} vs sharded {}",
                a.epoch,
                a.objective,
                b.objective
            );
            assert!(b.active_columns <= b.total_columns);
        }
        // The per-phase clocks are populated and consistent in every mode:
        // build/solve/certify are each nonzero somewhere and sum to no
        // more than the whole-epoch wall-time.
        for run in [&cold, &sh] {
            assert!(
                run.total_build_ms > 0.0,
                "{}: build phase unmetered",
                run.mode
            );
            assert!(
                run.total_solve_ms > 0.0,
                "{}: solve phase unmetered",
                run.mode
            );
            assert!(
                run.total_certify_ms > 0.0,
                "{}: certify phase unmetered",
                run.mode
            );
            for r in &run.epochs {
                assert!(
                    r.build_ms + r.solve_ms + r.certify_ms <= r.epoch_ms * 1.05 + 1.0,
                    "{} epoch {}: phases {}+{}+{} exceed wall {}",
                    run.mode,
                    r.epoch,
                    r.build_ms,
                    r.solve_ms,
                    r.certify_ms,
                    r.epoch_ms
                );
            }
        }
    }

    #[test]
    fn colgen_sequence_matches_full_model_optima() {
        let cluster = ec2_mixed_cluster(20, 0.4, 1e9, 1);
        let cold = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::Cold, 1);
        let cg = run_epochs(&cluster, 8, 1, 3, 6, EpochMode::ColGen, 1);
        assert!(cg.all_certified);
        assert!(cg.active_column_share < 1.0, "master never shrank");
        assert!(cg.total_pricing_rounds >= cg.epochs.len());
        for (a, b) in cold.epochs.iter().zip(&cg.epochs) {
            assert!(
                (a.objective - b.objective).abs() <= 1e-6 * (1.0 + a.objective.abs()),
                "epoch {}: cold {} vs colgen {}",
                a.epoch,
                a.objective,
                b.objective
            );
            assert!(b.active_columns <= b.total_columns);
        }
    }
}
