//! Figure 9: total dollar cost on the 100-node, three-zone, three-
//! instance-type cluster running the SWIM-like Facebook workload
//! (400 jobs over one day).
//!
//! Paper shape: LiPS saves 68–69 % versus both the default and delay
//! schedulers.
//!
//! Flags: `--scale F` (fraction of the 400-job trace; default 1.0),
//! `--epoch SECONDS` (default 600), `--json`.

use lips_bench::experiments::{fig9_run, PAPER_SCHEDULERS};
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::{dollars, pct};
use lips_bench::{SchedulerKind, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: f64| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let scale = arg("--scale", 1.0);
    let epoch = arg("--epoch", 600.0);
    let jobs = (400.0 * scale).round() as usize;

    lips_bench::audit_gate::maybe_audit(epoch);
    println!("Figure 9 — total cost on 100 EC2 nodes (3 zones, 3 instance types)");
    println!("SWIM-like Facebook trace: {jobs} jobs over 24 h; LiPS epoch = {epoch} s.\n");

    let m = fig9_run(epoch, 2013, scale);
    let mut t = Table::new([
        "Scheduler",
        "Total ($)",
        "CPU ($)",
        "Transfer ($)",
        "LiPS saving",
    ]);
    let mut records = Vec::new();
    for k in PAPER_SCHEDULERS {
        let r = m.get(k);
        let saving = if k == SchedulerKind::Lips {
            "-".to_string()
        } else {
            pct(m.lips_saving_vs(k))
        };
        t.row([
            k.label().to_string(),
            dollars(r.metrics.total_dollars()),
            dollars(r.metrics.cpu_dollars),
            dollars(r.metrics.transfer_dollars()),
            saving,
        ]);
        records.push(
            ExperimentRecord::new("fig9", k.label())
                .value("total_dollars", r.metrics.total_dollars())
                .value("cpu_dollars", r.metrics.cpu_dollars)
                .value("transfer_dollars", r.metrics.transfer_dollars()),
        );
    }
    t.print();
    println!("\nPaper reference: LiPS saves 68-69% vs. both schedulers at this scale.");
    emit_json(&records);
}
