//! Table I: CPU intensiveness of the benchmark jobs.
//!
//! Regenerates the paper's job-characterization table from the workload
//! models (ECU-seconds per 64 MB block per job kind).

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_workload::JobKind;

fn main() {
    println!("Table I — CPU intensiveness for different jobs");
    println!("(ECU seconds per 64 MB block; one ECU = 1.0-1.2 GHz 2007 Opteron/Xeon)\n");
    let mut headers = vec!["".to_string()];
    headers.extend(JobKind::ALL.iter().map(|k| k.name().to_string()));
    let mut t = Table::new(headers);

    let mut prop = vec!["Property".to_string()];
    prop.extend(JobKind::ALL.iter().map(|k| k.property().to_string()));
    t.row(prop);

    let mut cpu = vec!["CPU sec / 64MB".to_string()];
    cpu.extend(JobKind::ALL.iter().map(|k| match k.ecu_sec_per_block() {
        Some(v) => format!("{v:.0}"),
        None => "inf".to_string(),
    }));
    t.row(cpu);
    t.print();

    println!("\nPaper reference: Grep 20, Stress1 37, Stress2 75, WordCount 90, Pi inf.");
    let records: Vec<ExperimentRecord> = JobKind::ALL
        .iter()
        .map(|k| {
            ExperimentRecord::new("table1", k.name()).value(
                "ecu_sec_per_block",
                k.ecu_sec_per_block().unwrap_or(f64::INFINITY),
            )
        })
        .collect();
    emit_json(&records);
}
