//! `serve-bench` — the continuous-arrival daemon trajectories behind
//! `BENCH_serve.json`.
//!
//! Two 200-LP-epoch runs (a Poisson synthetic stream and a Google-trace
//! shaped stream) through `lips-serve`'s daemon with closed-loop epoch
//! tuning. The acceptance gate: every LP epoch KKT-certified, and at
//! least 80 % of them incremental re-solves (carried colgen master +
//! dual-rung basis reuse). Exits nonzero if either run misses the gate.
//!
//! ```bash
//! serve-bench            # full 200-epoch runs, writes BENCH_serve.json
//! serve-bench --quick    # 30-epoch smoke, no artifact
//! ```

use lips_bench::serve_traj::{run_serve_trajectory, ServeReport, ServeTrajectory};
use lips_bench::Table;

fn print_run(t: &ServeTrajectory) {
    let s = &t.summary;
    let mut table = Table::new(vec![
        "stream",
        "nodes",
        "jobs",
        "lp_epochs",
        "certified",
        "incremental",
        "dual",
        "primal",
        "cold",
        "degraded",
    ]);
    table.row(vec![
        t.stream.clone(),
        t.nodes.to_string(),
        t.jobs.to_string(),
        t.lp_epochs.to_string(),
        format!("{:.3}", s.solver.certified_share),
        format!("{:.3}", s.solver.incremental_share),
        s.solver.dual_epochs.to_string(),
        s.solver.primal_epochs.to_string(),
        s.solver.cold_retry_epochs.to_string(),
        s.solver.degraded_epochs.to_string(),
    ]);
    table.print();
    println!(
        "  queue depth mean {:.2} max {} | latency mean {:.0}s | solve p50 {:.3}ms p99 {:.3}ms | ${:.4}",
        s.mean_queue_depth,
        s.max_queue_depth,
        s.mean_latency_s,
        s.solver.p50_solve_ms,
        s.solver.p99_solve_ms,
        s.total_dollars,
    );
    println!(
        "  completed {}/{} admitted, {} rejected, {} chunks, {:.0} MB moved",
        s.completed,
        s.admitted,
        s.rejected_queue_full + s.rejected_pool_budget,
        s.chunks,
        s.moved_mb,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (epochs, jobs) = if quick { (30, 40) } else { (200, 300) };

    let mut runs = Vec::new();
    for stream in ["synth", "google"] {
        // Google-shaped jobs are mostly tiny (log-uniform inputs) and turn
        // over within an epoch; double the stream density so consecutive
        // masters share live columns and the incremental path gets a fair
        // shot, matching the per-epoch concurrency of the synth stream.
        let stream_jobs = if stream == "google" { jobs * 2 } else { jobs };
        println!("== {stream} stream: target {epochs} LP epochs ==");
        let t = run_serve_trajectory(stream, 20, stream_jobs, epochs, 2013);
        print_run(&t);
        runs.push(t);
    }

    let mut ok = true;
    for t in &runs {
        if !t.all_certified {
            eprintln!("FAIL: {} run has uncertified epochs", t.stream);
            ok = false;
        }
        if t.incremental_share < 0.8 {
            eprintln!(
                "FAIL: {} run incremental share {:.3} < 0.8",
                t.stream, t.incremental_share
            );
            ok = false;
        }
        if !quick && t.lp_epochs < epochs {
            eprintln!(
                "FAIL: {} run solved only {} LP epochs (target {epochs})",
                t.stream, t.lp_epochs
            );
            ok = false;
        }
    }

    if !quick {
        let report = ServeReport {
            config: format!("20 nodes, {jobs} jobs/stream, {epochs} LP epochs, tuned"),
            runs,
        };
        let path = "BENCH_serve.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("serialize serve report"),
        )
        .expect("write BENCH_serve.json");
        println!("wrote {path}");
    }
    assert!(ok, "serve acceptance gate failed");
}
