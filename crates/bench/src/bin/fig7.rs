//! Figure 7: total job execution time for the Figure 6 runs.
//!
//! Paper shape: LiPS runs 40–100 % *longer* than the delay scheduler —
//! it buys dollars with makespan by packing work onto cheap (often
//! slower) nodes; adding more powerful instances makes LiPS *slower*
//! because it prefers the cheap ones.
//!
//! Flags: `--epoch SECONDS`, `--json`, `--audit` (certify the LPs first).

use lips_bench::experiments::{fig6_run, Fig6Setting};
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::secs;
use lips_bench::{SchedulerKind, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epoch = args
        .iter()
        .position(|a| a == "--epoch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);

    lips_bench::audit_gate::maybe_audit(epoch);

    println!("Figure 7 — total job execution time (makespan) of the Figure 6 runs");
    println!("LiPS epoch = {epoch} s.\n");

    let mut t = Table::new(["Setting", "LiPS", "Default", "Delay", "LiPS / Delay"]);
    let mut records = Vec::new();
    for setting in Fig6Setting::ALL {
        let m = fig6_run(setting, epoch, 2013);
        let get = |k: SchedulerKind| m.get(k).makespan;
        let ratio = get(SchedulerKind::Lips) / get(SchedulerKind::Delay);
        t.row([
            setting.label().to_string(),
            secs(get(SchedulerKind::Lips)),
            secs(get(SchedulerKind::HadoopDefault)),
            secs(get(SchedulerKind::Delay)),
            format!("{ratio:.2}x"),
        ]);
        records.push(
            ExperimentRecord::new("fig7", setting.label())
                .value("lips_makespan", get(SchedulerKind::Lips))
                .value("default_makespan", get(SchedulerKind::HadoopDefault))
                .value("delay_makespan", get(SchedulerKind::Delay))
                .value("lips_over_delay", ratio),
        );
    }
    t.print();
    println!("\nPaper reference: LiPS 1.4x-2.0x the delay scheduler's execution time,");
    println!("growing as powerful instances are added (LiPS ignores them for cost).");
    emit_json(&records);
}
