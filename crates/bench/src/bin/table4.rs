//! Table IV: the J1–J9 experiment suite (1608 map tasks, 100 GB input).

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_workload::table_iv_suite;

fn main() {
    println!("Table IV — job details for the 20-node experiments\n");
    let mut t = Table::new(["Job", "Kind", "Tasks", "Input (GB)", "Total ECU-sec"]);
    let suite = table_iv_suite();
    let mut records = Vec::new();
    for j in &suite {
        t.row([
            j.name.clone(),
            j.kind.name().to_string(),
            format!("{}", j.tasks),
            if j.input_mb > 0.0 {
                format!("{:.0}", j.input_mb / 1024.0)
            } else {
                "-".into()
            },
            format!("{:.0}", j.total_ecu_sec()),
        ]);
        records.push(
            ExperimentRecord::new("table4", &j.name)
                .value("tasks", f64::from(j.tasks))
                .value("input_mb", j.input_mb)
                .value("total_ecu_sec", j.total_ecu_sec()),
        );
    }
    t.print();

    let tasks: u32 = suite.iter().map(|j| j.tasks).sum();
    let input: f64 = suite.iter().map(|j| j.input_mb).sum::<f64>() / 1024.0;
    let work: f64 = suite
        .iter()
        .map(lips_workload::JobSpec::total_ecu_sec)
        .sum();
    println!("\nTotals: {tasks} map tasks, {input:.0} GB input, {work:.0} ECU-seconds.");
    println!("Paper reference: 1608 map tasks, 100 GB total input.");
    emit_json(&records);
}
