//! Extension experiment: reduce/shuffle phases (not evaluated in the
//! paper, whose accounting is map-only).
//!
//! Shuffle-heavy WordCount-style jobs run under every scheduler; the
//! reduce phase consumes intermediate data placed where the maps ran, so
//! cost-aware map placement pays twice — LiPS's relative edge persists
//! essentially unchanged through the reduce phase while everyone's
//! absolute bill grows with the shuffle ratio.
//!
//! Flags: `--json`.

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::{dollars, pct};
use lips_bench::Table;
use lips_cluster::ec2_20_node;
use lips_core::{DelayScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips_sim::{Placement, Scheduler, Simulation};
use lips_workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

fn jobs(shuffle_ratio: f64) -> Vec<JobSpec> {
    // 3 WordCount-class jobs, shuffle bytes = ratio × input bytes.
    (0..3)
        .map(|i| {
            let input = 3072.0;
            let mut j = JobSpec::new(i, format!("wc{i}"), JobKind::WordCount, input, 48);
            if shuffle_ratio > 0.0 {
                j = j.with_reduce(12, input * shuffle_ratio, 0.8);
            }
            j
        })
        .collect()
}

fn run(kind: &str, shuffle_ratio: f64) -> lips_sim::SimReport {
    let mut cluster = ec2_20_node(0.5, 1e9);
    let bound = bind_workload(
        &mut cluster,
        jobs(shuffle_ratio),
        PlacementPolicy::RoundRobin,
        17,
    );
    let placement = Placement::spread_blocks(&cluster, 17);
    let mut sched: Box<dyn Scheduler> = match kind {
        "lips" => Box::new(LipsScheduler::new(SchedulerConfig::small_cluster(2000.0))),
        "default" => Box::new(HadoopDefaultScheduler::new()),
        _ => Box::new(DelayScheduler::default()),
    };
    Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .run(sched.as_mut())
        .expect("completes")
}

fn main() {
    println!("Extension — reduce/shuffle phases on the 20-node 50% c1.medium testbed");
    println!("(shuffle bytes as a fraction of input bytes; map-only = the paper's setting)\n");

    let mut t = Table::new([
        "shuffle ratio",
        "LiPS ($)",
        "Default ($)",
        "Delay ($)",
        "LiPS saving vs delay",
    ]);
    let mut records = Vec::new();
    for ratio in [0.0, 0.25, 0.5, 1.0] {
        let lips = run("lips", ratio);
        let default = run("default", ratio);
        let delay = run("delay", ratio);
        let saving = 1.0 - lips.metrics.total_dollars() / delay.metrics.total_dollars();
        t.row([
            if ratio == 0.0 {
                "map-only".to_string()
            } else {
                format!("{ratio:.2}")
            },
            dollars(lips.metrics.total_dollars()),
            dollars(default.metrics.total_dollars()),
            dollars(delay.metrics.total_dollars()),
            pct(saving),
        ]);
        records.push(
            ExperimentRecord::new("ext_shuffle", format!("ratio={ratio}"))
                .value("lips_dollars", lips.metrics.total_dollars())
                .value("default_dollars", default.metrics.total_dollars())
                .value("delay_dollars", delay.metrics.total_dollars())
                .value("saving_vs_delay", saving),
        );
    }
    t.print();
    println!("\nLiPS places maps on cheap nodes, so the shuffle data is born there and");
    println!("the reduces stay cheap too — the ~60% edge survives the reduce phase.");
    emit_json(&records);
}
