//! Figure 6: total dollar cost of the Table IV suite (J1–J9, 1608 maps)
//! on the 20-node testbed, under three node-mix settings, for LiPS vs.
//! the Hadoop default and delay schedulers.
//!
//! Paper shape: LiPS saves 62 % in the homogeneous setting, rising to
//! 79–81 % with 50 % c1.medium nodes.
//!
//! Flags: `--quick` (scaled-down suite), `--epoch SECONDS`, `--json`, `--audit`
//! (lint + certify the LP families before running).

use lips_bench::experiments::{fig6_run, Fig6Setting, PAPER_SCHEDULERS};
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::{dollars, pct};
use lips_bench::{SchedulerKind, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let epoch = args
        .iter()
        .position(|a| a == "--epoch")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000.0);

    lips_bench::audit_gate::maybe_audit(epoch);

    println!("Figure 6 — total cost of J1-J9 (1608 maps, 100 GB) on 20 EC2 nodes");
    println!("LiPS epoch = {epoch} s; speculative execution off.\n");

    let mut t = Table::new([
        "Setting",
        "LiPS ($)",
        "Default ($)",
        "Delay ($)",
        "saving vs default",
        "saving vs delay",
    ]);
    let mut records = Vec::new();
    for setting in Fig6Setting::ALL {
        let m = fig6_run(setting, epoch, 2013);
        let get = |k: SchedulerKind| m.get(k).metrics.total_dollars();
        t.row([
            setting.label().to_string(),
            dollars(get(SchedulerKind::Lips)),
            dollars(get(SchedulerKind::HadoopDefault)),
            dollars(get(SchedulerKind::Delay)),
            pct(m.lips_saving_vs(SchedulerKind::HadoopDefault)),
            pct(m.lips_saving_vs(SchedulerKind::Delay)),
        ]);
        let mut rec = ExperimentRecord::new("fig6", setting.label());
        for k in PAPER_SCHEDULERS {
            rec = rec.value(k.label(), get(k));
        }
        records.push(
            rec.value(
                "saving_vs_default",
                m.lips_saving_vs(SchedulerKind::HadoopDefault),
            )
            .value("saving_vs_delay", m.lips_saving_vs(SchedulerKind::Delay)),
        );
    }
    t.print();
    println!("\nPaper reference: 62% saving in setting (i) rising to 79-81% in (iii),");
    println!("vs. both the default and delay schedulers.");
    emit_json(&records);
}
