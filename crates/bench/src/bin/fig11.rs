//! Figure 11: accumulated CPU time per node under LiPS, for different
//! epoch lengths (Table IV suite, 20-node 50 % c1.medium testbed).
//!
//! Paper shape (epoch 400 s vs 600 s): shorter epochs spread work over
//! more nodes (higher parallelism, faster, pricier); longer epochs
//! concentrate it on the cheap ones. Our cost knee sits near 1600 s for
//! this workload, so a 1600 s column is included to make the
//! concentration effect unmistakable.
//!
//! Flags: `--json`, `--audit` (certify the LPs first).

use lips_bench::experiments::fig11_run;
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_sim::metrics::jain_index;

fn main() {
    lips_bench::audit_gate::maybe_audit(600.0);
    println!("Figure 11 — accumulated busy CPU time per node (LiPS)\n");
    let epochs = [400.0, 600.0, 1600.0];
    let runs: Vec<Vec<(String, f64)>> = epochs.iter().map(|&e| fig11_run(e, 2013)).collect();

    let mut t = Table::new(["Node", "epoch 400 s", "epoch 600 s", "epoch 1600 s"]);
    let mut records = Vec::new();
    #[allow(clippy::needless_range_loop)] // rows are zipped across three runs
    for i in 0..runs[0].len() {
        let name = runs[0][i].0.clone();
        t.row([
            name.clone(),
            format!("{:.0} s", runs[0][i].1),
            format!("{:.0} s", runs[1][i].1),
            format!("{:.0} s", runs[2][i].1),
        ]);
        records.push(
            ExperimentRecord::new("fig11", &name)
                .value("busy_sec_epoch400", runs[0][i].1)
                .value("busy_sec_epoch600", runs[1][i].1)
                .value("busy_sec_epoch1600", runs[2][i].1),
        );
    }
    t.print();

    println!("\nParallelism summary:");
    let mut s = Table::new(["Epoch", "Nodes with work", "Jain index of busy time"]);
    for (e, rows) in epochs.iter().zip(&runs) {
        let busy: Vec<f64> = rows.iter().map(|(_, v)| *v).collect();
        let active = busy.iter().filter(|&&v| v > 1.0).count();
        s.row([
            format!("{e:.0} s"),
            format!("{active}"),
            format!("{:.3}", jain_index(&busy)),
        ]);
    }
    s.print();
    println!("\nPaper reference: shorter epoch -> higher parallelism and faster jobs");
    println!("(but higher cost); longer epoch -> work packed onto the cheap nodes.");
    emit_json(&records);
}
