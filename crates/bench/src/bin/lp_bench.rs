//! Epoch-loop LP solver benchmark: 20 consecutive Fig-4 epochs on the
//! large-cluster configuration, cold starts vs warm-start chaining vs
//! delayed column generation.
//!
//! Prints a per-epoch table and the per-mode totals; with `--json`,
//! additionally writes `BENCH_lp_epoch.json` in the current directory so
//! the README perf table and CI gates can consume the numbers.
//!
//! Flags: `--json`, `--colgen` (also run the column-generated restricted
//! master and record active-column counts + pricing rounds per epoch),
//! `--mode dual` (also run the churn fast path — certification-safe
//! presolve + dual-simplex re-solve from the carried basis — and, with
//! `--faults`, a second fault series whose ladder tries the dual rung
//! first; records `dual_pivots`/`bound_flips`/`presolve_removed` per epoch
//! and the fault-epoch iteration ratio vs the primal repair ladder),
//! `--mode sharded` (also run the block-angular decomposition — per-zone
//! subproblems fanned out in parallel, stitched and re-priced by a
//! restricted master, certified against the full model — with shard +
//! master bases chained across epochs),
//! `--audit` (exit non-zero unless every epoch of every mode certified),
//! `--threads N` (worker count for model build, pricing, and
//! certification; default 0 = `LIPS_THREADS` or the host parallelism),
//! `--scaling` (re-run the colgen sequence at 1/2/4/8 workers and record
//! per-width wall-time plus a bitwise determinism check),
//! `--nodes N` (cluster size, default 100),
//! `--scale` (run *only* the 100/1k/10k-node scale trajectory on
//! Google-trace-shaped workloads and write `BENCH_scale.json` with
//! per-phase build/solve/certify wall-times),
//! `--jobs N` (default 32), `--epochs N` (default 20), `--churn N`
//! (default 2), `--churn-every N` (default 5 — a LiPS epoch is ~2000 s,
//! so a Table-IV-sized job spans several epochs before a
//! departure/arrival pair perturbs the LP's structure).

use lips_bench::lp_epoch::{
    dual_fault_head_to_head, fault_epoch_iterations, run_epochs, run_epochs_faulted,
    thread_scaling, EpochMode, EpochRun, FaultEpochRun, FaultScript, ThreadScalingPoint, EPOCHS,
};
use lips_bench::scale::{default_series, run_scale_point, ScaleReport};
use lips_bench::Table;
use lips_cluster::ec2_mixed_cluster;
use serde::Serialize;

#[derive(Serialize)]
struct BenchReport {
    config: String,
    cold: EpochRun,
    warm: EpochRun,
    /// Present only with `--colgen`.
    colgen: Option<EpochRun>,
    /// Present only with `--mode dual`: the churn fast path
    /// (certification-safe presolve + dual-simplex re-solve from the
    /// carried basis, primal fallback when no basis is dual-startable).
    dual: Option<EpochRun>,
    /// Present only with `--mode sharded`: the block-angular
    /// decomposition, shard + master bases chained across epochs, every
    /// epoch certified against the full model.
    sharded: Option<EpochRun>,
    /// Present only with `--faults`: the same epoch sequence with scripted
    /// machine revocations, a store loss, a repricing, and a rejoin.
    faults: Option<FaultEpochRun>,
    /// Present only with `--faults --mode dual`: the fault series re-run
    /// with the dual rung first in the ladder.
    faults_dual: Option<FaultEpochRun>,
    /// Worker count used for the cold/warm/colgen/fault runs (0 = solver
    /// default: `LIPS_THREADS` or the host parallelism).
    threads: usize,
    /// `std::thread::available_parallelism()` of the machine that produced
    /// these numbers — read the scaling series against this. On a 1-core
    /// host every width shares the core and the speedups sit near 1.0.
    host_parallelism: usize,
    /// Present only with `--scaling`: the colgen sequence re-run at
    /// 1/2/4/8 workers, each width checked bitwise against the serial run.
    thread_scaling: Option<Vec<ThreadScalingPoint>>,
    /// cold ÷ warm total simplex iterations (higher = warm wins).
    iteration_ratio: f64,
    /// cold ÷ warm total solve wall-time.
    walltime_ratio: f64,
    /// cold ÷ warm total FTRAN nonzeros.
    ftran_nnz_ratio: f64,
    /// warm ÷ colgen total epoch wall-time (build + solve + certify;
    /// higher = colgen wins). `None` without `--colgen`.
    colgen_epoch_ms_ratio: Option<f64>,
    /// Mean active/total column share of the colgen master (the
    /// acceptance gate wants ≤ 0.5). `None` without `--colgen`.
    colgen_active_share: Option<f64>,
    /// cold ÷ dual total simplex iterations over the churn sequence
    /// (higher = the dual fast path wins). `None` without `--mode dual`.
    dual_iteration_ratio: Option<f64>,
    /// warm ÷ sharded total epoch wall-time (build + solve + certify;
    /// higher = the decomposition wins). `None` without `--mode sharded`.
    sharded_epoch_ms_ratio: Option<f64>,
    /// Head-to-head fault re-solve ratio: on each dual-served fault
    /// epoch both methods solve the same model from the same repaired
    /// basis, and this is primal ÷ dual summed iterations (higher = the
    /// dual path wins; the acceptance target is ≥ 5). `None` without
    /// `--faults --mode dual`.
    dual_fault_iteration_ratio: Option<f64>,
    /// Chain-level context: fault-epoch iterations spent by the primal
    /// repair ladder ÷ by the dual-first ladder, each on its own chain.
    dual_fault_chain_ratio: Option<f64>,
}

fn flag_value(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = flag_value(&args, "--jobs", 32);
    let epochs = flag_value(&args, "--epochs", EPOCHS);
    let churn = flag_value(&args, "--churn", 2);
    let churn_every = flag_value(&args, "--churn-every", 5);
    let threads = flag_value(&args, "--threads", 0);
    let nodes = flag_value(&args, "--nodes", 100);
    let with_colgen = args.iter().any(|a| a == "--colgen");
    let with_dual = args.windows(2).any(|w| w[0] == "--mode" && w[1] == "dual");
    let with_sharded = args
        .windows(2)
        .any(|w| w[0] == "--mode" && w[1] == "sharded");
    let with_faults = args.iter().any(|a| a == "--faults");
    let with_scaling = args.iter().any(|a| a == "--scaling");
    // lips-allow(thread-width-dependence): reported in the bench header only; never feeds results
    let host_parallelism = std::thread::available_parallelism().map_or(1, usize::from);

    if args.iter().any(|a| a == "--scale") {
        run_scale_series(threads, host_parallelism, &args);
        return;
    }

    let cluster = ec2_mixed_cluster(nodes, 0.4, 1e9, 1);
    let config = format!(
        "{} nodes, {jobs} jobs/epoch, churn {churn} every {churn_every} epochs, {epochs} epochs",
        cluster.machines.len()
    );
    println!("LP epoch-sequence benchmark — {config}");
    println!("threads: {threads} (0 = solver default), host parallelism: {host_parallelism}\n");

    let cold = run_epochs(
        &cluster,
        jobs,
        churn,
        churn_every,
        epochs,
        EpochMode::Cold,
        threads,
    );
    let warm = run_epochs(
        &cluster,
        jobs,
        churn,
        churn_every,
        epochs,
        EpochMode::Warm,
        threads,
    );
    let colgen = with_colgen.then(|| {
        run_epochs(
            &cluster,
            jobs,
            churn,
            churn_every,
            epochs,
            EpochMode::ColGen,
            threads,
        )
    });
    let dual = with_dual.then(|| {
        run_epochs(
            &cluster,
            jobs,
            churn,
            churn_every,
            epochs,
            EpochMode::Dual,
            threads,
        )
    });
    let sharded = with_sharded.then(|| {
        run_epochs(
            &cluster,
            jobs,
            churn,
            churn_every,
            epochs,
            EpochMode::Sharded,
            threads,
        )
    });
    let faults = with_faults.then(|| {
        let script = FaultScript::acceptance(&cluster);
        run_epochs_faulted(
            &cluster,
            jobs,
            churn,
            churn_every,
            epochs,
            &script,
            threads,
            false,
        )
    });
    let faults_dual = (with_faults && with_dual).then(|| {
        let script = FaultScript::acceptance(&cluster);
        run_epochs_faulted(
            &cluster,
            jobs,
            churn,
            churn_every,
            epochs,
            &script,
            threads,
            true,
        )
    });
    let scaling = with_scaling
        .then(|| thread_scaling(&cluster, jobs, churn, churn_every, epochs, &[1, 2, 4, 8]));

    let mut header = vec![
        "epoch",
        "cold iters",
        "cold ms",
        "warm iters",
        "warm ms",
        "start",
    ];
    if with_colgen {
        header.extend(["cg iters", "cg ms", "cg cols", "cg rounds"]);
    }
    if with_dual {
        header.extend(["dual iters", "dual ms", "pivots/flips", "presolved"]);
    }
    if with_sharded {
        header.extend(["sh iters", "sh ms", "sh cols", "sh rounds"]);
    }
    let mut t = Table::new(header);
    for (i, (c, w)) in cold.epochs.iter().zip(&warm.epochs).enumerate() {
        let mut row = vec![
            c.epoch.to_string(),
            c.iterations.to_string(),
            format!("{:.2}", c.epoch_ms),
            w.iterations.to_string(),
            format!("{:.2}", w.epoch_ms),
            w.warm.clone(),
        ];
        if let Some(cg) = colgen.as_ref().and_then(|r| r.epochs.get(i)) {
            row.extend([
                cg.iterations.to_string(),
                format!("{:.2}", cg.epoch_ms),
                format!("{}/{}", cg.active_columns, cg.total_columns),
                cg.pricing_rounds.to_string(),
            ]);
        }
        if let Some(d) = dual.as_ref().and_then(|r| r.epochs.get(i)) {
            row.extend([
                d.iterations.to_string(),
                format!("{:.2}", d.epoch_ms),
                format!("{}/{}", d.dual_pivots, d.bound_flips),
                d.presolve_removed.to_string(),
            ]);
        }
        if let Some(s) = sharded.as_ref().and_then(|r| r.epochs.get(i)) {
            row.extend([
                s.iterations.to_string(),
                format!("{:.2}", s.epoch_ms),
                format!("{}/{}", s.active_columns, s.total_columns),
                s.pricing_rounds.to_string(),
            ]);
        }
        t.row(row);
    }
    t.print();

    let ratio = |c: f64, w: f64| if w > 0.0 { c / w } else { f64::INFINITY };
    let report = BenchReport {
        iteration_ratio: ratio(cold.total_iterations as f64, warm.total_iterations as f64),
        walltime_ratio: ratio(cold.total_solve_ms, warm.total_solve_ms),
        ftran_nnz_ratio: ratio(cold.total_ftran_nnz as f64, warm.total_ftran_nnz as f64),
        colgen_epoch_ms_ratio: colgen
            .as_ref()
            .map(|cg| ratio(warm.total_epoch_ms, cg.total_epoch_ms)),
        colgen_active_share: colgen.as_ref().map(|cg| cg.active_column_share),
        dual_iteration_ratio: dual
            .as_ref()
            .map(|d| ratio(cold.total_iterations as f64, d.total_iterations as f64)),
        sharded_epoch_ms_ratio: sharded
            .as_ref()
            .map(|s| ratio(warm.total_epoch_ms, s.total_epoch_ms)),
        dual_fault_iteration_ratio: faults_dual
            .as_ref()
            .and_then(dual_fault_head_to_head)
            .map(|(p, d)| ratio(p as f64, d as f64)),
        dual_fault_chain_ratio: match (&faults, &faults_dual) {
            (Some(base), Some(d)) => Some(ratio(
                fault_epoch_iterations(base) as f64,
                fault_epoch_iterations(d) as f64,
            )),
            _ => None,
        },
        config,
        cold,
        warm,
        colgen,
        dual,
        sharded,
        faults,
        faults_dual,
        threads,
        host_parallelism,
        thread_scaling: scaling,
    };
    println!(
        "\ntotals: cold {} iters / {:.1} ms solve / {:.1} ms epoch / {} FTRAN nnz",
        report.cold.total_iterations,
        report.cold.total_solve_ms,
        report.cold.total_epoch_ms,
        report.cold.total_ftran_nnz
    );
    println!(
        "        warm {} iters / {:.1} ms solve / {:.1} ms epoch / {} FTRAN nnz ({}/{} epochs warm-started)",
        report.warm.total_iterations,
        report.warm.total_solve_ms,
        report.warm.total_epoch_ms,
        report.warm.total_ftran_nnz,
        report.warm.warm_solves,
        epochs.saturating_sub(1).max(1)
    );
    if let Some(cg) = &report.colgen {
        println!(
            "        colgen {} iters / {:.1} ms solve / {:.1} ms epoch / {} pricing rounds / {:.0}% columns active",
            cg.total_iterations,
            cg.total_solve_ms,
            cg.total_epoch_ms,
            cg.total_pricing_rounds,
            cg.active_column_share * 100.0
        );
    }
    println!(
        "speedup: {:.2}x iterations, {:.2}x wall-time, {:.2}x FTRAN nnz (cold/warm)",
        report.iteration_ratio, report.walltime_ratio, report.ftran_nnz_ratio,
    );
    if let Some(d) = &report.dual {
        let pivots: usize = d.epochs.iter().map(|e| e.dual_pivots).sum();
        let flips: usize = d.epochs.iter().map(|e| e.bound_flips).sum();
        let removed: usize = d.epochs.iter().map(|e| e.presolve_removed).sum();
        println!(
            "        dual {} iters / {:.1} ms solve / {:.1} ms epoch / {} dual pivots / {} bound flips / {} presolved away",
            d.total_iterations, d.total_solve_ms, d.total_epoch_ms, pivots, flips, removed
        );
    }
    if let (Some(r), Some(s)) = (report.colgen_epoch_ms_ratio, report.colgen_active_share) {
        println!(
            "colgen:  {:.2}x epoch wall-time vs warm, {:.0}% of full columns active",
            r,
            s * 100.0
        );
    }
    if let Some(r) = report.dual_iteration_ratio {
        println!("dual:    {r:.2}x iterations vs cold over the churn sequence");
    }
    if let Some(s) = &report.sharded {
        println!(
            "        sharded {} iters / {:.1} ms build / {:.1} ms solve / {:.1} ms certify / {:.1} ms epoch / {:.0}% columns active",
            s.total_iterations,
            s.total_build_ms,
            s.total_solve_ms,
            s.total_certify_ms,
            s.total_epoch_ms,
            s.active_column_share * 100.0
        );
        if let Some(r) = report.sharded_epoch_ms_ratio {
            println!("sharded: {r:.2}x epoch wall-time vs warm");
        }
    }
    let print_fault_series = |label: &str, f: &FaultEpochRun| {
        let mut t = Table::new(vec![
            "epoch",
            "faults",
            "repaired",
            "iters",
            "pivots/flips",
            "ms",
            "start",
            "state",
        ]);
        for r in &f.epochs {
            t.row(vec![
                r.epoch.to_string(),
                if r.events.is_empty() {
                    "-".to_string()
                } else {
                    r.events.join(", ")
                },
                r.repaired.to_string(),
                r.iterations.to_string(),
                format!("{}/{}", r.dual_pivots, r.bound_flips),
                format!("{:.2}", r.epoch_ms),
                r.warm.clone(),
                if r.certified {
                    "certified".to_string()
                } else {
                    "DEGRADED".to_string()
                },
            ]);
        }
        println!(
            "
{label} ({} revocations, {} store loss(es), {} repricing(s), {} rejoin(s)):",
            f.revocations, f.store_losses, f.repricings, f.rejoins
        );
        t.print();
        println!(
            "faults:  {} iters / {:.1} ms epoch / {} warm / {} dual / {} certified / {} degraded",
            f.total_iterations,
            f.total_epoch_ms,
            f.warm_solves,
            f.dual_solves,
            f.certified_epochs,
            f.degraded_epochs
        );
    };
    if let Some(f) = &report.faults {
        print_fault_series("fault-mode series", f);
    }
    if let Some(f) = &report.faults_dual {
        print_fault_series("fault-mode series, dual-first ladder", f);
    }
    if let Some(r) = report.dual_fault_iteration_ratio {
        println!(
            "dual faults: {r:.2}x fewer simplex iterations than repaired-warm primal \
             on the same fault epochs and bases (head-to-head)"
        );
    }
    if let Some(r) = report.dual_fault_chain_ratio {
        println!("dual ladder: {r:.2}x fewer fault-epoch iterations than the primal repair chain");
    }

    if let Some(series) = &report.thread_scaling {
        let mut t = Table::new(vec![
            "threads", "epoch ms", "solve ms", "speedup", "bitwise",
        ]);
        for p in series {
            t.row(vec![
                p.threads.to_string(),
                format!("{:.1}", p.total_epoch_ms),
                format!("{:.1}", p.total_solve_ms),
                format!("{:.2}x", p.speedup_vs_serial),
                if p.identical_to_serial {
                    "identical".to_string()
                } else {
                    "DIVERGED".to_string()
                },
            ]);
        }
        println!("\nthread-scaling series (colgen mode, whole-epoch wall-time):");
        t.print();
    }

    let deterministic = report
        .thread_scaling
        .as_ref()
        .is_none_or(|s| s.iter().all(|p| p.identical_to_serial));
    let all_certified = report.cold.all_certified
        && report.warm.all_certified
        && report.colgen.as_ref().is_none_or(|cg| cg.all_certified)
        && report.dual.as_ref().is_none_or(|d| d.all_certified)
        && report.sharded.as_ref().is_none_or(|s| s.all_certified)
        && report.faults.as_ref().is_none_or(|f| f.all_accounted)
        && report.faults_dual.as_ref().is_none_or(|f| f.all_accounted)
        && deterministic;
    println!("all certified: {all_certified}");

    if args.iter().any(|a| a == "--json") {
        let path = "BENCH_lp_epoch.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("report serializes"),
        )
        .expect("write BENCH_lp_epoch.json");
        println!("wrote {path}");
    }

    if args.iter().any(|a| a == "--audit") && !all_certified {
        eprintln!("--audit: at least one epoch failed certification");
        std::process::exit(1);
    }
}

/// The `--scale` series: the 100 / 1k / 10k-node trajectory on
/// Google-trace-shaped workloads, written to `BENCH_scale.json`. Runs
/// *instead of* the epoch-sequence battery (a 10k-node model has no
/// monolithic baseline to compare against — that is the point).
fn run_scale_series(threads: usize, host_parallelism: usize, args: &[String]) {
    let series = default_series();
    let config = series
        .iter()
        .map(|s| format!("{}x{}", s.nodes, s.jobs))
        .collect::<Vec<_>>()
        .join(", ");
    println!("LP scale trajectory — nodes x jobs: {config}");
    println!("threads: {threads} (0 = solver default), host parallelism: {host_parallelism}\n");
    let mut points = Vec::with_capacity(series.len());
    for spec in &series {
        println!(
            "running {} nodes x {} jobs x {} epochs ({}) ...",
            spec.nodes,
            spec.jobs,
            spec.epochs,
            if spec.certified {
                "sharded, certified"
            } else {
                "greedy, uncertified"
            }
        );
        points.push(run_scale_point(spec, threads));
    }

    let mut t = Table::new(vec![
        "nodes",
        "jobs",
        "mode",
        "epoch",
        "build ms",
        "solve ms",
        "certify ms",
        "epoch ms",
        "shards",
        "rounds",
        "state",
    ]);
    for p in &points {
        for r in &p.epochs {
            t.row(vec![
                p.nodes.to_string(),
                p.jobs.to_string(),
                p.mode.clone(),
                r.epoch.to_string(),
                format!("{:.1}", r.build_ms),
                format!("{:.1}", r.solve_ms),
                format!("{:.1}", r.certify_ms),
                format!("{:.1}", r.epoch_ms),
                r.shards.to_string(),
                r.pricing_rounds.to_string(),
                if r.certified {
                    "certified".to_string()
                } else {
                    "greedy".to_string()
                },
            ]);
        }
        if let Some(probe) = &p.certified_probe {
            t.row(vec![
                p.nodes.to_string(),
                p.probe_jobs.unwrap_or(0).to_string(),
                "probe".to_string(),
                probe.epoch.to_string(),
                format!("{:.1}", probe.build_ms),
                format!("{:.1}", probe.solve_ms),
                format!("{:.1}", probe.certify_ms),
                format!("{:.1}", probe.epoch_ms),
                probe.shards.to_string(),
                probe.pricing_rounds.to_string(),
                if probe.certified {
                    "certified".to_string()
                } else {
                    "FAILED".to_string()
                },
            ]);
        }
    }
    t.print();

    let ok = points.iter().all(|p| {
        (p.mode != "sharded" || p.all_certified)
            && p.certified_probe.as_ref().is_none_or(|r| r.certified)
    });
    println!("certified points + probes optimal: {ok}");

    let report = ScaleReport {
        config,
        threads,
        host_parallelism,
        points,
    };
    if args.iter().any(|a| a == "--json") {
        let path = "BENCH_scale.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("report serializes"),
        )
        .expect("write BENCH_scale.json");
        println!("wrote {path}");
    }
    if args.iter().any(|a| a == "--audit") && !ok {
        eprintln!("--audit: a certified scale point or probe failed certification");
        std::process::exit(1);
    }
}
