//! Epoch-loop LP solver benchmark: 20 consecutive Fig-4 epochs on the
//! large-cluster configuration, cold starts vs warm-start chaining.
//!
//! Prints a per-epoch table and the cold/warm totals; with `--json`,
//! additionally writes `BENCH_lp_epoch.json` in the current directory so
//! the README perf table and CI gates can consume the numbers.
//!
//! Flags: `--json`, `--jobs N` (default 32), `--epochs N` (default 20),
//! `--churn N` (default 2), `--churn-every N` (default 5 — a LiPS epoch
//! is ~2000 s, so a Table-IV-sized job spans several epochs before a
//! departure/arrival pair perturbs the LP's structure).

use lips_bench::lp_epoch::{large_cluster, run_epochs, EpochRun, EPOCHS};
use lips_bench::Table;
use serde::Serialize;

#[derive(Serialize)]
struct BenchReport {
    config: String,
    cold: EpochRun,
    warm: EpochRun,
    /// cold ÷ warm total simplex iterations (higher = warm wins).
    iteration_ratio: f64,
    /// cold ÷ warm total solve wall-time.
    walltime_ratio: f64,
    /// cold ÷ warm total FTRAN nonzeros.
    ftran_nnz_ratio: f64,
}

fn flag_value(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let jobs = flag_value(&args, "--jobs", 32);
    let epochs = flag_value(&args, "--epochs", EPOCHS);
    let churn = flag_value(&args, "--churn", 2);
    let churn_every = flag_value(&args, "--churn-every", 5);

    let cluster = large_cluster();
    let config = format!(
        "{} nodes, {jobs} jobs/epoch, churn {churn} every {churn_every} epochs, {epochs} epochs",
        cluster.machines.len()
    );
    println!("LP epoch-sequence benchmark — {config}\n");

    let cold = run_epochs(&cluster, jobs, churn, churn_every, epochs, false);
    let warm = run_epochs(&cluster, jobs, churn, churn_every, epochs, true);

    let mut t = Table::new([
        "epoch",
        "cold iters",
        "cold ms",
        "warm iters",
        "warm ms",
        "start",
    ]);
    for (c, w) in cold.epochs.iter().zip(&warm.epochs) {
        t.row([
            c.epoch.to_string(),
            c.iterations.to_string(),
            format!("{:.2}", c.solve_ms),
            w.iterations.to_string(),
            format!("{:.2}", w.solve_ms),
            w.warm.clone(),
        ]);
    }
    t.print();

    let ratio = |c: f64, w: f64| if w > 0.0 { c / w } else { f64::INFINITY };
    let report = BenchReport {
        iteration_ratio: ratio(cold.total_iterations as f64, warm.total_iterations as f64),
        walltime_ratio: ratio(cold.total_solve_ms, warm.total_solve_ms),
        ftran_nnz_ratio: ratio(cold.total_ftran_nnz as f64, warm.total_ftran_nnz as f64),
        config,
        cold,
        warm,
    };
    println!(
        "\ntotals: cold {} iters / {:.1} ms / {} FTRAN nnz",
        report.cold.total_iterations, report.cold.total_solve_ms, report.cold.total_ftran_nnz
    );
    println!(
        "        warm {} iters / {:.1} ms / {} FTRAN nnz ({}/{} epochs warm-started)",
        report.warm.total_iterations,
        report.warm.total_solve_ms,
        report.warm.total_ftran_nnz,
        report.warm.warm_solves,
        epochs.saturating_sub(1).max(1)
    );
    println!(
        "speedup: {:.2}x iterations, {:.2}x wall-time, {:.2}x FTRAN nnz; all certified: {}",
        report.iteration_ratio,
        report.walltime_ratio,
        report.ftran_nnz_ratio,
        report.cold.all_certified && report.warm.all_certified
    );

    if args.iter().any(|a| a == "--json") {
        let path = "BENCH_lp_epoch.json";
        std::fs::write(
            path,
            serde_json::to_string_pretty(&report).expect("report serializes"),
        )
        .expect("write BENCH_lp_epoch.json");
        println!("wrote {path}");
    }
}
