//! Figure 8: the epoch-length knob — (a) total job execution time and
//! (b) total cost, as the LiPS epoch grows, on the Fig 6 setting (iii)
//! testbed.
//!
//! Paper shape: cost decreases with epoch length, execution time
//! increases (longer epochs let the LP concentrate work on the cheapest
//! nodes at the expense of parallelism).
//!
//! Flags: `--json`, `--audit` (certify the LPs first).

use lips_bench::experiments::fig8_run;
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::{dollars, secs};
use lips_bench::Table;

fn main() {
    lips_bench::audit_gate::maybe_audit(600.0);
    println!("Figure 8 — cost vs. execution time as the LiPS epoch length varies");
    println!("(Table IV suite on the 20-node, 50% c1.medium testbed)\n");

    let epochs = [
        100.0, 200.0, 400.0, 600.0, 800.0, 1200.0, 1600.0, 2000.0, 2400.0,
    ];
    let mut t = Table::new(["Epoch (s)", "Total cost ($)", "Exec time", "Busy nodes"]);
    let mut records = Vec::new();
    for &e in &epochs {
        let r = fig8_run(e, 2013);
        let busy = r
            .metrics
            .busy_sec_by_machine
            .values()
            .filter(|&&v| v > 1.0)
            .count();
        t.row([
            format!("{e:.0}"),
            dollars(r.metrics.total_dollars()),
            secs(r.makespan),
            format!("{busy}"),
        ]);
        records.push(
            ExperimentRecord::new("fig8", format!("epoch={e}"))
                .value("total_dollars", r.metrics.total_dollars())
                .value("makespan", r.makespan)
                .value("busy_nodes", busy as f64),
        );
    }
    t.print();
    println!("\nPaper reference: increasing epoch length decreases cost and increases");
    println!("execution time (Fig 8a/8b); short epochs spread work over more nodes.");
    emit_json(&records);
}
