//! Generic scenario runner: describe a cluster, a workload, and a
//! scheduler in JSON, get the bill.
//!
//! ```bash
//! simulate --config scenario.json
//! simulate --print-sample-config > scenario.json   # starting template
//! ```
//!
//! The config covers every knob the library exposes: cluster presets or
//! explicit machine lists, workload presets / SWIM traces / inline job
//! lists (including priorities, pools, arrival times, fractional reads),
//! scheduler choice with LiPS tuning, replication, stragglers, and
//! interference.

use std::fs;

use serde::{Deserialize, Serialize};

use lips_cluster::{ec2_100_node, ec2_mixed_cluster, Cluster};
use lips_core::{
    AdaptiveConfig, AdaptiveLips, DelayScheduler, FairScheduler, HadoopDefaultScheduler,
    LipsScheduler, SchedulerConfig,
};
use lips_sim::{Placement, Scheduler, Simulation};
use lips_workload::{bind_workload, swim_trace, table_iv_suite, JobSpec, PlacementPolicy, SwimCfg};

#[derive(Debug, Serialize, Deserialize)]
#[serde(deny_unknown_fields)]
struct Config {
    cluster: ClusterCfg,
    workload: WorkloadCfg,
    scheduler: SchedulerCfg,
    #[serde(default = "default_seed")]
    seed: u64,
    /// HDFS replication factor for the initial block spread.
    #[serde(default = "default_replication")]
    replication: usize,
    /// Optional straggler injection (probability, slowdown).
    #[serde(default)]
    stragglers: Option<(f64, f64)>,
    /// Network interference factor (0 = off).
    #[serde(default)]
    interference: f64,
}

fn default_seed() -> u64 {
    2013
}
fn default_replication() -> usize {
    1
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum ClusterCfg {
    /// The Fig 6 testbed shape: n nodes, a c1.medium fraction.
    Ec2Mixed { nodes: usize, c1_fraction: f64 },
    /// The Fig 9 testbed: 100 nodes, three types, three zones.
    Ec2Hundred,
    /// A cluster serialized with serde (e.g. from a previous run).
    File { path: String },
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum WorkloadCfg {
    /// Table IV's J1-J9.
    TableIv,
    /// A SWIM-like trace.
    Swim { jobs: usize, hours: usize },
    /// Inline job list (full `JobSpec` serde format).
    Jobs { jobs: Vec<JobSpec> },
    /// Job list from a JSON file.
    File { path: String },
}

#[derive(Debug, Serialize, Deserialize)]
#[serde(tag = "kind", rename_all = "snake_case", deny_unknown_fields)]
enum SchedulerCfg {
    Lips {
        epoch_s: f64,
        #[serde(default)]
        fairness: f64,
        #[serde(default)]
        pruned: bool,
    },
    LipsAdaptive {
        cost_preference: f64,
    },
    HadoopDefault,
    Delay,
    Fair,
}

fn sample_config() -> Config {
    Config {
        cluster: ClusterCfg::Ec2Mixed {
            nodes: 20,
            c1_fraction: 0.5,
        },
        workload: WorkloadCfg::Swim { jobs: 50, hours: 4 },
        scheduler: SchedulerCfg::Lips {
            epoch_s: 600.0,
            fairness: 0.0,
            pruned: false,
        },
        seed: 2013,
        replication: 1,
        stragglers: None,
        interference: 0.0,
    }
}

fn build_cluster(cfg: &ClusterCfg, seed: u64) -> Cluster {
    match cfg {
        ClusterCfg::Ec2Mixed { nodes, c1_fraction } => {
            ec2_mixed_cluster(*nodes, *c1_fraction, 1e9, seed)
        }
        ClusterCfg::Ec2Hundred => ec2_100_node(1e9, seed),
        ClusterCfg::File { path } => {
            let json = fs::read_to_string(path).expect("cluster file readable");
            let c: Cluster = serde_json::from_str(&json).expect("cluster JSON parses");
            c.validate().expect("cluster file is structurally valid");
            c
        }
    }
}

fn build_jobs(cfg: &WorkloadCfg, seed: u64) -> Vec<JobSpec> {
    match cfg {
        WorkloadCfg::TableIv => table_iv_suite(),
        WorkloadCfg::Swim { jobs, hours } => swim_trace(
            &SwimCfg {
                jobs: *jobs,
                hours: *hours,
                ..Default::default()
            },
            seed,
        ),
        WorkloadCfg::Jobs { jobs } => jobs.clone(),
        WorkloadCfg::File { path } => {
            let json = fs::read_to_string(path).expect("workload file readable");
            serde_json::from_str(&json).expect("workload JSON parses")
        }
    }
}

fn build_scheduler(cfg: &SchedulerCfg) -> Box<dyn Scheduler> {
    match cfg {
        SchedulerCfg::Lips {
            epoch_s,
            fairness,
            pruned,
        } => {
            let mut c = if *pruned {
                SchedulerConfig::large_cluster(*epoch_s)
            } else {
                SchedulerConfig::small_cluster(*epoch_s)
            };
            c.fairness = *fairness;
            Box::new(LipsScheduler::new(c))
        }
        SchedulerCfg::LipsAdaptive { cost_preference } => Box::new(AdaptiveLips::new(
            SchedulerConfig::small_cluster(400.0),
            AdaptiveConfig {
                cost_preference: *cost_preference,
                ..Default::default()
            },
        )),
        SchedulerCfg::HadoopDefault => Box::new(HadoopDefaultScheduler::new()),
        SchedulerCfg::Delay => Box::new(DelayScheduler::default()),
        SchedulerCfg::Fair => Box::new(FairScheduler::new()),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--print-sample-config") {
        println!(
            "{}",
            serde_json::to_string_pretty(&sample_config()).unwrap()
        );
        return;
    }
    let path = args
        .iter()
        .position(|a| a == "--config")
        .and_then(|i| args.get(i + 1))
        .unwrap_or_else(|| {
            eprintln!("usage: simulate --config scenario.json | --print-sample-config");
            std::process::exit(2);
        });
    let cfg: Config = serde_json::from_str(
        &fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}")),
    )
    .unwrap_or_else(|e| panic!("bad config: {e}"));

    let mut cluster = build_cluster(&cfg.cluster, cfg.seed);
    let jobs = build_jobs(&cfg.workload, cfg.seed);
    let n_jobs = jobs.len();
    let bound = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, cfg.seed);
    let placement = if cfg.replication > 1 {
        Placement::spread_blocks_replicated(&cluster, cfg.seed, cfg.replication)
    } else {
        Placement::spread_blocks(&cluster, cfg.seed)
    };
    let mut sim = Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .with_interference(cfg.interference);
    if let Some((p, f)) = cfg.stragglers {
        sim = sim.with_stragglers(p, f, cfg.seed);
    }
    let mut sched = build_scheduler(&cfg.scheduler);
    let r = sim
        .run(sched.as_mut())
        .unwrap_or_else(|e| panic!("simulation failed: {e}"));

    println!("scheduler        : {}", r.scheduler);
    println!("jobs completed   : {} / {n_jobs}", r.outcomes.len());
    println!("total dollars    : {:.4}", r.metrics.total_dollars());
    println!("  cpu            : {:.4}", r.metrics.cpu_dollars);
    println!("  reads          : {:.4}", r.metrics.read_dollars);
    println!("  moves          : {:.4}", r.metrics.move_dollars);
    println!("makespan         : {:.0} s", r.makespan);
    println!("mean job duration: {:.0} s", r.mean_job_duration());
    println!(
        "data locality    : {:.1}%",
        r.metrics.locality_ratio() * 100.0
    );
    println!("moved data       : {:.0} MB", r.metrics.moved_mb);
    println!("pool fairness    : {:.3} (Jain)", r.pool_fairness_jain());
    println!("events processed : {}", r.events);
}
