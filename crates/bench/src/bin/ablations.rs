//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Candidate pruning** — exact Fig-4 LP vs. the pruned production
//!    configuration: solution cost and decision latency.
//! 2. **HDFS replication factor** — how baseline locality (and therefore
//!    LiPS's relative savings) changes with 1× / 2× / 3× block replicas.
//! 3. **Stragglers & speculation** — 10 % of chunks running 4× slower:
//!    dollar bills are untouched (work-based billing) while makespans
//!    stretch; turning Hadoop-style speculative execution on buys the time
//!    back for extra dollars — exactly why the paper disables it (§VI-A).
//! 4. **Fairness dial σ** — the price of pool fairness floors.
//!
//! Flags: `--json`.

use std::time::Instant;

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::{dollars, pct, secs};
use lips_bench::Table;
use lips_cluster::ec2_mixed_cluster;
use lips_core::{DelayScheduler, LipsScheduler, SchedulerConfig};
use lips_sim::{Placement, Simulation};
use lips_workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

fn jobs() -> Vec<JobSpec> {
    vec![
        JobSpec::new(0, "grep", JobKind::Grep, 6144.0, 96),
        JobSpec::new(1, "wc", JobKind::WordCount, 6144.0, 96).in_pool("analytics"),
        JobSpec::new(2, "stress", JobKind::Stress2, 4096.0, 64).in_pool("etl"),
        JobSpec::new(3, "pi", JobKind::Pi, 0.0, 8),
    ]
}

fn run_with(
    nodes: usize,
    cfg: SchedulerConfig,
    replicas: usize,
    stragglers: Option<(f64, f64)>,
) -> (lips_sim::SimReport, f64) {
    let mut cluster = ec2_mixed_cluster(nodes, 0.5, 1e9, 7);
    let bound = bind_workload(&mut cluster, jobs(), PlacementPolicy::RoundRobin, 7);
    let placement = if replicas > 1 {
        Placement::spread_blocks_replicated(&cluster, 7, replicas)
    } else {
        Placement::spread_blocks(&cluster, 7)
    };
    let mut sim = Simulation::new(&cluster, &bound).with_placement(placement);
    if let Some((p, f)) = stragglers {
        sim = sim.with_stragglers(p, f, 7);
    }
    let mut sched = LipsScheduler::new(cfg);
    let t0 = Instant::now();
    let report = sim.run(&mut sched).expect("completes");
    (report, t0.elapsed().as_secs_f64())
}

fn run_delay(nodes: usize, replicas: usize, stragglers: Option<(f64, f64)>) -> lips_sim::SimReport {
    run_delay_spec(nodes, replicas, stragglers, false)
}

fn run_delay_spec(
    nodes: usize,
    replicas: usize,
    stragglers: Option<(f64, f64)>,
    speculation: bool,
) -> lips_sim::SimReport {
    let mut cluster = ec2_mixed_cluster(nodes, 0.5, 1e9, 7);
    let bound = bind_workload(&mut cluster, jobs(), PlacementPolicy::RoundRobin, 7);
    let placement = if replicas > 1 {
        Placement::spread_blocks_replicated(&cluster, 7, replicas)
    } else {
        Placement::spread_blocks(&cluster, 7)
    };
    let mut sim = Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .with_speculation(speculation);
    if let Some((p, f)) = stragglers {
        sim = sim.with_stragglers(p, f, 7);
    }
    let mut sched = DelayScheduler::default();
    sim.run(&mut sched).expect("completes")
}

fn main() {
    let mut records = Vec::new();

    // ---- 1. pruning ------------------------------------------------------
    println!("Ablation 1 — candidate pruning (40-node cluster, epoch 2000 s)\n");
    let mut t = Table::new(["config", "total $", "wall time (whole sim)"]);
    let exact = SchedulerConfig::small_cluster(2000.0);
    let mut pruned = SchedulerConfig::large_cluster(2000.0);
    pruned.epoch_s = 2000.0;
    let (re, we) = run_with(40, exact, 1, None);
    let (rp, wp) = run_with(40, pruned, 1, None);
    t.row([
        "exact (no pruning)".to_string(),
        dollars(re.metrics.total_dollars()),
        format!("{we:.2} s"),
    ]);
    t.row([
        "pruned (16 machines / 20 holders / 6 dests)".to_string(),
        dollars(rp.metrics.total_dollars()),
        format!("{wp:.2} s"),
    ]);
    t.print();
    let gap = rp.metrics.total_dollars() / re.metrics.total_dollars() - 1.0;
    println!(
        "Pruning cost gap: {} (positive = pruned slightly dearer)\n",
        pct(gap)
    );
    records.push(
        ExperimentRecord::new("ablation", "pruning")
            .value("exact_dollars", re.metrics.total_dollars())
            .value("pruned_dollars", rp.metrics.total_dollars())
            .value("cost_gap", gap),
    );

    // ---- 2. replication --------------------------------------------------
    println!("Ablation 2 — HDFS replication factor (delay locality & LiPS edge)\n");
    let mut t = Table::new([
        "replicas",
        "delay $",
        "delay locality",
        "LiPS $",
        "LiPS saving",
    ]);
    for r in [1usize, 2, 3] {
        let d = run_delay(20, r, None);
        let (l, _) = run_with(20, SchedulerConfig::small_cluster(2000.0), r, None);
        t.row([
            format!("{r}"),
            dollars(d.metrics.total_dollars()),
            pct(d.metrics.locality_ratio()),
            dollars(l.metrics.total_dollars()),
            pct(1.0 - l.metrics.total_dollars() / d.metrics.total_dollars()),
        ]);
        records.push(
            ExperimentRecord::new("ablation", format!("replication_{r}"))
                .value("delay_dollars", d.metrics.total_dollars())
                .value("lips_dollars", l.metrics.total_dollars())
                .value("delay_locality", d.metrics.locality_ratio()),
        );
    }
    t.print();
    println!();

    // ---- 3. stragglers ----------------------------------------------------
    println!("Ablation 3 — stragglers (10% of chunks run 4x slower)\n");
    let mut t = Table::new([
        "scheduler",
        "clean makespan",
        "straggler makespan",
        "$ change",
    ]);
    let (l0, _) = run_with(20, SchedulerConfig::small_cluster(2000.0), 1, None);
    let (l1, _) = run_with(
        20,
        SchedulerConfig::small_cluster(2000.0),
        1,
        Some((0.1, 4.0)),
    );
    let d0 = run_delay(20, 1, None);
    let d1 = run_delay(20, 1, Some((0.1, 4.0)));
    t.row([
        "LiPS".to_string(),
        secs(l0.makespan),
        secs(l1.makespan),
        pct(l1.metrics.total_dollars() / l0.metrics.total_dollars() - 1.0),
    ]);
    t.row([
        "Delay".to_string(),
        secs(d0.makespan),
        secs(d1.makespan),
        pct(d1.metrics.total_dollars() / d0.metrics.total_dollars() - 1.0),
    ]);
    let d2 = run_delay_spec(20, 1, Some((0.1, 4.0)), true);
    t.row([
        "Delay + speculation".to_string(),
        secs(d0.makespan),
        secs(d2.makespan),
        pct(d2.metrics.total_dollars() / d0.metrics.total_dollars() - 1.0),
    ]);
    t.print();
    println!("(stragglers stretch time, never dollars; speculation recovers the");
    println!(" delay at a duplicate-work premium — under LiPS's pre-determined");
    println!(" placements the paper turns it off as pure extra cost)\n");
    records.push(
        ExperimentRecord::new("ablation", "stragglers")
            .value("lips_clean_makespan", l0.makespan)
            .value("lips_straggler_makespan", l1.makespan),
    );

    // ---- 4. fairness dial --------------------------------------------------
    println!("Ablation 4 — fairness floors sigma (two pools, tight 200 s epochs)\n");
    let mut t = Table::new(["sigma", "total $", "pool completion spread"]);
    for sigma in [0.0, 0.5, 1.0] {
        let mut cfg = SchedulerConfig::small_cluster(200.0);
        cfg.fairness = sigma;
        let (r, _) = run_with(20, cfg, 1, None);
        let mut by_pool: std::collections::HashMap<&str, f64> = Default::default();
        for o in &r.outcomes {
            let e = by_pool.entry(o.pool.as_str()).or_insert(0.0);
            *e = e.max(o.completed);
        }
        let spread = {
            let max = by_pool.values().fold(0.0f64, |a, &b| a.max(b));
            let min = by_pool.values().fold(f64::INFINITY, |a, &b| a.min(b));
            max / min
        };
        t.row([
            format!("{sigma:.1}"),
            dollars(r.metrics.total_dollars()),
            format!("{spread:.2}x"),
        ]);
        records.push(
            ExperimentRecord::new("ablation", format!("fairness_{sigma}"))
                .value("total_dollars", r.metrics.total_dollars())
                .value("pool_spread", spread),
        );
    }
    t.print();
    println!("(fairness floors can only raise cost; they compress pool completion spread)");
    emit_json(&records);
}
