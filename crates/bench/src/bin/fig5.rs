//! Figure 5: average cost reduction of LiPS (LP optimum) vs. the ideal
//! delay scheduler (random block shuffle + 100 % locality) in simulated
//! environments, as the problem grows.
//!
//! Paper shape: ~30 % at (J=200, S=10, M=10) rising to ~70 % at
//! (J=1000, S=100, M=100).
//!
//! Flags: `--quick` (smaller points / fewer trials), `--trials N`,
//! `--json`.

use lips_bench::fig5::{fig5_point, paper_points, Fig5Point};
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::pct;
use lips_bench::Table;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let trials = args
        .iter()
        .position(|a| a == "--trials")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 2 } else { 5 });

    let points: Vec<Fig5Point> = if quick {
        vec![
            Fig5Point {
                tasks: 200,
                stores: 10,
                machines: 10,
            },
            Fig5Point {
                tasks: 400,
                stores: 25,
                machines: 25,
            },
            Fig5Point {
                tasks: 600,
                stores: 50,
                machines: 50,
            },
        ]
    } else {
        paper_points()
    };

    println!("Figure 5 — average cost reduction of LiPS vs. ideal delay (100% locality)");
    println!("Random clusters: CPU 0-5 millicent/ECU-s, transfer 0-60 millicent/block,");
    println!("inputs 0-6 GB, job CPU 0-1000 ECU-s. {trials} trials per point.\n");

    let mut t = Table::new([
        "J tasks",
        "S",
        "M",
        "LiPS ($)",
        "ideal delay ($)",
        "reduction",
    ]);
    let mut records = Vec::new();
    for p in points {
        let r = fig5_point(p, trials, 2013);
        t.row([
            format!("{}", p.tasks),
            format!("{}", p.stores),
            format!("{}", p.machines),
            format!("{:.4}", r.lips_dollars),
            format!("{:.4}", r.ideal_delay_dollars),
            pct(r.reduction),
        ]);
        records.push(
            ExperimentRecord::new(
                "fig5",
                format!("J{}-S{}-M{}", p.tasks, p.stores, p.machines),
            )
            .value("lips_dollars", r.lips_dollars)
            .value("ideal_delay_dollars", r.ideal_delay_dollars)
            .value("reduction", r.reduction),
        );
    }
    t.print();
    println!("\nPaper reference: ~30% at (200,10,10) rising to ~70% at (1000,100,100).");
    emit_json(&records);
}
