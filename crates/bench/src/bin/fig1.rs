//! Figure 1: when does it pay to move the data to cheaper cycles?
//!
//! For each benchmark kind, prints the net dollars saved per 64 MB block
//! by moving data from a node priced `a` to one priced `b`, as a function
//! of the price ratio `a/b` — plus the break-even ratio. CPU-intensive
//! kinds (Pi, WordCount) cross early; I/O-bound kinds (Grep) need a much
//! larger price gap.

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_cluster::{BLOCK_MB, MILLICENT};
use lips_core::analysis::{break_even_ratio_for_kind, savings_per_mb};
use lips_workload::JobKind;

fn main() {
    // Destination price: a cheap node at 1 millicent per ECU-second;
    // transfer at the paper's cross-zone price (62.5 millicent per block).
    let b = 1.0 * MILLICENT;
    let d = 62.5 * MILLICENT / BLOCK_MB;

    println!("Figure 1 — net saving (millicents per 64 MB block) from moving data");
    println!("to a node with cheaper CPU, vs. the source/destination price ratio a/b.");
    println!("(b = 1 millicent/ECU-s, transfer = 62.5 millicents/block)\n");

    let ratios = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0];
    let mut headers = vec!["a/b".to_string()];
    headers.extend(JobKind::ALL.iter().map(|k| k.name().to_string()));
    let mut t = Table::new(headers);
    for &r in &ratios {
        let mut row = vec![format!("{r:.0}")];
        for k in JobKind::ALL {
            let c = k.tcp_ecu_sec_per_mb();
            let save_block = if k == JobKind::Pi {
                // No data to move: savings are pure CPU repricing of a
                // "block-equivalent" of work (plotted as the always-move
                // extreme in the paper).
                400.0 * (r * b - b) / MILLICENT
            } else {
                savings_per_mb(c, r * b, b, d) * BLOCK_MB / MILLICENT
            };
            row.push(format!("{save_block:+.1}"));
        }
        t.row(row);
    }
    t.print();

    println!("\nBreak-even price ratio a/b per kind (move pays off above it):");
    let mut t2 = Table::new(["kind", "break-even a/b"]);
    let mut records = Vec::new();
    for k in JobKind::ALL {
        let r = break_even_ratio_for_kind(k, b, d);
        t2.row([k.name().to_string(), format!("{r:.2}")]);
        records.push(ExperimentRecord::new("fig1", k.name()).value("break_even_ratio", r));
    }
    t2.print();
    println!("\nPaper shape: Pi/WordCount move at small ratios; Grep needs a large one.");
    emit_json(&records);
}
