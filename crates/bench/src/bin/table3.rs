//! Table III: the EC2 instance catalog with derived per-ECU-second prices.

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_cluster::InstanceType;

fn main() {
    println!("Table III — Amazon EC2 instance types\n");
    let mut t = Table::new([
        "Instance",
        "CPU/ECU",
        "Mem (GB)",
        "Storage (GB)",
        "$ per hr",
        "millicent per ECU-sec",
    ]);
    let mut records = Vec::new();
    for i in InstanceType::CATALOG {
        t.row([
            i.name.to_string(),
            format!("{} / {}", i.vcpus, i.ecu),
            format!("{}", i.mem_gb),
            format!("{}", i.storage_gb),
            format!("{:.2}-{:.2}", i.price_per_hour.0, i.price_per_hour.1),
            format!(
                "{:.2}-{:.2}",
                i.millicent_per_ecu_sec.0, i.millicent_per_ecu_sec.1
            ),
        ]);
        records.push(
            ExperimentRecord::new("table3", i.name)
                .value("ecu", i.ecu)
                .value(
                    "millicent_per_ecu_sec_mid",
                    (i.millicent_per_ecu_sec.0 + i.millicent_per_ecu_sec.1) / 2.0,
                ),
        );
    }
    t.print();

    let ratio =
        InstanceType::M1_MEDIUM.cpu_cost_dollars() / InstanceType::C1_MEDIUM.cpu_cost_dollars();
    println!(
        "\nPer ECU-second, c1.medium is {ratio:.1}x cheaper than m1.medium \
         (paper: 4-5x) — the savings opportunity LiPS exploits."
    );
    emit_json(&records);
}
