//! Capacity advisor demo: which node is worth renting more of, per the
//! LP's own dual values?
//!
//! Builds a deliberately capacity-tight epoch on the Fig 6 (iii) testbed
//! and prints each binding machine's marginal value in dollars per
//! node-hour — the number you would compare against the instance's rental
//! price to decide whether growing the cluster pays.
//!
//! Flags: `--json`.

use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::Table;
use lips_cluster::{ec2_20_node, StoreId};
use lips_core::advisor::capacity_advice;
use lips_core::lp_build::LpJob;
use lips_workload::JobId;

fn main() {
    let cluster = ec2_20_node(0.5, 1e9);
    // Eight CPU-heavy jobs that just fit an 850 s horizon: the cheap
    // (c1.medium) tier saturates while the expensive tier still has room.
    let jobs: Vec<LpJob> = (0..8)
        .map(|k| LpJob {
            id: JobId(k),
            data: Some(lips_cluster::DataId(k)),
            size_mb: 1024.0,
            tcp: 5000.0 / 1024.0,
            fixed_ecu: 0.0,
            avail: vec![(StoreId(k % 20), 1.0)],
        })
        .collect();
    let horizon = 850.0;
    let advice = capacity_advice(&cluster, jobs, horizon).expect("LP solves");

    println!("Capacity advice — 40,000 ECU-s of work in an {horizon:.0} s horizon");
    println!("on the 20-node 50% c1.medium testbed.\n");
    if advice.is_empty() {
        println!("No capacity constraint binds: the cluster is big enough.");
        return;
    }
    let mut t = Table::new(["machine", "instance", "marginal $ per node-hour"]);
    let mut records = Vec::new();
    for a in advice.iter().take(10) {
        t.row([
            format!("m{}", a.machine.0),
            a.instance.to_string(),
            format!("{:.4}", a.dollars_per_node_hour),
        ]);
        records.push(
            ExperimentRecord::new("advisor", format!("m{}", a.machine.0))
                .value("dollars_per_node_hour", a.dollars_per_node_hour),
        );
    }
    t.print();
    let best = &advice[0];
    println!(
        "\nRenting one more {} for an hour would save ${:.4} on this epoch —",
        best.instance, best.dollars_per_node_hour
    );
    println!("compare against its ~$0.20/h rental price before scaling out.");
    emit_json(&records);
}
