//! Figure 10: total job execution time for the Figure 9 runs (100-node
//! SWIM workload).
//!
//! Paper shape: LiPS is 40–100 % slower than the delay scheduler and
//! comparable to the Hadoop default.
//!
//! Flags: `--scale F`, `--epoch SECONDS`, `--json`, `--audit` (certify the LPs first).

use lips_bench::experiments::{fig9_run, PAPER_SCHEDULERS};
use lips_bench::report::{emit_json, ExperimentRecord};
use lips_bench::table::secs;
use lips_bench::{SchedulerKind, Table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg = |name: &str, default: f64| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    let scale = arg("--scale", 1.0);
    let epoch = arg("--epoch", 600.0);
    lips_bench::audit_gate::maybe_audit(epoch);

    println!("Figure 10 — job execution time for the Figure 9 runs\n");
    let m = fig9_run(epoch, 2013, scale);
    let delay_mean = m.get(SchedulerKind::Delay).mean_job_duration();

    let mut t = Table::new([
        "Scheduler",
        "Makespan",
        "Total job duration",
        "Mean job duration",
        "vs delay",
    ]);
    let mut records = Vec::new();
    for k in PAPER_SCHEDULERS {
        let r = m.get(k);
        t.row([
            k.label().to_string(),
            secs(r.makespan),
            secs(r.total_job_duration()),
            secs(r.mean_job_duration()),
            format!("{:.2}x", r.mean_job_duration() / delay_mean),
        ]);
        records.push(
            ExperimentRecord::new("fig10", k.label())
                .value("makespan", r.makespan)
                .value("total_job_duration", r.total_job_duration())
                .value("mean_job_duration", r.mean_job_duration()),
        );
    }
    t.print();
    println!("\nPaper reference: LiPS 1.4x-2.0x the delay scheduler's execution time,");
    println!("similar to the Hadoop default scheduler.");
    emit_json(&records);
}
