//! Run the whole reproduction suite: every table and figure, in paper
//! order, at a scale that completes in minutes on a laptop.
//!
//! Flags:
//! * `--full` — paper-scale everywhere (Fig 5 at 100 nodes, Fig 9 with
//!   the full 400-job trace); substantially slower.
//! * `--json` — also emit machine-readable records per experiment.
//! * `--audit` — lint and certify every LP family before each figure
//!   that solves one (forwarded to the figure binaries).

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let audit = args.iter().any(|a| a == "--audit");

    let exe = std::env::current_exe().expect("current exe");
    let bin_dir = exe.parent().expect("bin dir").to_path_buf();

    let audit_bins = ["fig6", "fig7", "fig8", "fig9", "fig10", "fig11"];
    let run = |name: &str, extra: &[&str]| {
        println!("\n================================================================");
        println!("== {name}");
        println!("================================================================");
        let mut cmd = Command::new(bin_dir.join(name));
        cmd.args(extra);
        if json {
            cmd.arg("--json");
        }
        if audit && audit_bins.contains(&name) {
            cmd.arg("--audit");
        }
        let status = cmd
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {name}: {e}"));
        assert!(status.success(), "{name} failed");
    };

    run("table1", &[]);
    run("fig1", &[]);
    run("table3", &[]);
    run("table4", &[]);
    if full {
        run("fig5", &[]);
    } else {
        run("fig5", &["--quick"]);
    }
    run("fig6", &[]);
    run("fig7", &[]);
    run("fig8", &[]);
    if full {
        run("fig9", &[]);
        run("fig10", &[]);
    } else {
        run("fig9", &["--scale", "0.25"]);
        run("fig10", &["--scale", "0.25"]);
    }
    run("fig11", &[]);
    run("ablations", &[]);
    run("ext_shuffle", &[]);
    run("advisor", &[]);

    println!("\nAll experiments completed.");
}
