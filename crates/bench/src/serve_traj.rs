//! The `BENCH_serve.json` trajectory: long continuous-arrival daemon runs
//! with incremental re-solves.
//!
//! Each run seeds a [`lips_serve::Daemon`] with a couple hundred jobs
//! arriving over a long virtual horizon (a Poisson synthetic stream and a
//! Google-trace-shaped stream) and drives epochs until the target number
//! of *LP decision epochs* has been reached or the stream drains. The
//! acceptance story this artifact documents:
//!
//! * every LP epoch ends KKT-certified (the daemon inherits the
//!   scheduler's degradation-ladder guarantee), and
//! * at least 80 % of LP epochs are *incremental* — the carried
//!   column-generation master absorbed the new arrivals and the carried
//!   basis re-optimized (dual rung first) instead of a cold rebuild.
//!
//! Queue-depth, completed-job latency, ladder-rung counts, and p50/p99
//! solve latency ride along in the summary, plus the full per-epoch serve
//! log for trend inspection.

use serde::Serialize;

use lips_cluster::ec2_mixed_cluster;
use lips_serve::{Daemon, ServeConfig, ServeEpochRecord, ServeSummary, TuneConfig};
use lips_workload::{
    assign_arrivals, google_records_to_jobs, google_synth, random_workload, ArrivalProcess,
    GoogleSynthCfg, JobSpec, RandomWorkloadCfg,
};

/// One continuous-arrival run.
#[derive(Debug, Clone, Serialize)]
pub struct ServeTrajectory {
    pub stream: String,
    pub nodes: usize,
    pub jobs: usize,
    pub seed: u64,
    pub horizon_s: f64,
    /// Daemon epochs advanced (idle epochs included).
    pub epochs_run: usize,
    /// LP decision epochs solved.
    pub lp_epochs: usize,
    pub all_certified: bool,
    pub incremental_share: f64,
    pub summary: ServeSummary,
    /// The full per-epoch serve log (queue depth, backlog, outcome,
    /// tuned epoch lengths).
    pub epochs: Vec<ServeEpochRecord>,
}

/// The whole artifact.
#[derive(Debug, Clone, Serialize)]
pub struct ServeReport {
    pub config: String,
    pub runs: Vec<ServeTrajectory>,
}

fn stream_jobs(stream: &str, jobs: usize, horizon_s: f64, seed: u64) -> Vec<JobSpec> {
    match stream {
        "synth" => {
            let mut specs = random_workload(
                &RandomWorkloadCfg {
                    jobs,
                    ..Default::default()
                },
                seed,
            );
            assign_arrivals(&mut specs, ArrivalProcess::Poisson, horizon_s, seed);
            specs
        }
        "google" => {
            let records = google_synth(
                &GoogleSynthCfg {
                    jobs,
                    window_s: horizon_s,
                    ..Default::default()
                },
                seed,
            );
            google_records_to_jobs(&records)
        }
        other => panic!("unknown serve stream {other:?}"),
    }
}

/// Drive one continuous-arrival run until `target_lp_epochs` LP decision
/// epochs have been solved (or the stream drains), then drain the rest.
pub fn run_serve_trajectory(
    stream: &str,
    nodes: usize,
    jobs: usize,
    target_lp_epochs: usize,
    seed: u64,
) -> ServeTrajectory {
    // Horizon sized so arrivals trickle: roughly one to two jobs per
    // (untuned) epoch keeps the incumbent master warm with fresh columns.
    // The Google-shaped stream arrives in prod/batch bursts with dead air
    // between them; a tighter window keeps bursts overlapping so the
    // carried master still holds live columns when the next burst lands.
    let horizon_s = match stream {
        "google" => target_lp_epochs as f64 * 250.0,
        _ => target_lp_epochs as f64 * 400.0,
    };
    let config = ServeConfig {
        tuning: Some(TuneConfig::default()),
        ..Default::default()
    };
    let mut daemon = Daemon::new(ec2_mixed_cluster(nodes, 0.5, 1e9, seed), config);
    for spec in stream_jobs(stream, jobs, horizon_s, seed) {
        daemon.enqueue(spec);
    }
    // Epoch budget: tuning can stretch epochs (fewer boundaries per
    // arrival), so leave generous room over the LP-epoch target.
    let budget = target_lp_epochs * 4;
    while daemon.scheduler().solves() < target_lp_epochs {
        if daemon.queue_len() == 0 && daemon.pending_arrivals() == 0 {
            break;
        }
        if daemon.epochs_run() >= budget {
            break;
        }
        if daemon.queue_len() == 0 {
            // Fast-forward the idle gap to the next arrival.
            daemon.run_until_drained(1);
            continue;
        }
        daemon.run_epoch();
    }
    daemon.run_until_drained(budget.saturating_sub(daemon.epochs_run()));

    let summary = daemon.summary();
    ServeTrajectory {
        stream: stream.to_string(),
        nodes,
        jobs,
        seed,
        horizon_s,
        epochs_run: daemon.epochs_run(),
        lp_epochs: summary.solver.epochs,
        all_certified: summary.solver.certified_share == 1.0,
        incremental_share: summary.solver.incremental_share,
        summary,
        epochs: daemon.epoch_log().to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_synth_trajectory_is_certified_and_incremental() {
        let t = run_serve_trajectory("synth", 12, 40, 30, 7);
        assert!(t.lp_epochs >= 20, "too few LP epochs: {}", t.lp_epochs);
        assert!(t.all_certified);
        assert!(
            t.incremental_share >= 0.8,
            "incremental share {}",
            t.incremental_share
        );
        assert_eq!(t.summary.queued, 0, "stream did not drain");
    }
}
