//! Minimal fixed-width ASCII table printer for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; panics if the width differs from the header row.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Render with column alignment and a header separator.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..ncols {
                if i > 0 {
                    out.push_str("  ");
                }
                let w = widths[i];
                let c = &cells[i];
                // Right-align numeric-looking cells, left-align text.
                let numeric = c
                    .chars()
                    .next()
                    .is_some_and(|ch| ch.is_ascii_digit() || ch == '-' || ch == '+' || ch == '.');
                if numeric {
                    let _ = write!(out, "{c:>w$}");
                } else {
                    let _ = write!(out, "{c:<w$}");
                }
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }

    /// Render and print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Format dollars with sensible precision for experiment output.
pub fn dollars(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Format a ratio as a percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Format seconds as `1234 s`.
pub fn secs(v: f64) -> String {
    format!("{v:.0} s")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "cost"]);
        t.row(["lips", "0.25"]);
        t.row(["hadoop-default", "1.00"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric cells right-aligned to the same column end.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic]
    fn row_width_checked() {
        Table::new(["a", "b"]).row(["only-one"]);
    }

    #[test]
    fn formatters() {
        assert_eq!(dollars(123.4), "123");
        assert_eq!(dollars(2.675), "2.67");
        assert_eq!(dollars(0.04321), "0.0432");
        assert_eq!(pct(0.625), "62.5%");
        assert_eq!(secs(400.6), "401 s");
    }
}
