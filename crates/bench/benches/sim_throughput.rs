//! Simulator throughput: full end-to-end runs of the Table IV suite and a
//! scaled SWIM trace, measured in wall-time per complete simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lips_cluster::{ec2_100_node, ec2_20_node};
use lips_core::{DelayScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips_sim::{Placement, Scheduler, Simulation};
use lips_workload::{bind_workload, swim_trace, table_iv_suite, PlacementPolicy, SwimCfg};

fn run_suite(kind: &str) -> f64 {
    let mut cluster = ec2_20_node(0.5, 1e9);
    let bound = bind_workload(
        &mut cluster,
        table_iv_suite(),
        PlacementPolicy::RoundRobin,
        1,
    );
    let placement = Placement::spread_blocks(&cluster, 1);
    let mut sched: Box<dyn Scheduler> = match kind {
        "lips" => Box::new(LipsScheduler::new(SchedulerConfig::small_cluster(600.0))),
        "default" => Box::new(HadoopDefaultScheduler::new()),
        _ => Box::new(DelayScheduler::default()),
    };
    let r = Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .run(sched.as_mut())
        .unwrap();
    r.metrics.total_dollars()
}

fn bench_suite(c: &mut Criterion) {
    let mut g = c.benchmark_group("table_iv_suite_20_nodes");
    g.sample_size(10);
    for kind in ["lips", "default", "delay"] {
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, kind| {
            b.iter(|| black_box(run_suite(kind)));
        });
    }
    g.finish();
}

fn bench_swim(c: &mut Criterion) {
    let mut g = c.benchmark_group("swim_100_jobs_100_nodes");
    g.sample_size(10);
    let cfg = SwimCfg {
        jobs: 100,
        ..Default::default()
    };
    for kind in ["lips", "default"] {
        g.bench_with_input(BenchmarkId::from_parameter(kind), &kind, |b, kind| {
            b.iter(|| {
                let mut cluster = ec2_100_node(1e9, 1);
                let bound = bind_workload(
                    &mut cluster,
                    swim_trace(&cfg, 1),
                    PlacementPolicy::RoundRobin,
                    1,
                );
                let placement = Placement::spread_blocks(&cluster, 1);
                let mut sched: Box<dyn Scheduler> = match *kind {
                    "lips" => Box::new(LipsScheduler::new(SchedulerConfig::large_cluster(600.0))),
                    _ => Box::new(HadoopDefaultScheduler::new()),
                };
                let r = Simulation::new(&cluster, &bound)
                    .with_placement(placement)
                    .run(sched.as_mut())
                    .unwrap();
                black_box(r.events)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_suite, bench_swim);
criterion_main!(benches);
