//! LP solver performance — the §VI-A overhead claim.
//!
//! The paper reports GLPK solving "problems involving thousands of tasks"
//! in tens of milliseconds. This bench measures our revised simplex on
//! Fig-4-shaped instances of growing size, plus raw solver benchmarks on
//! dense random LPs and a refactorization-interval ablation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lips_bench::lp_epoch::{run_epochs, run_epochs_faulted, EpochMode, FaultScript};
use lips_cluster::{ec2_mixed_cluster, DataId, StoreId};
use lips_core::lp_build::{EpochSolver, LpInstance, LpJob, PruneConfig};
use lips_lp::revised::{RevisedOptions, RevisedSimplex};
use lips_lp::{Cmp, Model, Sense};
use lips_workload::JobId;

/// Build a Fig-4-style epoch instance: `jobs` jobs on a mixed cluster,
/// each job's data on one store.
fn epoch_instance(cluster: &lips_cluster::Cluster, jobs: usize) -> LpInstance<'_> {
    let lp_jobs: Vec<LpJob> = (0..jobs)
        .map(|k| LpJob {
            id: JobId(k),
            data: Some(DataId(k)),
            size_mb: 2048.0,
            tcp: 1.0,
            fixed_ecu: 0.0,
            avail: vec![(StoreId(k % cluster.num_stores()), 1.0)],
        })
        .collect();
    LpInstance {
        cluster,
        jobs: lp_jobs,
        duration: 600.0,
        fake_cost: Some(1.0),
        allow_moves: true,
        enforce_transfer_time: true,
        store_free_mb: vec![],
        pool_floors: vec![],
        prune: PruneConfig {
            max_machines_per_job: Some(16),
            max_new_stores_per_job: Some(6),
        },
    }
}

fn bench_epoch_lp(c: &mut Criterion) {
    let mut g = c.benchmark_group("epoch_lp");
    g.sample_size(10);
    for (jobs, machines) in [(8usize, 20usize), (16, 50), (32, 100)] {
        let cluster = ec2_mixed_cluster(machines, 0.4, 1e9, 1);
        let inst = epoch_instance(&cluster, jobs);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("J{jobs}_M{machines}")),
            &inst,
            |b, inst| {
                b.iter(|| {
                    let report = EpochSolver::new(inst).certify().run().unwrap();
                    black_box(report.schedule.predicted_dollars)
                });
            },
        );
    }
    g.finish();
}

fn bench_epoch_sequence(c: &mut Criterion) {
    // The solve-path story end to end: a whole chained epoch sequence per
    // iteration — cold vs warm vs column-generated — on a mid-size cluster
    // (the full 100-node, 20-epoch acceptance numbers come from the
    // `lp_bench` binary).
    let cluster = ec2_mixed_cluster(50, 0.4, 1e9, 1);
    let mut g = c.benchmark_group("epoch_sequence");
    g.sample_size(10);
    for mode in [EpochMode::Cold, EpochMode::Warm, EpochMode::ColGen] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}").to_lowercase()),
            &mode,
            |b, &mode| {
                b.iter(|| black_box(run_epochs(&cluster, 16, 2, 3, 8, mode, 1).total_iterations));
            },
        );
    }
    g.finish();
}

/// Random sparse LP of n vars, m constraints (feasible by construction).
fn random_lp(n: usize, m: usize, seed: u64) -> Model {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
    let mut model = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..n)
        .map(|i| model.add_var(format!("x{i}"), 0.0, 1.0, rng.gen_range(-1.0..1.0)))
        .collect();
    for _ in 0..m {
        let mut terms = Vec::new();
        for &v in &vars {
            if rng.gen_bool(0.3) {
                terms.push((v, rng.gen_range(0.1..1.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let cap = terms.len() as f64 * 0.5;
        model.add_constraint(terms, Cmp::Le, cap);
    }
    model
}

fn bench_raw_simplex(c: &mut Criterion) {
    let mut g = c.benchmark_group("revised_simplex");
    g.sample_size(10);
    for (n, m) in [(100usize, 50usize), (400, 200), (1000, 400)] {
        let model = random_lp(n, m, 7);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_m{m}")),
            &model,
            |b, model| b.iter(|| black_box(model.solve().unwrap().objective())),
        );
    }
    g.finish();
}

fn bench_refactor_interval(c: &mut Criterion) {
    // Ablation: eta-file length vs refactorization frequency.
    let model = random_lp(400, 200, 11);
    let mut g = c.benchmark_group("refactor_interval");
    g.sample_size(10);
    for interval in [16usize, 96, 512] {
        let solver = RevisedSimplex::with_options(RevisedOptions {
            refactor_interval: interval,
            ..Default::default()
        });
        g.bench_with_input(BenchmarkId::from_parameter(interval), &solver, |b, s| {
            b.iter(|| black_box(s.solve(&model).unwrap().objective()));
        });
    }
    g.finish();
}

/// The churn fast path head to head: the dual-first ladder
/// (presolve + dual re-solve from the carried basis) vs the primal
/// warm-repair ladder on the scripted fault sequence — revocations, a
/// store loss, a repricing, and a rejoin mid-run. This is the
/// microbenchmark behind `lp_bench --faults --mode dual`.
fn bench_churn_resolve(c: &mut Criterion) {
    let cluster = ec2_mixed_cluster(50, 0.4, 1e9, 1);
    let script = FaultScript::acceptance(&cluster);
    let mut g = c.benchmark_group("churn_resolve");
    g.sample_size(10);
    for (name, dual) in [("warm_resolve", false), ("dual_resolve", true)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &dual, |b, &dual| {
            b.iter(|| {
                black_box(
                    run_epochs_faulted(&cluster, 16, 2, 3, 8, &script, 1, dual).total_iterations,
                )
            });
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_epoch_lp,
    bench_epoch_sequence,
    bench_raw_simplex,
    bench_refactor_interval,
    bench_churn_resolve
);
criterion_main!(benches);
