//! Per-decision scheduler overhead: one full `decide()` call (LP build +
//! solve + rounding for LiPS; queue scan for the baselines) on a realistic
//! cluster state. The paper's claim: LiPS's per-epoch overhead is tens of
//! milliseconds, negligible against multi-minute job durations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use lips_cluster::{ec2_mixed_cluster, Cluster};
use lips_core::{DelayScheduler, HadoopDefaultScheduler, LipsScheduler, SchedulerConfig};
use lips_sim::{MachineState, PendingJob, Placement, Scheduler, SchedulerContext};
use lips_workload::{bind_workload, BoundWorkload, JobKind, JobSpec, PlacementPolicy};

struct Fixture {
    cluster: Cluster,
    #[allow(dead_code)]
    bound: BoundWorkload,
    placement: Placement,
    queue: Vec<PendingJob>,
    machines: Vec<MachineState>,
}

fn fixture(machines: usize, jobs: usize) -> Fixture {
    let mut cluster = ec2_mixed_cluster(machines, 0.4, 1e9, 1);
    let specs: Vec<JobSpec> = (0..jobs)
        .map(|i| {
            let kind = [JobKind::Grep, JobKind::Stress2, JobKind::WordCount][i % 3];
            JobSpec::new(i, format!("j{i}"), kind, 2048.0, 32)
        })
        .collect();
    let bound = bind_workload(&mut cluster, specs, PlacementPolicy::RoundRobin, 1);
    let placement = Placement::spread_blocks(&cluster, 1);
    let queue: Vec<PendingJob> = bound.jobs.iter().map(PendingJob::from_spec).collect();
    let machine_states: Vec<MachineState> =
        cluster.machines.iter().map(MachineState::new).collect();
    Fixture {
        cluster,
        bound,
        placement,
        queue,
        machines: machine_states,
    }
}

fn bench_decide(c: &mut Criterion) {
    let mut g = c.benchmark_group("decide");
    g.sample_size(10);
    for (m, j) in [(20usize, 9usize), (100, 32)] {
        let fx = fixture(m, j);
        let label = format!("M{m}_J{j}");
        g.bench_with_input(BenchmarkId::new("lips", &label), &fx, |b, fx| {
            b.iter(|| {
                // Fresh scheduler each iteration: `decide` mutates its read
                // ledger, and a stale ledger would change the work.
                let mut s = LipsScheduler::new(SchedulerConfig::large_cluster(600.0));
                let ctx = SchedulerContext {
                    now: 0.0,
                    cluster: &fx.cluster,
                    placement: &fx.placement,
                    queue: &fx.queue,
                    machines: &fx.machines,
                    reads_used: None,
                };
                black_box(s.decide(&ctx).len())
            });
        });
        g.bench_with_input(BenchmarkId::new("hadoop_default", &label), &fx, |b, fx| {
            b.iter(|| {
                let mut s = HadoopDefaultScheduler::new();
                let ctx = SchedulerContext {
                    now: 0.0,
                    cluster: &fx.cluster,
                    placement: &fx.placement,
                    queue: &fx.queue,
                    machines: &fx.machines,
                    reads_used: None,
                };
                black_box(s.decide(&ctx).len())
            });
        });
        g.bench_with_input(BenchmarkId::new("delay", &label), &fx, |b, fx| {
            b.iter(|| {
                let mut s = DelayScheduler::default();
                let ctx = SchedulerContext {
                    now: 0.0,
                    cluster: &fx.cluster,
                    placement: &fx.placement,
                    queue: &fx.queue,
                    machines: &fx.machines,
                    reads_used: None,
                };
                black_box(s.decide(&ctx).len())
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_decide);
criterion_main!(benches);
