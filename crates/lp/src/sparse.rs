//! Compressed-sparse-column matrix used to store the constraint matrix.
//!
//! The revised simplex only ever needs two access patterns: "iterate the
//! nonzeros of column j" (pricing denominators, FTRAN right-hand sides) and
//! "dot a dense row-vector with column j" (reduced costs). CSC serves both.

/// Immutable CSC matrix.
#[derive(Debug, Clone)]
pub struct CscMatrix {
    nrows: usize,
    ncols: usize,
    /// `col_ptr[j]..col_ptr[j+1]` indexes the nonzeros of column `j`.
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CscMatrix {
    /// Build from unsorted triplets; duplicate `(row, col)` entries are
    /// summed, exact zeros after summation are dropped.
    pub fn from_triplets(
        nrows: usize,
        ncols: usize,
        triplets: impl IntoIterator<Item = (usize, usize, f64)>,
    ) -> Self {
        // Bucket by column, then sort each bucket by row and merge dups.
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ncols];
        for (r, c, v) in triplets {
            assert!(
                r < nrows && c < ncols,
                "triplet ({r},{c}) out of {nrows}x{ncols}"
            );
            cols[c].push((r, v));
        }
        let mut col_ptr = Vec::with_capacity(ncols + 1);
        let mut row_idx = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for bucket in &mut cols {
            bucket.sort_unstable_by_key(|&(r, _)| r);
            let mut i = 0;
            while i < bucket.len() {
                let r = bucket[i].0;
                let mut v = 0.0;
                while i < bucket.len() && bucket[i].0 == r {
                    v += bucket[i].1;
                    i += 1;
                }
                if v != 0.0 {
                    row_idx.push(r);
                    values.push(v);
                }
            }
            col_ptr.push(row_idx.len());
        }
        CscMatrix {
            nrows,
            ncols,
            col_ptr,
            row_idx,
            values,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Nonzeros of column `j` as `(row, value)` pairs.
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Dense dot product `row_vec · column j`.
    pub fn dot_col(&self, row_vec: &[f64], j: usize) -> f64 {
        debug_assert_eq!(row_vec.len(), self.nrows);
        self.col(j).map(|(r, v)| row_vec[r] * v).sum()
    }

    /// Scatter column `j` into a dense vector: `out[r] += scale * v`.
    pub fn scatter_col(&self, j: usize, scale: f64, out: &mut [f64]) {
        debug_assert_eq!(out.len(), self.nrows);
        for (r, v) in self.col(j) {
            out[r] += scale * v;
        }
    }

    /// Materialize column `j` as a dense vector (allocates).
    pub fn dense_col(&self, j: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.nrows];
        self.scatter_col(j, 1.0, &mut out);
        out
    }

    /// Dense `A · x` (allocates the result).
    pub fn mul_dense(&self, x: &[f64]) -> Vec<f64> {
        debug_assert_eq!(x.len(), self.ncols);
        let mut out = vec![0.0; self.nrows];
        for (j, &xj) in x.iter().enumerate() {
            if xj != 0.0 {
                self.scatter_col(j, xj, &mut out);
            }
        }
        out
    }
}

/// Compressed-sparse-row mirror of a [`CscMatrix`].
///
/// Devex pricing needs the row-oriented access pattern "iterate the nonzeros
/// of row i" to turn a BTRAN'd pivot row `ρ = B⁻ᵀe_r` into the dense pivot
/// row `α_r = ρᵀA` in time proportional to the touched nonzeros. Built once
/// per solve; the matrix itself never changes during a solve.
#[derive(Debug, Clone)]
pub struct CsrMatrix {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Transpose-copy a CSC matrix into row-major form.
    pub fn from_csc(a: &CscMatrix) -> Self {
        let (nrows, ncols, nnz) = (a.nrows(), a.ncols(), a.nnz());
        let mut row_ptr = vec![0usize; nrows + 1];
        for &r in &a.row_idx {
            row_ptr[r + 1] += 1;
        }
        for i in 0..nrows {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0usize; nnz];
        let mut values = vec![0.0f64; nnz];
        // Cursor per row while scattering column-by-column (keeps each row's
        // entries sorted by column, since CSC columns are visited in order).
        let mut cursor = row_ptr.clone();
        for j in 0..ncols {
            for (r, v) in a.col(j) {
                let at = cursor[r];
                col_idx[at] = j;
                values[at] = v;
                cursor[r] = at + 1;
            }
        }
        CsrMatrix {
            nrows,
            ncols,
            row_ptr,
            col_idx,
            values,
        }
    }

    pub fn nrows(&self) -> usize {
        self.nrows
    }

    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Nonzeros of row `i` as `(col, value)` pairs, sorted by column.
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[i]..self.row_ptr[i + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CscMatrix {
        // [ 1 0 2 ]
        // [ 0 3 0 ]
        CscMatrix::from_triplets(2, 3, [(0, 0, 1.0), (1, 1, 3.0), (0, 2, 2.0)])
    }

    #[test]
    fn shape_and_nnz() {
        let m = sample();
        assert_eq!((m.nrows(), m.ncols(), m.nnz()), (2, 3, 3));
    }

    #[test]
    fn column_iteration() {
        let m = sample();
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 1.0)]);
        assert_eq!(m.col(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
        assert_eq!(m.col(2).collect::<Vec<_>>(), vec![(0, 2.0)]);
    }

    #[test]
    fn duplicates_are_summed_zeros_dropped() {
        let m =
            CscMatrix::from_triplets(2, 2, [(0, 0, 1.0), (0, 0, 2.0), (1, 1, 5.0), (1, 1, -5.0)]);
        assert_eq!(m.col(0).collect::<Vec<_>>(), vec![(0, 3.0)]);
        assert_eq!(m.col(1).count(), 0);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn dot_and_scatter() {
        let m = sample();
        assert_eq!(m.dot_col(&[2.0, 5.0], 1), 15.0);
        let mut out = vec![0.0; 2];
        m.scatter_col(2, 0.5, &mut out);
        assert_eq!(out, vec![1.0, 0.0]);
    }

    #[test]
    fn mul_dense_matches_by_hand() {
        let m = sample();
        // A * [1, 2, 3] = [1*1 + 2*3, 3*2] = [7, 6]
        assert_eq!(m.mul_dense(&[1.0, 2.0, 3.0]), vec![7.0, 6.0]);
    }

    #[test]
    fn dense_col_materializes() {
        let m = sample();
        assert_eq!(m.dense_col(2), vec![2.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn out_of_range_triplet_panics() {
        CscMatrix::from_triplets(1, 1, [(1, 0, 1.0)]);
    }

    #[test]
    fn csr_mirror_matches_csc() {
        let m = sample();
        let csr = CsrMatrix::from_csc(&m);
        assert_eq!((csr.nrows(), csr.ncols()), (2, 3));
        assert_eq!(csr.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (2, 2.0)]);
        assert_eq!(csr.row(1).collect::<Vec<_>>(), vec![(1, 3.0)]);
    }
}
