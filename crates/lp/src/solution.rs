//! Solver output: status, primal values, objective, and (when available)
//! dual values, solve statistics, and a reusable warm-start basis.

use crate::basis::{WarmOutcome, WarmStart};
use crate::model::VarId;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// Work counters for one solve, for benchmarking and tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Total simplex pivots (both phases).
    pub iterations: usize,
    /// Pivots spent in phase 1 (zero when a warm basis was already
    /// feasible).
    pub phase1_iterations: usize,
    /// Basis refactorizations performed.
    pub refactors: usize,
    /// Nonzeros produced by the entering-column FTRANs, summed over all
    /// pivots — the honest measure of how much linear algebra the solve
    /// did, independent of wall clock.
    pub ftran_nnz: u64,
    /// How the solve started (cold / warm / warm-after-repair / dual).
    pub warm: WarmOutcome,
    /// Wall-clock time of the simplex itself (basis seeding through final
    /// pivot), excluding model construction and any later certification.
    pub solve_ms: f64,
    /// Dual-simplex pivots performed (0 for primal solves). Dual pivots
    /// are also counted in `iterations`.
    pub dual_pivots: usize,
    /// Nonbasic bound flips performed by the dual solver — both the
    /// dual-feasibility-restoring flips at initialization and the
    /// long-step flips inside the dual ratio test. Flips are not pivots
    /// and are not counted in `iterations`.
    pub bound_flips: usize,
}

/// Result of a successful solve.
///
/// Infeasibility, unboundedness, and iteration exhaustion are reported as
/// [`crate::LpError`] variants instead of statuses, so a `Solution` always
/// carries a usable optimal point.
#[derive(Debug, Clone)]
pub struct Solution {
    status: Status,
    objective: f64,
    values: Vec<f64>,
    duals: Vec<f64>,
    iterations: usize,
    stats: SolveStats,
    warm_start: Option<WarmStart>,
}

impl Solution {
    pub(crate) fn new(
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
        iterations: usize,
    ) -> Self {
        Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            iterations,
            stats: SolveStats {
                iterations,
                ..SolveStats::default()
            },
            warm_start: None,
        }
    }

    pub(crate) fn with_stats(mut self, stats: SolveStats) -> Self {
        self.stats = stats;
        self
    }

    pub(crate) fn with_warm_start(mut self, warm: WarmStart) -> Self {
        self.warm_start = Some(warm);
        self
    }

    /// Assemble a solution from raw parts.
    ///
    /// Exists for verification tooling (`lips-audit`) and tests that need
    /// to feed hand-built — possibly deliberately wrong — solutions to an
    /// independent checker; solvers use the crate-private constructor.
    pub fn from_parts(
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
        iterations: usize,
    ) -> Self {
        Solution::new(objective, values, duals, iterations)
    }

    /// Termination status (always [`Status::Optimal`] for a returned value).
    pub fn status(&self) -> Status {
        self.status
    }

    /// Optimal objective value in the *original* model sense (a maximization
    /// model reports the maximum, not the negated internal minimum).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Primal values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Primal value of one variable.
    pub fn value_of(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Dual values (simplex multipliers `y`), one per constraint, in the
    /// internal minimization sense. Diagnostic only.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex pivots performed (both phases).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Work counters for this solve.
    pub fn stats(&self) -> &SolveStats {
        &self.stats
    }

    /// The optimal basis, keyed by names, for seeding the next solve of the
    /// same or a perturbed model. `None` for solutions not produced by the
    /// revised simplex (the dense oracle, hand-built solutions).
    pub fn warm_start(&self) -> Option<&WarmStart> {
        self.warm_start.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisStatus;

    #[test]
    fn accessors_roundtrip() {
        let s = Solution::new(1.5, vec![0.5, 1.0], vec![2.0], 7);
        assert_eq!(s.status(), Status::Optimal);
        assert_eq!(s.objective(), 1.5);
        assert_eq!(s.values(), &[0.5, 1.0]);
        assert_eq!(s.value_of(VarId(1)), 1.0);
        assert_eq!(s.duals(), &[2.0]);
        assert_eq!(s.iterations(), 7);
        assert_eq!(s.stats().iterations, 7);
        assert_eq!(s.stats().warm, WarmOutcome::Cold);
        assert!(s.warm_start().is_none());
    }

    #[test]
    fn stats_and_warm_start_attach() {
        let mut ws = WarmStart::new();
        ws.set_var("x", BasisStatus::Basic);
        let s = Solution::new(0.0, vec![], vec![], 3)
            .with_stats(SolveStats {
                iterations: 3,
                phase1_iterations: 1,
                refactors: 2,
                ftran_nnz: 42,
                warm: WarmOutcome::Warm,
                ..SolveStats::default()
            })
            .with_warm_start(ws);
        assert_eq!(s.stats().phase1_iterations, 1);
        assert_eq!(s.stats().ftran_nnz, 42);
        assert_eq!(s.stats().warm, WarmOutcome::Warm);
        assert_eq!(s.warm_start().unwrap().var("x"), Some(BasisStatus::Basic));
    }
}
