//! Solver output: status, primal values, objective, and (when available)
//! dual values.

use crate::model::VarId;

/// Termination status of a solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// Result of a successful solve.
///
/// Infeasibility, unboundedness, and iteration exhaustion are reported as
/// [`crate::LpError`] variants instead of statuses, so a `Solution` always
/// carries a usable optimal point.
#[derive(Debug, Clone)]
pub struct Solution {
    status: Status,
    objective: f64,
    values: Vec<f64>,
    duals: Vec<f64>,
    iterations: usize,
}

impl Solution {
    pub(crate) fn new(
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
        iterations: usize,
    ) -> Self {
        Solution {
            status: Status::Optimal,
            objective,
            values,
            duals,
            iterations,
        }
    }

    /// Assemble a solution from raw parts.
    ///
    /// Exists for verification tooling (`lips-audit`) and tests that need
    /// to feed hand-built — possibly deliberately wrong — solutions to an
    /// independent checker; solvers use the crate-private constructor.
    pub fn from_parts(
        objective: f64,
        values: Vec<f64>,
        duals: Vec<f64>,
        iterations: usize,
    ) -> Self {
        Solution::new(objective, values, duals, iterations)
    }

    /// Termination status (always [`Status::Optimal`] for a returned value).
    pub fn status(&self) -> Status {
        self.status
    }

    /// Optimal objective value in the *original* model sense (a maximization
    /// model reports the maximum, not the negated internal minimum).
    pub fn objective(&self) -> f64 {
        self.objective
    }

    /// Primal values, indexed by [`VarId::index`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Primal value of one variable.
    pub fn value_of(&self, v: VarId) -> f64 {
        self.values[v.index()]
    }

    /// Dual values (simplex multipliers `y`), one per constraint, in the
    /// internal minimization sense. Diagnostic only.
    pub fn duals(&self) -> &[f64] {
        &self.duals
    }

    /// Number of simplex pivots performed (both phases).
    pub fn iterations(&self) -> usize {
        self.iterations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_roundtrip() {
        let s = Solution::new(1.5, vec![0.5, 1.0], vec![2.0], 7);
        assert_eq!(s.status(), Status::Optimal);
        assert_eq!(s.objective(), 1.5);
        assert_eq!(s.values(), &[0.5, 1.0]);
        assert_eq!(s.value_of(VarId(1)), 1.0);
        assert_eq!(s.duals(), &[2.0]);
        assert_eq!(s.iterations(), 7);
    }
}
