//! Lowering of a [`Model`] into computational standard form
//! `min c'x  s.t.  A x = b,  l ≤ x ≤ u`.
//!
//! One slack column is appended per row; the slack's bounds encode the row
//! sense (`≤` → `[0, ∞)`, `≥` → `(-∞, 0]`, `=` → `[0, 0]`). A maximization
//! objective is negated here and un-negated when the solution is assembled,
//! so the solvers only ever minimize.

use crate::model::{Cmp, Model, Sense};
use crate::sparse::CscMatrix;

/// A model lowered to `min c'x, Ax = b, l ≤ x ≤ u`.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Constraint matrix including slack columns (m × (n_structural + m)).
    pub a: CscMatrix,
    /// Right-hand sides (length m).
    pub b: Vec<f64>,
    /// Objective over all columns; slacks have zero cost (length n).
    pub c: Vec<f64>,
    /// Lower bounds (length n), possibly `-∞`.
    pub lb: Vec<f64>,
    /// Upper bounds (length n), possibly `+∞`.
    pub ub: Vec<f64>,
    /// Number of structural (original) variables; columns
    /// `n_structural..n_structural+m` are slacks for rows `0..m`.
    pub n_structural: usize,
    /// `true` if the original model maximized (objective already negated).
    pub negated: bool,
}

impl StandardForm {
    /// Lower `model` into standard form. The model must already have passed
    /// [`Model::validate`].
    pub fn from_model(model: &Model) -> Self {
        let n = model.vars.len();
        let m = model.cons.len();
        let negated = model.sense == Sense::Maximize;
        let sign = if negated { -1.0 } else { 1.0 };

        let mut c: Vec<f64> = model.vars.iter().map(|v| sign * v.obj).collect();
        let mut lb: Vec<f64> = model.vars.iter().map(|v| v.lb).collect();
        let mut ub: Vec<f64> = model.vars.iter().map(|v| v.ub).collect();
        c.resize(n + m, 0.0);

        let mut triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut b = Vec::with_capacity(m);
        for (i, con) in model.cons.iter().enumerate() {
            for &(v, coef) in &con.terms {
                triplets.push((i, v, coef));
            }
            // Slack column for row i.
            triplets.push((i, n + i, 1.0));
            let (slo, shi) = match con.cmp {
                Cmp::Le => (0.0, f64::INFINITY),
                Cmp::Ge => (f64::NEG_INFINITY, 0.0),
                Cmp::Eq => (0.0, 0.0),
            };
            lb.push(slo);
            ub.push(shi);
            b.push(con.rhs);
        }
        let a = CscMatrix::from_triplets(m, n + m, triplets);
        StandardForm {
            a,
            b,
            c,
            lb,
            ub,
            n_structural: n,
            negated,
        }
    }

    /// Total number of columns (structural + slack).
    pub fn ncols(&self) -> usize {
        self.a.ncols()
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.a.nrows()
    }

    /// Recover the objective value in the original sense from the internal
    /// minimization objective.
    pub fn external_objective(&self, internal: f64) -> f64 {
        if self.negated {
            -internal
        } else {
            internal
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    #[test]
    fn slack_bounds_encode_row_sense() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 0.7);
        let sf = StandardForm::from_model(&m);
        assert_eq!(sf.nrows(), 3);
        assert_eq!(sf.ncols(), 4); // x + 3 slacks
        assert_eq!(sf.n_structural, 1);
        assert_eq!((sf.lb[1], sf.ub[1]), (0.0, f64::INFINITY)); // Le
        assert_eq!((sf.lb[2], sf.ub[2]), (f64::NEG_INFINITY, 0.0)); // Ge
        assert_eq!((sf.lb[3], sf.ub[3]), (0.0, 0.0)); // Eq
        assert_eq!(sf.b, vec![5.0, 0.5, 0.7]);
    }

    #[test]
    fn maximize_negates_costs() {
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, 1.0, 3.0);
        let sf = StandardForm::from_model(&m);
        assert!(sf.negated);
        assert_eq!(sf.c[0], -3.0);
        assert_eq!(sf.external_objective(-3.0), 3.0);
    }

    #[test]
    fn slack_columns_are_unit() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        let y = m.add_var("y", 0.0, 1.0, 0.0);
        m.add_constraint([(x, 2.0), (y, -1.0)], Cmp::Le, 1.0);
        let sf = StandardForm::from_model(&m);
        let slack_col: Vec<_> = sf.a.col(2).collect();
        assert_eq!(slack_col, vec![(0, 1.0)]);
        assert_eq!(sf.c[2], 0.0);
    }

    #[test]
    fn equality_point_satisfies_ax_eq_b() {
        // x + y = 2, with slack fixed at 0: check A[x,y,s] = b at x=1.5,y=0.5.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 2.0, 1.0);
        let y = m.add_var("y", 0.0, 2.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 2.0);
        let sf = StandardForm::from_model(&m);
        let ax = sf.a.mul_dense(&[1.5, 0.5, 0.0]);
        assert!((ax[0] - sf.b[0]).abs() < 1e-12);
    }
}
