//! Error type shared by every solver in the crate.

use std::fmt;

/// Everything that can go wrong while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The constraint system admits no point satisfying all constraints and
    /// variable bounds (phase-1 objective stayed positive).
    Infeasible,
    /// The objective can be improved without bound along a feasible ray.
    Unbounded,
    /// The solver exceeded its iteration budget; usually indicates cycling
    /// on a severely degenerate model even under Bland's rule, or a model far
    /// larger than the configured limit allows.
    IterationLimit { iterations: usize },
    /// A variable was declared with `lb > ub`.
    InvertedBounds { var: usize, lb: f64, ub: f64 },
    /// A coefficient, bound, or right-hand side was NaN or infinite where a
    /// finite value is required.
    NonFiniteInput { what: &'static str },
    /// A constraint referenced a variable id not belonging to this model.
    UnknownVariable { var: usize },
    /// The basis matrix became numerically singular and refactorization did
    /// not recover it.
    SingularBasis,
    /// A warm basis handed to the dual simplex could not be made dual
    /// feasible (wrong-signed reduced costs on columns that cannot bound
    /// flip). Not a property of the model — the caller should fall back to
    /// the primal solver.
    NotDualFeasible,
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::Infeasible => write!(f, "linear program is infeasible"),
            LpError::Unbounded => write!(f, "linear program is unbounded"),
            LpError::IterationLimit { iterations } => {
                write!(
                    f,
                    "simplex iteration limit reached after {iterations} iterations"
                )
            }
            LpError::InvertedBounds { var, lb, ub } => {
                write!(f, "variable {var} has inverted bounds [{lb}, {ub}]")
            }
            LpError::NonFiniteInput { what } => {
                write!(f, "non-finite input where finite required: {what}")
            }
            LpError::UnknownVariable { var } => {
                write!(f, "constraint references unknown variable id {var}")
            }
            LpError::SingularBasis => write!(f, "basis matrix is numerically singular"),
            LpError::NotDualFeasible => {
                write!(f, "warm basis is not dual feasible even after bound flips")
            }
        }
    }
}

impl std::error::Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_distinct() {
        let errs = [
            LpError::Infeasible,
            LpError::Unbounded,
            LpError::IterationLimit { iterations: 7 },
            LpError::InvertedBounds {
                var: 1,
                lb: 2.0,
                ub: 1.0,
            },
            LpError::NonFiniteInput { what: "rhs" },
            LpError::UnknownVariable { var: 3 },
            LpError::SingularBasis,
            LpError::NotDualFeasible,
        ];
        let msgs: Vec<String> = errs.iter().map(std::string::ToString::to_string).collect();
        for (i, a) in msgs.iter().enumerate() {
            for b in msgs.iter().skip(i + 1) {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn iteration_limit_reports_count() {
        let e = LpError::IterationLimit { iterations: 42 };
        assert!(e.to_string().contains("42"));
    }
}
