//! Bounded-variable dual simplex for warm re-solves after churn.
//!
//! The epoch loop's perturbations — a revoked machine, a lost store, a
//! repriced transfer — change bounds and right-hand sides but leave the
//! carried basis *dual feasible*: the reduced costs keep their signs, only
//! some basic values land outside their bounds. The primal solver treats
//! that as damage (phase-1 repair artificials); the dual simplex treats it
//! as a starting point and walks back to primal feasibility directly,
//! typically in a handful of pivots.
//!
//! Design notes:
//!
//! * **Same machinery, different outer loop.** The solver reuses the primal
//!   [`Worker`](crate::revised): the Markowitz sparse LU, the eta file,
//!   FTRAN/BTRAN, and the name-keyed warm-start resolution. Only the pivot
//!   selection differs: the *row* (most-violated basic) is chosen first and
//!   the *column* comes out of a dual ratio test over the pivot row, which
//!   is accumulated sparsely from the CSR mirror over the support of
//!   `ρ = B⁻ᵀe_r` — the same trick devex pricing uses.
//! * **Bound flips, long-step ratio test.** All structural variables of the
//!   scheduling LPs are boxed in `[0, 1]`, which makes the generalized
//!   (long-step) dual ratio test effective: when the minimum-ratio column is
//!   boxed and the dual objective's slope survives pushing it to its other
//!   bound, the column flips instead of entering and the ratio test
//!   continues to the next breakpoint. One pivot can absorb many flips.
//! * **Harris two-pass tolerances.** Pass 1 finds the minimum ratio with
//!   reduced costs relaxed by a tolerance; pass 2 picks the largest pivot
//!   magnitude among columns within the relaxed minimum. Degenerate runs
//!   fall back to Bland's rule (exact ratios, smallest index) exactly like
//!   the primal solver.
//! * **Cost-shifting dual phase-1: shift, walk, finish.** A wrong-signed
//!   reduced cost (a repriced slack, or a column orphaned when a
//!   revocation forced slack completions into the basis) is temporarily
//!   *shifted* so the reduced cost is exactly zero — dual feasible, and
//!   side-effect free, because a cost shift never perturbs the primal
//!   feasible region (the unbounded-dual ⇒ infeasible-primal verdict
//!   stays sound, unlike artificial-bound schemes). The walk then works
//!   off the genuine primal damage with shifted columns held in a
//!   second-tier reserve: they enter only when a row has no unshifted way
//!   out, and a flip-thrash guard declines the walk (to the caller's
//!   primal ladder rung, via [`LpError::NotDualFeasible`]) when the
//!   shifted set starts churning instead of converging. Afterwards the
//!   shifts come off and a warm primal phase-2 *finisher* under the true
//!   costs absorbs any remaining cost drift — a no-op when the walk's
//!   duals already sign-corrected everything. Primal bound violations are
//!   never "repaired" here — they are the work the dual pivots do.

#![allow(clippy::needless_range_loop)] // simplex kernels read clearer with indices

use crate::basis::{BasisStatus, WarmOutcome, WarmStart};
use crate::error::LpError;
use crate::model::Model;
use crate::revised::{extract_warm_start, resolve_warm_states, RevisedOptions, VarState, Worker};
use crate::solution::{Solution, SolveStats};
use crate::standard::StandardForm;

/// Primal step below which a dual pivot counts as degenerate.
const DEGENERATE_EPS: f64 = 1e-10;
/// Minimum dual-objective slope a bound flip must leave behind.
const SLOPE_EPS: f64 = 1e-12;

/// Re-optimize `model` by the dual simplex starting from `warm`.
///
/// Succeeds only when the warm basis is (or can be flipped) dual feasible;
/// otherwise returns [`LpError::NotDualFeasible`] so the caller can fall
/// back to the primal solver. [`LpError::Infeasible`] means the dual became
/// unbounded — the perturbed model genuinely has no feasible point.
pub fn solve_dual_from_basis(model: &Model, warm: &WarmStart) -> Result<Solution, LpError> {
    solve_dual_with_options(model, warm, &RevisedOptions::default())
}

/// [`solve_dual_from_basis`] with explicit tuning knobs (pivot budget via
/// `max_iterations`, tolerances, refactorization interval).
pub fn solve_dual_with_options(
    model: &Model,
    warm: &WarmStart,
    opts: &RevisedOptions,
) -> Result<Solution, LpError> {
    model.validate()?;
    let t0 = crate::clock::Stopwatch::start();
    let sf = StandardForm::from_model(model);
    let states = if warm.is_empty() {
        None
    } else {
        resolve_warm_states(model, &sf, warm)
    };
    let Some(states) = states else {
        // Nothing matched: there is no basis to be dual feasible about.
        return Err(LpError::NotDualFeasible);
    };

    let mut w = Worker::new(&sf, opts);
    w.ensure_csr();
    seed_basis(&mut w, &states)?;
    w.set_phase2_costs();
    let (dual_pivots, bound_flips) = shifted_dual_solve(&mut w)?;

    let values = w.x[..sf.n_structural].to_vec();
    let internal: f64 = w.costs.iter().zip(&w.x).map(|(c, x)| c * x).sum();
    let duals = w.current_duals();
    let stats = SolveStats {
        iterations: w.iterations,
        phase1_iterations: 0,
        refactors: w.refactors,
        ftran_nnz: w.ftran_nnz,
        warm: WarmOutcome::Dual,
        solve_ms: t0.elapsed_ms(),
        dual_pivots,
        bound_flips,
    };
    let next_warm = extract_warm_start(model, &sf, &w);
    Ok(
        Solution::new(sf.external_objective(internal), values, duals, w.iterations)
            .with_stats(stats)
            .with_warm_start(next_warm),
    )
}

/// Seed the basis from resolved warm statuses without any primal repair:
/// trim an over-full basis, complete an under-full one with slacks, and
/// factorize (degrading through the rank sweep once). Primal bound
/// violations among the basics are left in place — they are the dual
/// solver's work list, not damage.
fn seed_basis(w: &mut Worker, states: &[Option<BasisStatus>]) -> Result<(), LpError> {
    let m = w.m();
    let n_struct = w.sf.n_structural;
    let mut basics: Vec<usize> = Vec::new();
    for j in 0..w.n_real {
        if states[j] == Some(BasisStatus::Basic) {
            basics.push(j);
        } else {
            w.place_nonbasic(j, states[j]);
        }
    }
    // Over-full (name collisions): demote highest-index extras, the
    // cheapest to re-derive.
    while basics.len() > m {
        let j = basics.pop().unwrap_or_default();
        w.place_nonbasic(j, None);
    }
    // A slack-completed basis is a *good* dual start (the slacks are dual
    // feasible at cost zero; the violations they park on the basics are
    // the dual loop's normal work), so under-full is tolerated until the
    // basis is mostly guessed slacks — then the walk is no better than a
    // cold solve and the ladder moves on.
    if m - basics.len() > m / 2 {
        return Err(LpError::NotDualFeasible);
    }
    if basics.len() < m {
        let mut in_basis = vec![false; w.n_real];
        for &j in &basics {
            in_basis[j] = true;
        }
        for i in 0..m {
            if basics.len() == m {
                break;
            }
            let s = n_struct + i;
            if !in_basis[s] {
                in_basis[s] = true;
                basics.push(s);
            }
        }
    }
    if basics.len() != m {
        return Err(LpError::NotDualFeasible);
    }
    basics.sort_unstable();
    for &j in &basics {
        w.state[j] = VarState::Basic;
    }
    w.basis = basics;
    if !w.refactor_or_prune() {
        return Err(LpError::SingularBasis);
    }
    Ok(())
}

/// Run to a *true* optimum in three acts. (1) *Shift*: every wrong-signed
/// nonbasic reduced cost — boxed or one-sided — is cost-shifted to exactly
/// zero, which is dual feasible and moves nothing: no mass bound flips, no
/// induced primal violations, and (because cost shifts never perturb the
/// primal feasible region) the unbounded-dual ⇒ infeasible-primal verdict
/// stays sound. (2) *Walk*: the dual loop works off the genuine primal
/// damage (revoked capacity, drifted rhs), with shifted columns barred
/// from long-step flipping — at ratio ≈ 0 they are natural *entering*
/// candidates, and entering is the informed move where batch-flipping
/// them would thrash. (3) *Finish*: shifts come off and a warm primal
/// phase-2 under the true costs absorbs whatever cost drift remains —
/// devex-priced re-optimization instead of a dual flip storm, and a no-op
/// when the walk's duals already sign-corrected everything.
///
/// Returns `(dual_pivots, bound_flips)`; primal finisher iterations count
/// into `w.iterations` like any others but are not dual pivots.
fn shifted_dual_solve(w: &mut Worker) -> Result<(usize, usize), LpError> {
    let shifts = restore_dual_feasibility(w);
    let mut barred = vec![false; w.n_real];
    for &(j, _) in &shifts {
        barred[j] = true;
    }
    let (dual_pivots, bound_flips) = dual_loop(w, &barred, !shifts.is_empty())?;
    for (j, delta) in shifts {
        w.costs[j] -= delta;
    }
    w.run()?;
    Ok((dual_pivots, bound_flips))
}

/// Make the nonbasic reduced costs sign-consistent by shifting each
/// wrong-signed cost so the reduced cost is exactly zero. Returns the
/// applied shifts as `(column, delta)` pairs for the caller to undo.
fn restore_dual_feasibility(w: &mut Worker) -> Vec<(usize, f64)> {
    let tol = w.opts.tol;
    let y = w.current_duals();
    let mut shifts: Vec<(usize, f64)> = Vec::new();
    for j in 0..w.n_real {
        if w.state[j] == VarState::Basic || w.lb[j] == w.ub[j] {
            continue;
        }
        let d = w.reduced_cost(&y, j);
        let wrong = match w.state[j] {
            VarState::AtLower => d < -tol,
            VarState::AtUpper => d > tol,
            VarState::Free => d.abs() > tol,
            VarState::Basic => false,
        };
        if wrong {
            w.costs[j] -= d;
            shifts.push((j, -d));
        }
    }
    shifts
}

/// Pick the leaving row: the basic variable with the largest relative bound
/// violation (Bland mode: the violated basic with the smallest variable
/// index). Returns `(row, σ)` where `σ = −1` for a below-lower violation
/// and `+1` for above-upper; `None` means primal feasible — optimal.
fn select_leaving(w: &Worker) -> Option<(usize, f64)> {
    let tol = w.opts.tol;
    let mut best: Option<(usize, f64)> = None;
    for i in 0..w.m() {
        let j = w.basis[i];
        let v = w.x[j];
        let (lo, hi) = (w.lb[j], w.ub[j]);
        let below = lo.is_finite() && v < lo - tol * (1.0 + lo.abs());
        let above = hi.is_finite() && v > hi + tol * (1.0 + hi.abs());
        let viol = if below {
            lo - v
        } else if above {
            v - hi
        } else {
            continue;
        };
        if w.bland {
            match best {
                Some((bi, _)) if w.basis[bi] <= j => {}
                _ => best = Some((i, viol)),
            }
        } else {
            match best {
                Some((_, bv)) if bv >= viol => {}
                _ => best = Some((i, viol)),
            }
        }
    }
    best.map(|(i, _)| {
        let j = w.basis[i];
        let lo = w.lb[j];
        let sigma = if lo.is_finite() && w.x[j] < lo {
            -1.0
        } else {
            1.0
        };
        (i, sigma)
    })
}

/// One dual ratio-test candidate: column, `ᾱ_j = σ·α_rj`, reduced cost.
struct Candidate {
    col: usize,
    abar: f64,
    d: f64,
}

impl Candidate {
    /// Breakpoint ratio `d_j / ᾱ_j`, clamped to zero (a within-tolerance
    /// wrong sign must not produce a negative step).
    fn ratio(&self) -> f64 {
        (self.d / self.abar).max(0.0)
    }
}

/// Choose the entering candidate index. Bland mode takes the smallest
/// column index attaining the exact minimum ratio; otherwise a Harris
/// two-pass picks the largest `|ᾱ|` among ratios within the relaxed
/// minimum. `None` means no eligible column: the dual is unbounded.
fn choose_entering(cand: &[Candidate], harris: f64, bland: bool) -> Option<usize> {
    if cand.is_empty() {
        return None;
    }
    if bland {
        let rmin = cand
            .iter()
            .map(Candidate::ratio)
            .fold(f64::INFINITY, f64::min);
        return cand.iter().position(|c| c.ratio() <= rmin + DEGENERATE_EPS);
    }
    let mut theta_rel = f64::INFINITY;
    for c in cand {
        let rel = (c.d.abs() + harris) / c.abar.abs();
        if rel < theta_rel {
            theta_rel = rel;
        }
    }
    let mut best: Option<(usize, f64)> = None;
    for (k, c) in cand.iter().enumerate() {
        if c.ratio() <= theta_rel {
            match best {
                Some((_, ba)) if ba >= c.abar.abs() => {}
                _ => best = Some((k, c.abar.abs())),
            }
        }
    }
    best.map(|(k, _)| k)
}

/// One walk of the dual pivot loop, from the current (dual-feasible,
/// possibly cost-shifted) basis to primal feasibility. Columns flagged in
/// `barred` (the phase-1 shifted ones) sit the walk out entirely: at a
/// shifted reduced cost of zero they would otherwise enter chaotically at
/// ratio ≈ 0 — hundreds of them after a churn epoch swaps jobs in — when
/// the devex-priced primal finisher brings them in far more cheaply.
/// `any_barred` downgrades the no-candidate verdict from "infeasible" to
/// "not dual feasible", since a dual ray found while columns are barred
/// may be an artifact of the restriction. Returns the `(dual_pivots,
/// bound_flips)` this walk performed.
#[allow(clippy::too_many_lines)] // one pivot iteration reads best as a unit
fn dual_loop(w: &mut Worker, barred: &[bool], any_barred: bool) -> Result<(usize, usize), LpError> {
    let m = w.m();
    let n = w.n_real;
    let tol = w.opts.tol;
    let harris = tol;
    let mut y: Vec<f64> = Vec::with_capacity(m);
    let mut rho = vec![0.0; m];
    let mut acc = vec![0.0; n];
    let mut touched: Vec<usize> = Vec::new();
    let mut wvec = vec![0.0; m];
    let mut flip_rhs = vec![0.0; m];
    let mut dual_pivots = 0usize;
    let mut bound_flips = 0usize;
    let mut tiny_pivot_retries = 0usize;

    loop {
        let cap = self_cap(w);
        if w.iterations >= cap {
            return Err(LpError::IterationLimit {
                iterations: w.iterations,
            });
        }
        let Some((r, sigma)) = select_leaving(w) else {
            return Ok((dual_pivots, bound_flips)); // primal feasible
        };
        // Flip-thrash guard: a healthy long-step walk flips at most a
        // small multiple of its pivot count. When shifted columns are in
        // play and flips outrun pivots by 4×, the walk is shuffling the
        // shifted set instead of repairing primal damage (a churn-epoch
        // storm) — decline to the primal ladder before burning the budget.
        if any_barred && bound_flips > 4 * dual_pivots + 256 {
            return Err(LpError::NotDualFeasible);
        }

        // Pivot row α_r = (B⁻ᵀe_r)ᵀA, accumulated over the CSR rows of
        // ρ's support. `touched` is sorted so candidates run in column
        // order — deterministic tie-breaks for free.
        rho.fill(0.0);
        rho[r] = 1.0;
        w.btran(&mut rho);
        touched.clear();
        {
            let csr = w.csr.as_ref().ok_or(LpError::SingularBasis)?;
            for i in 0..m {
                let ri = rho[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, a) in csr.row(i) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    // lips-allow(float-accum-in-loop): serial pivot-row accumulation in fixed CSR row order
                    acc[j] += ri * a;
                }
            }
        }
        touched.sort_unstable();
        touched.dedup();

        w.current_duals_into(&mut y);
        let mut cand: Vec<Candidate> = Vec::with_capacity(touched.len());
        let mut reserve: Vec<Candidate> = Vec::new();
        for &j in &touched {
            if w.state[j] == VarState::Basic || w.lb[j] == w.ub[j] {
                continue;
            }
            let abar = sigma * acc[j];
            let eligible = match w.state[j] {
                VarState::AtLower => abar > w.opts.pivot_tol,
                VarState::AtUpper => abar < -w.opts.pivot_tol,
                VarState::Free => abar.abs() > w.opts.pivot_tol,
                VarState::Basic => false,
            };
            if eligible {
                let c = Candidate {
                    col: j,
                    abar,
                    d: w.reduced_cost(&y, j),
                };
                // Shifted columns are second-tier: they only enter when a
                // row has no unshifted way out, so the walk stays on the
                // carried column set and the finisher prices the rest.
                if barred[j] {
                    reserve.push(c);
                } else {
                    cand.push(c);
                }
            }
        }
        for &j in &touched {
            acc[j] = 0.0;
        }

        // Long-step ratio test: flip boxed breakpoint columns while the
        // dual objective's slope survives, then enter at the first
        // breakpoint that exhausts it. Nothing is mutated until the pivot
        // element is confirmed, so a refactor-retry restarts cleanly.
        let out = w.basis[r];
        let mut slope = if sigma < 0.0 {
            w.lb[out] - w.x[out]
        } else {
            w.x[out] - w.ub[out]
        };
        let mut flips_this: Vec<usize> = Vec::new();
        let entering = loop {
            let Some(k) = choose_entering(&cand, harris, w.bland) else {
                if let Some(k) = choose_entering(&reserve, harris, w.bland) {
                    // A shifted column is the only way out of this row.
                    break reserve.swap_remove(k);
                }
                if any_barred {
                    // The restriction to unshifted columns may be what
                    // starved the ratio test: decline rather than
                    // misreport the true model as infeasible.
                    return Err(LpError::NotDualFeasible);
                }
                // No breakpoint left: the dual ray is unbounded, so the
                // perturbed primal admits no feasible point.
                return Err(LpError::Infeasible);
            };
            let boxed = w.lb[cand[k].col].is_finite() && w.ub[cand[k].col].is_finite();
            let gap = w.ub[cand[k].col] - w.lb[cand[k].col];
            if !w.bland && boxed && slope - gap * cand[k].abar.abs() > SLOPE_EPS {
                slope -= gap * cand[k].abar.abs();
                let c = cand.remove(k);
                flips_this.push(c.col);
                continue;
            }
            break cand.swap_remove(k);
        };
        let q = entering.col;

        // FTRAN the entering column; its r-th component is the
        // authoritative pivot element.
        wvec.fill(0.0);
        w.for_col(q, |ri, v| wvec[ri] += v);
        w.ftran(&mut wvec);
        let piv = wvec[r];
        if piv.abs() <= w.opts.pivot_tol {
            // The CSR-accumulated α_rq disagreed with the FTRAN through
            // stale etas: refactorize and retry the iteration with fresh
            // numerics, giving up after repeated failures.
            tiny_pivot_retries += 1;
            if tiny_pivot_retries > 2 {
                return Err(LpError::SingularBasis);
            }
            w.refactor()?;
            continue;
        }
        tiny_pivot_retries = 0;
        // lips-allow(float-accum-in-loop): u64 nonzero counter, not a float sum
        w.ftran_nnz += wvec.iter().filter(|&&v| v != 0.0).count() as u64;

        // Apply the accumulated bound flips: one FTRAN for the whole batch.
        if !flips_this.is_empty() {
            flip_rhs.fill(0.0);
            for &j in &flips_this {
                let (st, xv) = match w.state[j] {
                    VarState::AtLower => (VarState::AtUpper, w.ub[j]),
                    _ => (VarState::AtLower, w.lb[j]),
                };
                let dx = xv - w.x[j];
                w.for_col(j, |ri, v| flip_rhs[ri] += v * dx);
                w.state[j] = st;
                w.x[j] = xv;
                bound_flips += 1;
            }
            w.ftran(&mut flip_rhs);
            for i in 0..m {
                if flip_rhs[i] != 0.0 {
                    w.x[w.basis[i]] -= flip_rhs[i];
                }
            }
        }

        // Pivot: x_q moves by −δ/α_rq, which lands x_out exactly on its
        // violated bound (δ re-read after the flips moved the basics).
        let target = if sigma < 0.0 { w.lb[out] } else { w.ub[out] };
        let delta = target - w.x[out];
        let step = -delta / piv;
        for i in 0..m {
            if wvec[i] != 0.0 {
                w.x[w.basis[i]] -= wvec[i] * step;
            }
        }
        w.x[q] += step;
        w.state[out] = if sigma < 0.0 {
            VarState::AtLower
        } else {
            VarState::AtUpper
        };
        w.x[out] = target;
        w.basis[r] = q;
        w.state[q] = VarState::Basic;

        let nnz: Vec<(usize, f64)> = wvec
            .iter()
            .enumerate()
            .filter(|&(i, &v)| i != r && v != 0.0)
            .map(|(i, &v)| (i, v))
            .collect();
        w.etas.push(crate::revised::Eta {
            row: r,
            diag: piv,
            nnz,
        });
        if w.etas.len() >= w.opts.refactor_interval {
            w.refactor()?;
        }

        // Degeneracy bookkeeping → Bland switch, mirroring the primal loop.
        if step.abs() <= DEGENERATE_EPS {
            w.degenerate_run += 1;
            if w.degenerate_run > w.opts.bland_trigger {
                w.bland = true;
            }
        } else {
            w.degenerate_run = 0;
            w.bland = false;
        }
        w.iterations += 1;
        dual_pivots += 1;
    }
}

/// Effective pivot cap: the explicit budget, clamped by `max_iterations`.
fn self_cap(w: &Worker) -> usize {
    w.iteration_budget
        .map_or(w.opts.max_iterations, |b| b.min(w.opts.max_iterations))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    /// Build the textbook LP, solve it primally, and return model+basis.
    fn textbook() -> (Model, WarmStart) {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, 0<=x,y<=10.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 3.0);
        let y = m.add_var("y", 0.0, 10.0, 5.0);
        let c0 = m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        let c1 = m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        let c2 = m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        m.name_constraint(c0, "c0");
        m.name_constraint(c1, "c1");
        m.name_constraint(c2, "c2");
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        let ws = sol.warm_start().unwrap().clone();
        (m, ws)
    }

    #[test]
    fn reoptimizes_after_rhs_tightening() {
        let (_m, ws) = textbook();
        // Tighten the joint capacity row enough to push the basic x
        // below its lower bound: the old basis stays dual feasible but
        // primal-violated, and the dual walk fixes it.
        let mut m2 = Model::new(Sense::Maximize);
        let x = m2.add_var("x", 0.0, 10.0, 3.0);
        let y = m2.add_var("y", 0.0, 10.0, 5.0);
        let c0 = m2.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        let c1 = m2.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        let c2 = m2.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 10.0);
        m2.name_constraint(c0, "c0");
        m2.name_constraint(c1, "c1");
        m2.name_constraint(c2, "c2");
        let dual_sol = solve_dual_from_basis(&m2, &ws).unwrap();
        let fresh = m2.solve().unwrap();
        assert_close(dual_sol.objective(), fresh.objective());
        assert_eq!(dual_sol.stats().warm, WarmOutcome::Dual);
        assert!(dual_sol.stats().dual_pivots > 0);
        assert_eq!(dual_sol.stats().phase1_iterations, 0);
    }

    #[test]
    fn noop_resolve_takes_zero_pivots() {
        let (m, ws) = textbook();
        let dual_sol = solve_dual_from_basis(&m, &ws).unwrap();
        assert_close(dual_sol.objective(), 36.0);
        assert_eq!(dual_sol.stats().dual_pivots, 0);
        assert_eq!(dual_sol.stats().bound_flips, 0);
    }

    #[test]
    fn empty_warm_start_is_not_dual_feasible() {
        let (m, _) = textbook();
        let err = solve_dual_from_basis(&m, &WarmStart::new()).unwrap_err();
        assert_eq!(err, LpError::NotDualFeasible);
    }

    #[test]
    fn detects_infeasibility_after_tightening() {
        // x + y >= 5 with x,y in [0,1] is infeasible; seed from the
        // feasible wide version's basis.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 4.0, 1.0);
        let y = m.add_var("y", 0.0, 4.0, 2.0);
        let c = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        m.name_constraint(c, "cover");
        let ws = m.solve().unwrap().warm_start().unwrap().clone();

        let mut m2 = Model::minimize();
        let x = m2.add_var("x", 0.0, 1.0, 1.0);
        let y = m2.add_var("y", 0.0, 1.0, 2.0);
        let c = m2.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        m2.name_constraint(c, "cover");
        let err = solve_dual_from_basis(&m2, &ws).unwrap_err();
        assert_eq!(err, LpError::Infeasible);
    }

    #[test]
    fn objective_drift_resolves_without_dual_pivots() {
        // Boxed LP where flipping the cost sign moves the optimum to the
        // opposite bounds without any constraint becoming binding: the
        // basis stays primal feasible, so the dual walk has nothing to do
        // and the primal finisher absorbs the drift as pure bound flips.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        let c = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        m.name_constraint(c, "cap");
        let ws = m.solve().unwrap().warm_start().unwrap().clone();

        let mut m2 = Model::minimize();
        let x = m2.add_var("x", 0.0, 1.0, -1.0);
        let y = m2.add_var("y", 0.0, 1.0, -1.0);
        let c = m2.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 10.0);
        m2.name_constraint(c, "cap");
        let dual_sol = solve_dual_from_basis(&m2, &ws).unwrap();
        assert_close(dual_sol.objective(), -2.0);
        assert_eq!(dual_sol.stats().dual_pivots, 0);
        // Two primal bound-flip iterations, nothing structural.
        assert!(dual_sol.stats().iterations <= 2);
    }

    #[test]
    fn matches_primal_on_random_perturbations() {
        // Deterministic xorshift; perturb rhs/costs and compare the dual
        // re-solve against a from-scratch primal solve.
        let mut seed = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut checked = 0usize;
        for _case in 0..60 {
            let nv = 2 + (rng() * 4.0) as usize;
            let nc = 1 + (rng() * 3.0) as usize;
            // Shared structure, sampled once.
            let costs: Vec<f64> = (0..nv).map(|_| 1.0 + rng()).collect();
            let coeffs: Vec<f64> = (0..nc * nv).map(|_| 0.5 + rng()).collect();
            let rhs: Vec<f64> = (0..nc).map(|_| 0.5 + rng()).collect();
            let build = |rhs_scale: f64, cost_bump: f64| {
                let mut m = Model::minimize();
                let vars: Vec<_> = (0..nv)
                    .map(|j| m.add_var(format!("v{j}"), 0.0, 1.0, costs[j] + cost_bump))
                    .collect();
                for i in 0..nc {
                    let terms: Vec<_> = vars
                        .iter()
                        .enumerate()
                        .map(|(j, &v)| (v, coeffs[i * nv + j]))
                        .collect();
                    let c = m.add_constraint(terms, Cmp::Ge, rhs_scale * rhs[i]);
                    m.name_constraint(c, format!("r{i}"));
                }
                m
            };
            let base = build(1.0, 0.0);
            let Ok(sol) = base.solve() else { continue };
            let ws = sol.warm_start().unwrap().clone();
            // Perturb: scale rhs up (basics pushed past bounds) and bump
            // costs uniformly (reduced costs drift but stay sign-safe for
            // a min-sense covering LP).
            let perturbed = build(1.4, 0.25);
            let Ok(fresh) = perturbed.solve() else {
                continue;
            };
            match solve_dual_from_basis(&perturbed, &ws) {
                Ok(d) => {
                    assert_close(d.objective(), fresh.objective());
                    checked += 1;
                }
                Err(LpError::NotDualFeasible) => {} // honest fallback
                Err(e) => panic!("unexpected dual error: {e}"),
            }
        }
        assert!(checked > 10, "only {checked} dual re-solves succeeded");
    }
}
