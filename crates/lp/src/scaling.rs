//! Equilibration scaling: condition a badly scaled model before solving.
//!
//! Scheduling LPs mix units brutally — dollar coefficients near 1e-5 sit
//! next to ECU-second capacities near 1e5. Geometric-mean equilibration
//! rescales rows and columns so coefficient magnitudes cluster near 1,
//! which keeps simplex pivots well away from the tolerance cliffs.
//!
//! The transformation substitutes `x_j = c_j · x'_j` and multiplies row
//! `i` by `r_i`; [`ScaleMap::unscale`] maps a scaled solution back.
//!
//! ```
//! use lips_lp::{Model, Cmp};
//! use lips_lp::scaling::equilibrate;
//!
//! let mut m = Model::minimize();
//! let x = m.add_var("x", 0.0, 1e8, 1e-6);
//! m.add_constraint([(x, 1e6)], Cmp::Ge, 2e6);
//! let (scaled, map) = equilibrate(&m);
//! let sol = scaled.solve().unwrap();
//! let x_orig = map.unscale(sol.values());
//! assert!((x_orig[0] - 2.0).abs() < 1e-6);
//! ```

use crate::model::Model;

/// Column scales for mapping a scaled solution back to the original space.
#[derive(Debug, Clone)]
pub struct ScaleMap {
    col_scale: Vec<f64>,
}

impl ScaleMap {
    /// `x_original[j] = x_scaled[j] · col_scale[j]`.
    pub fn unscale(&self, scaled: &[f64]) -> Vec<f64> {
        scaled
            .iter()
            .zip(&self.col_scale)
            .map(|(x, c)| x * c)
            .collect()
    }

    /// The per-column scale factors.
    pub fn col_scales(&self) -> &[f64] {
        &self.col_scale
    }
}

/// One pass of geometric-mean scaling over rows then columns, iterated
/// twice (the standard recipe; more passes give diminishing returns).
#[allow(clippy::needless_range_loop)] // paired lo/hi arrays read clearer indexed
pub fn equilibrate(model: &Model) -> (Model, ScaleMap) {
    let n = model.num_vars();
    let m_rows = model.num_constraints();
    let mut row_scale = vec![1.0f64; m_rows];
    let mut col_scale = vec![1.0f64; n];

    for _ in 0..2 {
        // Row pass: r_i = 1 / sqrt(max·min |a_ij·c_j|).
        for (ri, con) in model.cons.iter().enumerate() {
            let mut lo = f64::INFINITY;
            let mut hi = 0.0f64;
            for &(v, coef) in &con.terms {
                let a = (coef * col_scale[v]).abs();
                if a > 0.0 {
                    lo = lo.min(a);
                    hi = hi.max(a);
                }
            }
            if hi > 0.0 {
                row_scale[ri] = 1.0 / (lo * hi).sqrt();
            }
        }
        // Column pass: likewise over each column's scaled entries.
        let mut lo = vec![f64::INFINITY; n];
        let mut hi = vec![0.0f64; n];
        for (ri, con) in model.cons.iter().enumerate() {
            for &(v, coef) in &con.terms {
                let a = (coef * row_scale[ri]).abs();
                if a > 0.0 {
                    lo[v] = lo[v].min(a);
                    hi[v] = hi[v].max(a);
                }
            }
        }
        for j in 0..n {
            if hi[j] > 0.0 {
                col_scale[j] = 1.0 / (lo[j] * hi[j]).sqrt();
            }
        }
    }

    // Build the scaled model: x = C x' with C = diag(col_scale).
    let mut scaled = Model::new(model.sense());
    for j in 0..n {
        let v = crate::VarId(j);
        let (lb, ub) = model.var_bounds(v);
        let c = col_scale[j];
        scaled.add_var(
            model.var_name(v).to_string(),
            // Bounds divide by the scale (c > 0 always).
            lb / c,
            ub / c,
            model.var_obj(v) * c,
        );
    }
    for (ri, con) in model.cons.iter().enumerate() {
        let r = row_scale[ri];
        let terms: Vec<(crate::VarId, f64)> = con
            .terms
            .iter()
            .map(|&(v, coef)| (crate::VarId(v), coef * r * col_scale[v]))
            .collect();
        scaled.add_constraint(terms, con.cmp, con.rhs * r);
    }
    (scaled, ScaleMap { col_scale })
}

/// Solve via equilibration; returns `(objective, original-space values)`.
pub fn solve_scaled(model: &Model) -> Result<(f64, Vec<f64>), crate::LpError> {
    let (scaled, map) = equilibrate(model);
    let sol = scaled.solve()?;
    Ok((sol.objective(), map.unscale(sol.values())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    #[test]
    fn scaling_preserves_optimum() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let direct = m.solve().unwrap();
        let (obj, vals) = solve_scaled(&m).unwrap();
        assert!((obj - direct.objective()).abs() < 1e-8);
        assert!(m.is_feasible(&vals, 1e-7));
    }

    #[test]
    fn conditions_pathological_coefficients() {
        // Coefficients spanning 12 orders of magnitude.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1e-6);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1e6);
        m.add_constraint([(x, 1e6), (y, 1e-6)], Cmp::Ge, 2e6);
        let (scaled, _) = equilibrate(&m);
        // Scaled coefficient magnitudes land near 1.
        for con in &scaled.cons {
            for &(_, coef) in &con.terms {
                assert!(
                    (1e-2..=1e2).contains(&coef.abs()),
                    "coef still badly scaled: {coef}"
                );
            }
        }
        let (obj, vals) = solve_scaled(&m).unwrap();
        assert!(m.is_feasible(&vals, 1e-4));
        assert!((obj - m.objective_of(&vals)).abs() < 1e-6);
    }

    #[test]
    fn scaled_agrees_with_direct_on_random_models() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
        let mut solved = 0;
        for case in 0..150 {
            let n = rng.gen_range(2..7);
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    // Deliberately wild magnitudes.
                    let mag = 10.0f64.powi(rng.gen_range(-5..5));
                    m.add_var(
                        format!("x{i}"),
                        0.0,
                        rng.gen_range(1.0..10.0) * mag,
                        rng.gen_range(-2.0..2.0),
                    )
                })
                .collect();
            for _ in 0..rng.gen_range(1..5) {
                let terms: Vec<_> = vars
                    .iter()
                    .map(|&v| {
                        (
                            v,
                            rng.gen_range(0.1..2.0) * 10.0f64.powi(rng.gen_range(-4..4)),
                        )
                    })
                    .collect();
                m.add_constraint(terms, Cmp::Le, rng.gen_range(0.5..100.0));
            }
            let direct = m.solve();
            let scaled = solve_scaled(&m);
            match (direct, scaled) {
                (Ok(a), Ok((obj, vals))) => {
                    solved += 1;
                    let denom = 1.0 + a.objective().abs();
                    assert!(
                        (a.objective() - obj).abs() / denom < 1e-5,
                        "case {case}: {} vs {obj}",
                        a.objective()
                    );
                    assert!(m.max_violation(&vals) / denom < 1e-5, "case {case}");
                }
                (Err(a), Err(b)) => assert_eq!(a, b, "case {case}"),
                (a, b) => panic!("case {case}: {a:?} vs {b:?}"),
            }
        }
        assert!(solved > 100, "only {solved} solved");
    }

    #[test]
    fn unscale_roundtrip() {
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 1e9, 1.0);
        let (_, map) = equilibrate(&m);
        // No constraints: column untouched.
        assert_eq!(map.col_scales(), &[1.0]);
        assert_eq!(map.unscale(&[5.0]), vec![5.0]);
    }
}
