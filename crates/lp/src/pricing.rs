//! Column pricing for delayed column generation.
//!
//! A restricted master problem (RMP) carries only a subset of a full
//! model's columns. After the RMP solves to optimality, every *excluded*
//! column must be priced against the master's duals: a column whose
//! reduced cost is negative (in the internal minimization sense) would
//! improve the master and has to be appended ([`crate::Model::add_column`])
//! before the incumbent can be called optimal for the full model. When no
//! excluded column prices out, the master's optimal basis is optimal for
//! the full model — the excluded columns are nonbasic at their (zero)
//! lower bound with nonnegative reduced cost, which is precisely the dual
//! feasibility condition the KKT certificate checks.
//!
//! All reduced costs here are in the solver's internal minimization sense
//! (the convention of [`Solution::duals`]): `d_j = c_j − yᵀa_j` with `c`
//! negated for `Maximize` models. Under that convention the entering rule
//! is uniform regardless of the model's sense: a column at its lower bound
//! *prices out* (improves the objective) iff `d_j < −tol`.

use crate::model::{ConstraintId, Model, Sense};
use crate::solution::Solution;
use crate::TOL;
use lips_par::Pool;

/// Prices candidate columns against a solved master's duals.
///
/// Borrowing the duals once up front amortizes the sense bookkeeping over
/// the typically thousands of candidate columns priced per round.
#[derive(Debug)]
pub struct ColumnPricer<'a> {
    duals: &'a [f64],
    /// +1 for `Minimize`, −1 for `Maximize` (internal costs are negated).
    sign: f64,
}

/// Why a [`ColumnPricer`] could not be constructed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingDuals {
    pub expected: usize,
    pub got: usize,
}

impl std::fmt::Display for MissingDuals {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "solution has {} dual values but the master has {} rows; cannot price columns",
            self.got, self.expected
        )
    }
}

impl std::error::Error for MissingDuals {}

impl<'a> ColumnPricer<'a> {
    /// Build a pricer from a solved master. Fails if the solution carries
    /// no (or wrong-arity) duals — e.g. the dense oracle's solutions.
    pub fn new(master: &Model, sol: &'a Solution) -> Result<Self, MissingDuals> {
        let duals = sol.duals();
        if duals.len() != master.num_constraints() {
            return Err(MissingDuals {
                expected: master.num_constraints(),
                got: duals.len(),
            });
        }
        Ok(ColumnPricer {
            duals,
            sign: match master.sense() {
                Sense::Minimize => 1.0,
                Sense::Maximize => -1.0,
            },
        })
    }

    /// Reduced cost `c_j − yᵀa_j` of a candidate column, in the internal
    /// minimization sense. `obj` is the column's objective coefficient in
    /// the *model's own* sense; `terms` are its coefficients in the
    /// master's rows (rows not mentioned contribute zero).
    pub fn reduced_cost(&self, obj: f64, terms: &[(ConstraintId, f64)]) -> f64 {
        let mut d = self.sign * obj;
        for &(c, coef) in terms {
            d -= self.duals[c.index()] * coef;
        }
        d
    }

    /// True iff a column held at its lower bound would improve the master:
    /// `reduced_cost < −tol` with the crate default tolerance [`TOL`].
    pub fn prices_out(&self, obj: f64, terms: &[(ConstraintId, f64)]) -> bool {
        self.reduced_cost(obj, terms) < -TOL
    }

    /// Price `n` candidate columns across `pool`'s workers and return the
    /// indices of those that price out, **ascending** — the merge is in
    /// candidate order, so the result is bitwise identical at any thread
    /// count.
    ///
    /// `fill` describes candidate `i`: it writes the column's terms into
    /// the supplied buffer (already cleared) and returns the objective
    /// coefficient. The buffer is per-worker scratch reused across every
    /// candidate that worker prices, so a batch pass performs no per-arc
    /// heap allocation — with [`Pool::serial`] this is also the allocation
    /// discipline of the serial pricing loop.
    pub fn price_out_batch<F>(&self, pool: Pool, n: usize, fill: F) -> Vec<usize>
    where
        F: Fn(usize, &mut Vec<(ConstraintId, f64)>) -> f64 + Sync,
    {
        pool.par_filter_indices_with(n, Vec::new, |buf, i| {
            buf.clear();
            let obj = fill(i, buf);
            self.prices_out(obj, buf)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Cmp;

    /// min 2x + 3y s.t. x + y ≥ 4, x ≤ 3 → x=3, y=1, obj 9.
    /// The excluded column z (cost 1, coefficient 1 in the demand row)
    /// would drop the optimum to 4, so it must price out.
    #[test]
    fn excluded_improving_column_prices_out() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 3.0);
        let demand = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let cap = m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        let sol = m.solve().unwrap();
        let pricer = ColumnPricer::new(&m, &sol).unwrap();
        // y is basic at optimality → its reduced cost is ~0; x leans on its
        // upper bound → negative reduced cost, but it is *in* the master.
        assert!(pricer.reduced_cost(3.0, &[(demand, 1.0)]).abs() < 1e-9);
        // The improving excluded column: d = 1 − y_demand = 1 − 3 = −2.
        let d = pricer.reduced_cost(1.0, &[(demand, 1.0)]);
        assert!((d + 2.0).abs() < 1e-9, "d = {d}");
        assert!(pricer.prices_out(1.0, &[(demand, 1.0)]));
        // A dear excluded column must not: d = 5 − 3 = 2.
        assert!(!pricer.prices_out(5.0, &[(demand, 1.0)]));
        // Rows not mentioned contribute nothing.
        let with_cap = pricer.reduced_cost(1.0, &[(demand, 1.0), (cap, 0.0)]);
        assert!((with_cap - d).abs() < 1e-12);
    }

    #[test]
    fn appending_priced_out_column_reaches_full_optimum() {
        // The full colgen contract in miniature: solve restricted, price,
        // append, re-solve warm, price again → nothing left, objective
        // matches the from-scratch full model.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let demand = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        m.name_constraint(demand, "demand");
        let sol = m.solve().unwrap();
        let pricer = ColumnPricer::new(&m, &sol).unwrap();
        let cand = [(demand, 1.0)];
        assert!(pricer.prices_out(1.0, &cand));
        let basis = sol.warm_start().cloned().unwrap();
        m.add_column("z", 0.0, 10.0, 1.0, cand);
        let sol2 = m.solve_warm(Some(&basis)).unwrap();
        assert!((sol2.objective() - 4.0).abs() < 1e-6);
        let pricer2 = ColumnPricer::new(&m, &sol2).unwrap();
        assert!(!pricer2.prices_out(1.0, &cand), "column already in master");
    }

    #[test]
    fn maximize_sense_is_handled_internally() {
        // max x s.t. x + y ≤ 5 (y excluded, profit 3): internally costs are
        // negated, so the excluded column's d = −3 − (−1)·1 = −2 < 0.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let cap = m.add_constraint([(x, 1.0)], Cmp::Le, 5.0);
        let sol = m.solve().unwrap();
        let pricer = ColumnPricer::new(&m, &sol).unwrap();
        assert!(pricer.prices_out(3.0, &[(cap, 1.0)]));
        // An excluded column with profit below the row's marginal value
        // must not enter: d = −0.5 + 1 = 0.5 ≥ 0.
        assert!(!pricer.prices_out(0.5, &[(cap, 1.0)]));
    }

    #[test]
    fn batch_pricing_matches_per_column_calls_at_any_width() {
        // A master with several rows and a spread of candidate columns:
        // the batch API must select exactly the candidates the one-by-one
        // API selects, in ascending candidate order, at every pool width.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 3.0);
        let demand = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let cap = m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        let sol = m.solve().unwrap();
        let pricer = ColumnPricer::new(&m, &sol).unwrap();
        // Candidate i: cost i/4 dollars, one unit in the demand row, plus a
        // capacity coefficient on every third candidate.
        let describe = |i: usize, buf: &mut Vec<(ConstraintId, f64)>| -> f64 {
            buf.push((demand, 1.0));
            if i.is_multiple_of(3) {
                buf.push((cap, 0.5));
            }
            i as f64 / 4.0
        };
        let n = 500;
        let serial: Vec<usize> = (0..n)
            .filter(|&i| {
                let mut buf = Vec::new();
                let obj = describe(i, &mut buf);
                pricer.prices_out(obj, &buf)
            })
            .collect();
        assert!(!serial.is_empty() && serial.len() < n, "degenerate test");
        for threads in [1, 2, 8] {
            let batch = pricer.price_out_batch(Pool::new(threads), n, |i, buf| describe(i, buf));
            assert_eq!(serial, batch, "threads={threads}");
        }
    }

    #[test]
    fn dense_solutions_cannot_price() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5);
        let sol = m.solve_dense().unwrap();
        match ColumnPricer::new(&m, &sol) {
            Err(e) => assert_eq!(
                e,
                MissingDuals {
                    expected: 1,
                    got: 0
                }
            ),
            Ok(_) => panic!("dense solutions carry no duals"),
        }
    }
}
