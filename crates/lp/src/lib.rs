//! # lips-lp — a self-contained linear-programming solver
//!
//! The LiPS scheduler (Ehsan et al., IPDPS 2013) reduces cost-optimal
//! data/task co-scheduling to linear programs (Figures 2–4 of the paper) and
//! solves them with GLPK.  This crate is the GLPK substitute: a from-scratch,
//! dependency-free LP solver tuned for the scheduler's problem shapes
//! (thousands of rows, tens of thousands of sparse columns, all variables
//! boxed into `[0, 1]`).
//!
//! Two solvers are provided:
//!
//! * [`revised::RevisedSimplex`] — the production solver: a two-phase,
//!   bounded-variable revised primal simplex with a Markowitz-ordered
//!   sparse-LU factorization of the basis ([`slu::SparseLu`]; a dense
//!   backend remains available), sparse product-form (eta-file) updates
//!   between refactorizations, devex pricing over a partial-pricing window
//!   (Dantzig available), a Bland anti-cycling fallback, and warm starting
//!   from a prior basis ([`basis::WarmStart`]) for the epoch-loop
//!   resolve-the-same-LP-again workload.
//! * [`dense::DenseSimplex`] — a textbook two-phase tableau simplex used as a
//!   cross-checking oracle in tests and for very small models.
//!
//! Both consume the same [`model::Model`] builder and return the same
//! [`solution::Solution`].
//!
//! ```
//! use lips_lp::{Model, Sense, Cmp};
//!
//! // min 2x + 3y  s.t.  x + y >= 4,  x <= 3,  0 <= x,y <= 10
//! let mut m = Model::new(Sense::Minimize);
//! let x = m.add_var("x", 0.0, 10.0, 2.0);
//! let y = m.add_var("y", 0.0, 10.0, 3.0);
//! m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
//! m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
//! let sol = m.solve().unwrap();
//! assert!((sol.objective() - 9.0).abs() < 1e-6); // x=3, y=1
//! ```

pub mod basis;
pub mod clock;
pub mod dense;
pub mod dual;
pub mod error;
pub mod lu;
pub mod model;
pub mod presolve;
pub mod pricing;
pub mod revised;
pub mod scaling;
pub mod sensitivity;
pub mod slu;
pub mod solution;
pub mod sparse;
pub mod standard;

pub use basis::{BasisStatus, WarmOutcome, WarmStart};
pub use dual::{solve_dual_from_basis, solve_dual_with_options};
pub use error::LpError;
pub use model::{Cmp, ConstraintId, Model, Sense, VarId};
pub use pricing::ColumnPricer;
pub use solution::{Solution, SolveStats, Status};

/// Default feasibility / optimality tolerance used across the crate.
pub const TOL: f64 = 1e-7;

/// Pivot-magnitude tolerance: elements smaller than this are treated as zero
/// during elimination and the ratio test.
pub const PIVOT_TOL: f64 = 1e-9;
