//! Problem builder: variables with box bounds, linear constraints, and an
//! objective sense. This is the single entry point both solvers consume.

use crate::error::LpError;
use crate::solution::Solution;
use crate::TOL;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Positional index of the variable inside its model (also the index
    /// into [`Solution::values`]).
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild a handle from [`VarId::index`]. The caller is responsible for
    /// pairing it with the model it came from, exactly as with `index()`.
    pub fn from_index(i: usize) -> VarId {
        VarId(i)
    }
}

/// Opaque handle to a model constraint (row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    /// Positional index of the constraint inside its model.
    pub fn index(self) -> usize {
        self.0
    }

    /// Rebuild a handle from [`ConstraintId::index`].
    pub fn from_index(i: usize) -> ConstraintId {
        ConstraintId(i)
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub name: String,
    pub lb: f64,
    pub ub: f64,
    pub obj: f64,
}

#[derive(Debug, Clone)]
pub(crate) struct Constraint {
    /// Optional row name (empty = unnamed). Names key warm-start bases
    /// across model rebuilds; see [`crate::basis::WarmStart`].
    pub name: String,
    /// (variable index, coefficient) pairs; duplicates are summed when the
    /// model is lowered to matrix form.
    pub terms: Vec<(usize, f64)>,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// A linear program under construction.
///
/// Variables carry box bounds `[lb, ub]` (either side may be infinite) and an
/// objective coefficient. Constraints are arbitrary sparse linear rows.
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) cons: Vec<Constraint>,
}

impl Model {
    /// Create an empty model with the given optimization sense.
    pub fn new(sense: Sense) -> Self {
        Model {
            sense,
            vars: Vec::new(),
            cons: Vec::new(),
        }
    }

    /// Shorthand for `Model::new(Sense::Minimize)`.
    pub fn minimize() -> Self {
        Model::new(Sense::Minimize)
    }

    /// Optimization sense of this model.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a variable with bounds `[lb, ub]` and objective coefficient `obj`.
    ///
    /// Either bound may be `±f64::INFINITY`. Bad data (NaN bounds, non-finite
    /// objective, inverted boxes) is accepted here and rejected by
    /// [`Model::validate`], which every solver runs before touching the model.
    pub fn add_var(&mut self, name: impl Into<String>, lb: f64, ub: f64, obj: f64) -> VarId {
        self.vars.push(Variable {
            name: name.into(),
            lb,
            ub,
            obj,
        });
        VarId(self.vars.len() - 1)
    }

    /// Append a full column to a live model: a new variable together with
    /// its coefficients in *existing* rows. This is the incremental entry
    /// point for delayed column generation — after a restricted master has
    /// been built and solved, columns that price out (see
    /// [`crate::pricing`]) are appended here and the model re-solved from
    /// the incumbent basis via [`Model::solve_warm`]; the new column is
    /// unknown to the saved basis and therefore starts nonbasic at a bound,
    /// exactly the state a freshly priced-in column should have.
    ///
    /// Rows not mentioned get a zero coefficient. Mentioning the same row
    /// twice sums the coefficients (the same convention as duplicate terms
    /// in [`Model::add_constraint`]).
    ///
    /// # Panics
    ///
    /// Panics if a term references a constraint that does not exist yet;
    /// columns can only be appended into rows that are already present.
    pub fn add_column(
        &mut self,
        name: impl Into<String>,
        lb: f64,
        ub: f64,
        obj: f64,
        terms: impl IntoIterator<Item = (ConstraintId, f64)>,
    ) -> VarId {
        let v = self.add_var(name, lb, ub, obj);
        for (c, coef) in terms {
            assert!(
                c.0 < self.cons.len(),
                "add_column term references unknown constraint {}",
                c.0
            );
            self.cons[c.0].terms.push((v.0, coef));
        }
        v
    }

    /// Add a constraint `Σ coef·var  cmp  rhs`.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        cmp: Cmp,
        rhs: f64,
    ) -> ConstraintId {
        let terms: Vec<(usize, f64)> = terms.into_iter().map(|(v, c)| (v.0, c)).collect();
        self.cons.push(Constraint {
            name: String::new(),
            terms,
            cmp,
            rhs,
        });
        ConstraintId(self.cons.len() - 1)
    }

    /// Name a constraint so its slack's basis status can be matched by name
    /// in a [`crate::basis::WarmStart`] even when the row order changes
    /// between model rebuilds. Unnamed rows fall back to positional keys.
    pub fn name_constraint(&mut self, c: ConstraintId, name: impl Into<String>) {
        self.cons[c.0].name = name.into();
    }

    /// Name of a constraint (empty if never named).
    pub fn constraint_name(&self, c: ConstraintId) -> &str {
        &self.cons[c.0].name
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.cons.len()
    }

    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0].name
    }

    /// Bounds of a variable.
    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lb, self.vars[v.0].ub)
    }

    /// Objective coefficient of a variable.
    pub fn var_obj(&self, v: VarId) -> f64 {
        self.vars[v.0].obj
    }

    /// All variable ids, in insertion order.
    pub fn var_ids(&self) -> impl Iterator<Item = VarId> {
        (0..self.vars.len()).map(VarId)
    }

    /// All constraint ids, in insertion order.
    pub fn constraint_ids(&self) -> impl Iterator<Item = ConstraintId> {
        (0..self.cons.len()).map(ConstraintId)
    }

    /// Terms of a constraint, exactly as added (duplicates not summed).
    pub fn constraint_terms(&self, c: ConstraintId) -> impl Iterator<Item = (VarId, f64)> + '_ {
        self.cons[c.0]
            .terms
            .iter()
            .map(|&(v, coef)| (VarId(v), coef))
    }

    /// Comparison operator of a constraint.
    pub fn constraint_cmp(&self, c: ConstraintId) -> Cmp {
        self.cons[c.0].cmp
    }

    /// Right-hand side of a constraint.
    pub fn constraint_rhs(&self, c: ConstraintId) -> f64 {
        self.cons[c.0].rhs
    }

    /// Validate structural sanity: finite objective coefficients, non-NaN
    /// bounds with a non-empty box, finite rhs/coefficients, known variable
    /// ids, non-inverted bounds.
    pub fn validate(&self) -> Result<(), LpError> {
        for (i, v) in self.vars.iter().enumerate() {
            if !v.obj.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: "objective coefficient",
                });
            }
            if v.lb.is_nan() || v.ub.is_nan() {
                return Err(LpError::NonFiniteInput {
                    what: "variable bound",
                });
            }
            // `lb = +inf` / `ub = -inf` make the box empty without tripping
            // the `lb > ub` comparison when the other bound is also infinite.
            if v.lb == f64::INFINITY || v.ub == f64::NEG_INFINITY || v.lb > v.ub {
                return Err(LpError::InvertedBounds {
                    var: i,
                    lb: v.lb,
                    ub: v.ub,
                });
            }
        }
        for c in &self.cons {
            if !c.rhs.is_finite() {
                return Err(LpError::NonFiniteInput {
                    what: "constraint rhs",
                });
            }
            for &(v, coef) in &c.terms {
                if v >= self.vars.len() {
                    return Err(LpError::UnknownVariable { var: v });
                }
                if !coef.is_finite() {
                    return Err(LpError::NonFiniteInput {
                        what: "constraint coefficient",
                    });
                }
            }
        }
        Ok(())
    }

    /// Objective value of an assignment (no feasibility checking).
    pub fn objective_of(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.obj * xi).sum()
    }

    /// Maximum constraint / bound violation of an assignment.
    ///
    /// Returns `0.0` for feasible points; used pervasively in tests to check
    /// solver output against the *original* model rather than any derived
    /// standard form.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst = 0.0f64;
        for (v, &xi) in self.vars.iter().zip(x) {
            if v.lb.is_finite() {
                worst = worst.max(v.lb - xi);
            }
            if v.ub.is_finite() {
                worst = worst.max(xi - v.ub);
            }
        }
        for c in &self.cons {
            let lhs: f64 = c.terms.iter().map(|&(v, coef)| coef * x[v]).sum();
            let viol = match c.cmp {
                Cmp::Le => lhs - c.rhs,
                Cmp::Ge => c.rhs - lhs,
                Cmp::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// True if `x` satisfies every constraint and bound within `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.vars.len() && self.max_violation(x) <= tol
    }

    /// Solve with the production solver ([`crate::revised::RevisedSimplex`])
    /// under default options.
    pub fn solve(&self) -> Result<Solution, LpError> {
        crate::revised::RevisedSimplex::default().solve(self)
    }

    /// Solve with the production solver, seeding the simplex from a prior
    /// basis. `None` (or an empty / unusable warm start) behaves exactly
    /// like [`Model::solve`]; the warm start can only change the pivot
    /// path, never the optimum. The returned solution carries its own
    /// basis via [`Solution::warm_start`] for chaining.
    pub fn solve_warm(&self, warm: Option<&crate::basis::WarmStart>) -> Result<Solution, LpError> {
        crate::revised::RevisedSimplex::default().solve_with_warm_start(self, warm)
    }

    /// Solve with the dense tableau oracle (small models only).
    pub fn solve_dense(&self) -> Result<Solution, LpError> {
        crate::dense::DenseSimplex::default().solve(self)
    }

    /// Quick feasibility probe: does any feasible point exist? Runs phase 1
    /// only (by solving with a zero objective).
    pub fn has_feasible_point(&self) -> Result<bool, LpError> {
        let mut probe = self.clone();
        for v in &mut probe.vars {
            v.obj = 0.0;
        }
        match probe.solve() {
            Ok(sol) => Ok(self.is_feasible(sol.values(), 10.0 * TOL)),
            Err(LpError::Infeasible) => Ok(false),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_introspect() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 2.5);
        let y = m.add_var("y", -1.0, f64::INFINITY, -1.0);
        let c = m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Le, 3.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.var_name(x), "x");
        assert_eq!(m.var_bounds(y), (-1.0, f64::INFINITY));
        assert_eq!(m.var_obj(x), 2.5);
        assert_eq!(c.index(), 0);
        assert_eq!(x.index(), 0);
        m.validate().unwrap();
    }

    #[test]
    fn validate_catches_inverted_bounds() {
        let mut m = Model::minimize();
        m.add_var("x", 2.0, 1.0, 0.0);
        assert!(matches!(
            m.validate(),
            Err(LpError::InvertedBounds { var: 0, .. })
        ));
    }

    #[test]
    fn validate_catches_unknown_var() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        let mut m2 = Model::minimize();
        m2.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        assert!(matches!(
            m2.validate(),
            Err(LpError::UnknownVariable { var: 0 })
        ));
    }

    #[test]
    fn validate_catches_nan_objective() {
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 1.0, f64::NAN);
        assert!(matches!(
            m.validate(),
            Err(LpError::NonFiniteInput {
                what: "objective coefficient"
            })
        ));
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 1.0, f64::INFINITY);
        assert!(matches!(
            m.validate(),
            Err(LpError::NonFiniteInput {
                what: "objective coefficient"
            })
        ));
    }

    #[test]
    fn validate_catches_nan_bounds() {
        let mut m = Model::minimize();
        m.add_var("x", f64::NAN, 1.0, 0.0);
        assert!(matches!(
            m.validate(),
            Err(LpError::NonFiniteInput {
                what: "variable bound"
            })
        ));
        let mut m = Model::minimize();
        m.add_var("x", 0.0, f64::NAN, 0.0);
        assert!(matches!(
            m.validate(),
            Err(LpError::NonFiniteInput {
                what: "variable bound"
            })
        ));
    }

    #[test]
    fn validate_catches_empty_infinite_boxes() {
        // lb = +inf with ub = +inf: no finite point exists, but lb > ub is
        // false, so this needs its own check.
        let mut m = Model::minimize();
        m.add_var("x", f64::INFINITY, f64::INFINITY, 0.0);
        assert!(matches!(
            m.validate(),
            Err(LpError::InvertedBounds { var: 0, .. })
        ));
        let mut m = Model::minimize();
        m.add_var("x", f64::NEG_INFINITY, f64::NEG_INFINITY, 0.0);
        assert!(matches!(
            m.validate(),
            Err(LpError::InvertedBounds { var: 0, .. })
        ));
    }

    #[test]
    fn solve_rejects_invalid_models_instead_of_panicking() {
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 1.0, f64::NAN);
        assert!(matches!(m.solve(), Err(LpError::NonFiniteInput { .. })));
    }

    #[test]
    fn row_accessors_expose_constraints() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        let c = m.add_constraint([(x, 2.0), (y, -1.0)], Cmp::Ge, 0.5);
        assert_eq!(m.constraint_ids().count(), 1);
        assert_eq!(m.var_ids().collect::<Vec<_>>(), vec![x, y]);
        assert_eq!(m.constraint_cmp(c), Cmp::Ge);
        assert_eq!(m.constraint_rhs(c), 0.5);
        assert_eq!(
            m.constraint_terms(c).collect::<Vec<_>>(),
            vec![(x, 2.0), (y, -1.0)]
        );
    }

    #[test]
    fn constraint_names_roundtrip() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let c0 = m.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        let c1 = m.add_constraint([(x, 1.0)], Cmp::Ge, 0.0);
        assert_eq!(m.constraint_name(c0), "");
        m.name_constraint(c0, "cap_row");
        assert_eq!(m.constraint_name(c0), "cap_row");
        assert_eq!(m.constraint_name(c1), "");
    }

    #[test]
    fn validate_catches_nonfinite_rhs() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, f64::INFINITY);
        assert!(matches!(m.validate(), Err(LpError::NonFiniteInput { .. })));
    }

    #[test]
    fn violation_measures_all_constraint_kinds() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 0.5);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.2);
        m.add_constraint([(x, 2.0)], Cmp::Eq, 0.6);
        assert!(m.is_feasible(&[0.3], 1e-9));
        assert!(!m.is_feasible(&[0.8], 1e-9)); // violates Le and Eq
        assert!((m.max_violation(&[0.8]) - 1.0).abs() < 1e-12); // |1.6-0.6| = 1.0
    }

    #[test]
    fn objective_of_sums_terms() {
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 1.0, 3.0);
        m.add_var("y", 0.0, 1.0, -2.0);
        assert!((m.objective_of(&[1.0, 0.5]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_column_appends_into_existing_rows() {
        // min 3x s.t. x ≥ 2 → 6; appending y (cost 1, same row) → y=2, obj 2.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 3.0);
        let c = m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert!((m.solve().unwrap().objective() - 6.0).abs() < 1e-6);
        let y = m.add_column("y", 0.0, 10.0, 1.0, [(c, 1.0)]);
        m.validate().unwrap();
        let sol = m.solve().unwrap();
        assert!((sol.objective() - 2.0).abs() < 1e-6);
        assert!((sol.value_of(y) - 2.0).abs() < 1e-6);
        assert!(sol.value_of(x).abs() < 1e-6);
        assert_eq!(m.num_vars(), 2);
    }

    #[test]
    fn add_column_then_warm_resolve_matches_cold() {
        // The appended column must survive a warm re-solve from the
        // incumbent basis (it starts nonbasic at its lower bound).
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let r0 = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let r1 = m.add_constraint([(x, 1.0)], Cmp::Le, 8.0);
        m.name_constraint(r0, "demand");
        m.name_constraint(r1, "cap");
        let sol = m.solve().unwrap();
        let basis = sol.warm_start().cloned().unwrap();
        m.add_column("y", 0.0, 10.0, 1.0, [(r0, 1.0), (r1, 1.0)]);
        let warm = m.solve_warm(Some(&basis)).unwrap();
        let cold = m.solve().unwrap();
        assert!((warm.objective() - cold.objective()).abs() < 1e-9);
        assert!((warm.objective() - 4.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "unknown constraint")]
    fn add_column_rejects_unknown_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        m.add_column("y", 0.0, 1.0, 0.0, [(ConstraintId(3), 1.0)]);
    }

    #[test]
    fn duplicate_terms_allowed_in_builder() {
        // duplicates must be summed at lowering time, so feasibility checks
        // must treat (x,1.0),(x,1.0) as 2x.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        assert!((sol.value_of(x) - 2.0).abs() < 1e-6);
    }
}
