//! Sparse LU factorization of the simplex basis.
//!
//! The scheduling LPs produce bases that are overwhelmingly sparse: most
//! basic columns are slacks (unit vectors) and the structural columns have
//! a handful of nonzeros each. A dense factorization pays `O(m³)` and
//! `O(m²)` memory regardless; this module factorizes in time roughly
//! proportional to the fill-in it creates.
//!
//! Design:
//!
//! * **Right-looking elimination with Markowitz ordering.** At each step
//!   the pivot `(i, j)` minimizes `(r_i − 1)(c_j − 1)` (the worst-case
//!   fill) among entries passing relative threshold pivoting
//!   (`|a_ij| ≥ 0.1 · max |a_·j|`), which balances sparsity against
//!   numerical stability — the classical compromise from Markowitz 1957 /
//!   Suhl & Suhl 1990.
//! * **Factors stored sparsely.** `L` is a sequence of elimination steps
//!   (pivot row + multiplier list), `U` a per-step column of upper
//!   entries; FTRAN/BTRAN walk only stored nonzeros.
//! * **Caller-owned workspaces.** Both the factorization input (the basis
//!   columns) and the solve scratch are caller-provided and reused across
//!   refactorizations, so the steady-state solver does not allocate here.

use crate::error::LpError;

/// Relative threshold for Markowitz pivot admissibility: a candidate must
/// be at least this fraction of the largest magnitude in its column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// Sparse `B = L·U` factorization (row and column permutations implicit in
/// the pivot order).
///
/// Both factors are stored *flat-packed* (CSR-style pointer/index/value
/// triples) rather than as per-step `Vec<Vec<_>>`: FTRAN and BTRAN walk
/// every stored nonzero once per solve, and with one contiguous allocation
/// per factor that walk is a linear scan instead of a pointer chase
/// through `m` separate heap blocks. Dual-simplex pivots are BTRAN-heavy,
/// which makes the packing measurable.
#[derive(Debug, Clone)]
pub struct SparseLu {
    m: usize,
    /// `prow[k]` = original row pivoted at elimination step `k`.
    prow: Vec<usize>,
    /// `pcol[k]` = basis *position* (column index) pivoted at step `k`.
    pcol: Vec<usize>,
    /// `row_of_pos[p]` = pivot row assigned to basis position `p`.
    row_of_pos: Vec<usize>,
    /// Step `k`'s L multipliers live at `lptr[k]..lptr[k+1]` in
    /// `lrow`/`lval`; applying the step does `v[lrow[e]] -= lval[e] * t`.
    lptr: Vec<usize>,
    lrow: Vec<usize>,
    lval: Vec<f64>,
    /// Step `k`'s upper entries live at `uptr[k]..uptr[k+1]` in
    /// `ustep`/`uval`: `ustep[e]` is an earlier step `k'` with
    /// `U[k'][k] = uval[e]`; the diagonal lives in `udiag`.
    uptr: Vec<usize>,
    ustep: Vec<usize>,
    uval: Vec<f64>,
    udiag: Vec<f64>,
    nnz: usize,
}

impl SparseLu {
    /// Factorize the basis whose columns are given in `cols` (sparse
    /// `(row, value)` lists, one per basis position). `cols` is consumed
    /// as elimination workspace: on return every column is empty, ready
    /// to be refilled for the next refactorization.
    pub fn factorize(
        m: usize,
        cols: &mut [Vec<(usize, f64)>],
        pivot_tol: f64,
    ) -> Result<Self, LpError> {
        assert_eq!(cols.len(), m);
        let mut lu = SparseLu {
            m,
            prow: Vec::with_capacity(m),
            pcol: Vec::with_capacity(m),
            row_of_pos: vec![usize::MAX; m],
            lptr: vec![0],
            lrow: Vec::new(),
            lval: Vec::new(),
            uptr: vec![0],
            ustep: Vec::new(),
            uval: Vec::new(),
            udiag: Vec::with_capacity(m),
            nnz: 0,
        };
        // Upper entries accumulate per *column position* during
        // elimination and are remapped to steps at the end.
        let mut upper: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];

        let mut col_active = vec![true; m];
        let mut row_active = vec![true; m];
        // row_count[r] = number of active columns containing row r
        // (kept exact); row_cols[r] = columns that may contain row r
        // (lazily pruned).
        let mut row_count = vec![0usize; m];
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, _) in col {
                assert!(r < m, "column {j}: row {r} out of range");
                row_count[r] += 1;
                row_cols[r].push(j);
            }
        }

        // Dense scratch for the column updates.
        let mut acc = vec![0.0f64; m];
        let mut lmults: Vec<(usize, f64)> = Vec::new();

        for _step in 0..m {
            // --- pivot search ------------------------------------------
            let mut best: Option<(usize, usize, f64, usize)> = None; // (row, col, val, cost)
            for (j, col) in cols.iter().enumerate() {
                if !col_active[j] {
                    continue;
                }
                let colmax = col.iter().map(|&(_, v)| v.abs()).fold(0.0f64, f64::max);
                if colmax <= pivot_tol {
                    continue;
                }
                let admit = MARKOWITZ_THRESHOLD * colmax;
                let ccount = col.len();
                for &(r, v) in col {
                    if v.abs() < admit || v.abs() <= pivot_tol {
                        continue;
                    }
                    let cost = (row_count[r] - 1) * (ccount - 1);
                    let better = match best {
                        None => true,
                        // On Markowitz ties prefer the larger pivot.
                        Some((_, _, bv, bcost)) => {
                            cost < bcost || (cost == bcost && v.abs() > bv.abs())
                        }
                    };
                    if better {
                        best = Some((r, j, v, cost));
                    }
                }
                // A zero-cost pivot cannot be beaten; stop searching.
                if matches!(best, Some((_, _, _, 0))) {
                    break;
                }
            }
            let Some((pr, pc, pv, _)) = best else {
                return Err(LpError::SingularBasis);
            };
            let k = lu.prow.len();
            lu.prow.push(pr);
            lu.pcol.push(pc);
            lu.row_of_pos[pc] = pr;
            lu.udiag.push(pv);

            // --- build L multipliers from the pivot column ---------------
            lmults.clear();
            for &(r, v) in &cols[pc] {
                if r != pr {
                    lmults.push((r, v / pv));
                    // Pivot column leaves the active set: its rows lose one.
                    row_count[r] -= 1;
                }
            }
            cols[pc].clear();
            col_active[pc] = false;
            row_active[pr] = false;

            // --- eliminate the pivot row from the other active columns ---
            // Take the candidate list to appease the borrow checker; it is
            // rebuilt below only for rows gaining fill-in.
            let candidates = std::mem::take(&mut row_cols[pr]);
            for &j in &candidates {
                if !col_active[j] {
                    continue;
                }
                // Find the pivot-row entry (lazy candidate lists may hold
                // stale columns that no longer touch this row).
                let Some(pos) = cols[j].iter().position(|&(r, _)| r == pr) else {
                    continue;
                };
                let uval = cols[j][pos].1;
                upper[j].push((k, uval));
                cols[j].swap_remove(pos);
                row_count[pr] = row_count[pr].saturating_sub(1);
                if lmults.is_empty() || uval == 0.0 {
                    continue;
                }
                // Scatter, update, gather.
                for &(r, v) in &cols[j] {
                    acc[r] = v;
                }
                for &(r, l) in &lmults {
                    let before = acc[r];
                    let after = before - l * uval;
                    if before == 0.0 && after != 0.0 {
                        // Fill-in: row r gains column j.
                        let present = cols[j].iter().any(|&(rr, _)| rr == r);
                        if !present {
                            row_count[r] += 1;
                            row_cols[r].push(j);
                            cols[j].push((r, 0.0));
                        }
                    }
                    acc[r] = after;
                }
                // Gather back, dropping exact zeros.
                let mut w = 0;
                for i in 0..cols[j].len() {
                    let (r, _) = cols[j][i];
                    let v = acc[r];
                    acc[r] = 0.0;
                    if v != 0.0 {
                        cols[j][w] = (r, v);
                        w += 1;
                    } else {
                        row_count[r] = row_count[r].saturating_sub(1);
                    }
                }
                cols[j].truncate(w);
            }

            lu.nnz += 1 + lmults.len() + upper[pc].len();
            for &(r, l) in &lmults {
                lu.lrow.push(r);
                lu.lval.push(l);
            }
            lu.lptr.push(lu.lrow.len());
            lmults.clear();
        }

        // Pack upper entries, remapped from column positions to
        // elimination steps.
        for k in 0..m {
            for &(k2, u) in &upper[lu.pcol[k]] {
                lu.ustep.push(k2);
                lu.uval.push(u);
            }
            lu.uptr.push(lu.ustep.len());
        }
        Ok(lu)
    }

    /// Dimension of the factorized basis.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// Stored nonzeros in `L` and `U` (fill-in diagnostic).
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// The pivot row assigned to basis position `pos` (used by warm-start
    /// basis repair to know which row a replacement unit column must
    /// cover).
    pub fn pivot_row(&self, pos: usize) -> usize {
        self.row_of_pos[pos]
    }

    /// Solve `B x = v` in place. On entry `v` is indexed by *row*; on exit
    /// it is indexed by *basis position* (matching the dense backend's
    /// convention). `scratch` must have length `m`.
    ///
    /// The forward pass runs guarded (skipping steps whose pivot value is
    /// exactly zero) while the solve vector stays sparse, and switches to
    /// an unguarded scan once the tracked nonzero count passes a quarter
    /// of the rows: on a densified vector the zero check is pure
    /// branch-miss cost. The switch cannot change the result — a skipped
    /// step subtracts exact zeros.
    pub fn solve_in_place(&self, v: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        debug_assert_eq!(scratch.len(), m);
        // Forward: L z = v, in original row space.
        let window = m / 4;
        let mut live = v.iter().filter(|&&x| x != 0.0).count();
        let mut k = 0usize;
        while k < m && live <= window {
            let t = v[self.prow[k]];
            if t != 0.0 {
                for e in self.lptr[k]..self.lptr[k + 1] {
                    v[self.lrow[e]] -= self.lval[e] * t;
                }
                // Upper bound on the fill the step produced; an
                // overestimate only flips to the dense scan early.
                live += self.lptr[k + 1] - self.lptr[k];
            }
            k += 1;
        }
        while k < m {
            let t = v[self.prow[k]];
            for e in self.lptr[k]..self.lptr[k + 1] {
                v[self.lrow[e]] -= self.lval[e] * t;
            }
            k += 1;
        }
        // Backward: U x = z, in step space (z_k lives at v[prow[k]]).
        for k in (0..m).rev() {
            let xk = v[self.prow[k]] / self.udiag[k];
            v[self.prow[k]] = xk;
            if xk != 0.0 {
                for e in self.uptr[k]..self.uptr[k + 1] {
                    v[self.prow[self.ustep[e]]] -= self.uval[e] * xk;
                }
            }
        }
        // Permute step space -> basis positions.
        for k in 0..m {
            scratch[self.pcol[k]] = v[self.prow[k]];
        }
        v.copy_from_slice(scratch);
    }

    /// Solve `Bᵀ y = v` in place. On entry `v` is indexed by *basis
    /// position*; on exit by *row* (again matching the dense backend).
    /// `scratch` must have length `m`.
    ///
    /// BTRAN is the dual simplex's hot path (`ρ = B⁻ᵀe_r` every pivot),
    /// and a unit right-hand side leaves every step before the pivot's
    /// own trivially zero: the forward pass skips whole steps until the
    /// first nonzero input appears, which is exact because all earlier
    /// intermediate values are zero too.
    pub fn solve_transpose_in_place(&self, v: &mut [f64], scratch: &mut [f64]) {
        let m = self.m;
        debug_assert_eq!(v.len(), m);
        debug_assert_eq!(scratch.len(), m);
        // Forward: Uᵀ w = v, in step order (scratch holds w).
        let mut seen_nonzero = false;
        for k in 0..m {
            let x = v[self.pcol[k]];
            if !seen_nonzero {
                if x == 0.0 {
                    scratch[k] = 0.0;
                    continue;
                }
                seen_nonzero = true;
            }
            let mut s = x;
            for e in self.uptr[k]..self.uptr[k + 1] {
                s -= self.uval[e] * scratch[self.ustep[e]];
            }
            scratch[k] = s / self.udiag[k];
        }
        // Backward: Lᵀ y = w, writing y into v by original row.
        for k in (0..m).rev() {
            let mut s = scratch[k];
            for e in self.lptr[k]..self.lptr[k + 1] {
                s -= self.lval[e] * v[self.lrow[e]];
            }
            v[self.prow[k]] = s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::DenseLu;

    fn to_sparse_cols(n: usize, a: &[f64]) -> Vec<Vec<(usize, f64)>> {
        (0..n)
            .map(|j| {
                (0..n)
                    .filter_map(|i| {
                        let v = a[i * n + j];
                        (v != 0.0).then_some((i, v))
                    })
                    .collect()
            })
            .collect()
    }

    fn ftran(lu: &SparseLu, rhs: &[f64]) -> Vec<f64> {
        let mut v = rhs.to_vec();
        let mut s = vec![0.0; rhs.len()];
        lu.solve_in_place(&mut v, &mut s);
        v
    }

    fn btran(lu: &SparseLu, rhs: &[f64]) -> Vec<f64> {
        let mut v = rhs.to_vec();
        let mut s = vec![0.0; rhs.len()];
        lu.solve_transpose_in_place(&mut v, &mut s);
        v
    }

    #[test]
    fn solves_identity() {
        let mut cols = to_sparse_cols(2, &[1.0, 0.0, 0.0, 1.0]);
        let lu = SparseLu::factorize(2, &mut cols, 1e-9).unwrap();
        assert_eq!(ftran(&lu, &[3.0, -4.0]), vec![3.0, -4.0]);
        assert_eq!(btran(&lu, &[5.0, 6.0]), vec![5.0, 6.0]);
    }

    #[test]
    fn solves_permutation() {
        // B = [[0,1],[1,0]] — forces off-diagonal pivots.
        let mut cols = to_sparse_cols(2, &[0.0, 1.0, 1.0, 0.0]);
        let lu = SparseLu::factorize(2, &mut cols, 1e-9).unwrap();
        assert_eq!(ftran(&lu, &[7.0, 9.0]), vec![9.0, 7.0]);
    }

    #[test]
    fn singular_is_rejected() {
        let mut cols = to_sparse_cols(2, &[1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            SparseLu::factorize(2, &mut cols, 1e-9),
            Err(LpError::SingularBasis)
        ));
    }

    #[test]
    fn pivot_rows_cover_all_rows_once() {
        let a = [2.0, 1.0, 0.5, 0.0, 3.0, 1.0, 1.0, 0.0, 4.0];
        let mut cols = to_sparse_cols(3, &a);
        let lu = SparseLu::factorize(3, &mut cols, 1e-9).unwrap();
        let mut seen = [false; 3];
        for p in 0..3 {
            let r = lu.pivot_row(p);
            assert!(!seen[r]);
            seen[r] = true;
        }
    }

    #[test]
    fn random_roundtrip_matches_dense_lu() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for n in [1usize, 2, 3, 5, 17, 40, 80] {
            // Sparse-ish random matrix with a boosted diagonal.
            let mut a = vec![0.0f64; n * n];
            for i in 0..n {
                for j in 0..n {
                    if i == j || rng.gen_bool(0.15) {
                        a[i * n + j] = rng.gen_range(-1.0..1.0);
                    }
                }
                a[i * n + i] += 3.0;
            }
            let dense = DenseLu::factorize(n, a.clone(), 1e-12).unwrap();
            let mut cols = to_sparse_cols(n, &a);
            let sparse = SparseLu::factorize(n, &mut cols, 1e-12).unwrap();
            // Workspace columns are drained by the factorization.
            assert!(cols.iter().all(Vec::is_empty));

            let rhs: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut want = rhs.clone();
            dense.solve_in_place(&mut want);
            let got = ftran(&sparse, &rhs);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-8, "n={n}: ftran {g} vs {w}");
            }

            let mut want_t = rhs.clone();
            dense.solve_transpose_in_place(&mut want_t);
            let got_t = btran(&sparse, &rhs);
            for (g, w) in got_t.iter().zip(&want_t) {
                assert!((g - w).abs() < 1e-8, "n={n}: btran {g} vs {w}");
            }
        }
    }

    #[test]
    fn unit_vectors_roundtrip_through_sparse_guards() {
        // Unit right-hand sides keep both solves inside the guarded sparse
        // phase (BTRAN skips every step before the pivot's own; FTRAN skips
        // steps with a zero pivot value) — the exact shape every dual pivot
        // produces. Results must still match the dense backend.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(11);
        let n = 33;
        let mut a = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                if i == j || rng.gen_bool(0.12) {
                    a[i * n + j] = rng.gen_range(-1.0..1.0);
                }
            }
            a[i * n + i] += 3.0;
        }
        let dense = DenseLu::factorize(n, a.clone(), 1e-12).unwrap();
        let mut cols = to_sparse_cols(n, &a);
        let sparse = SparseLu::factorize(n, &mut cols, 1e-12).unwrap();
        for r in 0..n {
            let mut e = vec![0.0; n];
            e[r] = 1.0;

            let mut want = e.clone();
            dense.solve_in_place(&mut want);
            let got = ftran(&sparse, &e);
            for (g, w) in got.iter().zip(&want) {
                assert!((g - w).abs() < 1e-8, "r={r}: ftran {g} vs {w}");
            }

            let mut want_t = e.clone();
            dense.solve_transpose_in_place(&mut want_t);
            let got_t = btran(&sparse, &e);
            for (g, w) in got_t.iter().zip(&want_t) {
                assert!((g - w).abs() < 1e-8, "r={r}: btran {g} vs {w}");
            }
        }
    }

    #[test]
    fn unit_slack_heavy_basis_has_no_fill() {
        // A basis that is mostly unit columns (the common simplex case):
        // factorization must not blow up the nonzero count.
        let m = 50;
        let mut cols: Vec<Vec<(usize, f64)>> = (0..m).map(|i| vec![(i, 1.0)]).collect();
        cols[3] = vec![(3, 2.0), (7, 1.0), (19, -1.0)];
        cols[7] = vec![(7, 1.5), (3, 0.5)];
        let lu = SparseLu::factorize(m, &mut cols, 1e-9).unwrap();
        assert!(lu.nnz() <= 56, "nnz {}", lu.nnz());
        let mut rhs = vec![1.0; m];
        let mut s = vec![0.0; m];
        lu.solve_in_place(&mut rhs, &mut s);
    }
}
