//! Presolve: cheap model reductions applied before the simplex runs.
//!
//! The scheduling LPs routinely contain structure a solver shouldn't waste
//! pivots on: variables fixed by their bounds (`lb == ub` — e.g. pinned
//! placements), singleton rows (`a·x ≤ b` — pure bound tightenings), empty
//! rows, rows no point of the variable box can violate (redundant capacity
//! on barely-loaded machines), and *dominated columns* — the algebraic form
//! of the paper's Fig-1 dominance argument, where an arc whose cost can
//! only hurt the objective and whose removal cannot tighten any constraint
//! is pinned to a bound outright. Presolve eliminates them and returns a
//! [`Restore`] that maps a reduced solution — values, duals, and warm-start
//! basis — back onto the original model.
//!
//! Two option sets matter in practice: [`PresolveOptions::default`] turns
//! everything on and is right when only primal values are consumed;
//! [`certified_options`] disables singleton-row elimination because a bound
//! tightened out of a row cannot be represented in the restored duals (the
//! dropped row gets multiplier zero, but a tightened bound active at the
//! optimum needs that row's multiplier to certify), and the epoch pipeline
//! KKT-certifies every solve.
//!
//! ```
//! use lips_lp::{Model, Cmp};
//! use lips_lp::presolve::presolve;
//!
//! let mut m = Model::minimize();
//! let x = m.add_var("x", 2.0, 2.0, 5.0);          // fixed
//! let y = m.add_var("y", 0.0, 10.0, 1.0);
//! m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 6.0);
//! let (reduced, restore) = presolve(&m).unwrap();
//! assert_eq!(reduced.num_vars(), 1);              // x substituted out
//! let sol = reduced.solve().unwrap();
//! let full = restore.restore(sol.values());
//! assert!((full[0] - 2.0).abs() < 1e-9);
//! assert!((full[1] - 4.0).abs() < 1e-9);
//! ```

use crate::basis::{BasisStatus, WarmStart};
use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};
use crate::solution::Solution;
use crate::{ConstraintId, VarId, TOL};

/// Which reductions [`presolve_with`] applies.
#[derive(Debug, Clone, Copy)]
pub struct PresolveOptions {
    /// Turn singleton rows (`a·x cmp b`) into variable bounds and drop
    /// them. Not certification-safe: see [`certified_options`].
    pub singleton_rows: bool,
    /// Drop rows that no point of the variable box can violate (and detect
    /// rows no point can *satisfy* as infeasibility). A dropped row's
    /// restored dual is zero, which is exact: a never-binding row supports
    /// a zero multiplier in any KKT certificate.
    pub redundant_rows: bool,
    /// Fix columns whose objective coefficient pushes them toward a bound
    /// and whose constraint coefficients all push the same way (the Fig-1
    /// dominance calculus in LP form). Fixing is certification-safe: the
    /// sign structure guarantees the column's reduced cost under any dual
    /// feasible multiplier, so the fixed bound is where the optimum puts it
    /// anyway.
    pub dominated_columns: bool,
}

impl Default for PresolveOptions {
    fn default() -> Self {
        PresolveOptions {
            singleton_rows: true,
            redundant_rows: true,
            dominated_columns: true,
        }
    }
}

/// The reductions that compose with KKT certification of the *original*
/// model: everything except singleton-row elimination.
///
/// A singleton row dropped into a variable bound leaves no trace in the
/// restored duals; if the tightened bound is active at the optimum, the
/// original model's stationarity needs a nonzero multiplier on that row,
/// which the zero-filled restoration cannot provide. Redundant rows and
/// dominated columns carry their own zero-/sign-argument certificates.
#[must_use]
pub fn certified_options() -> PresolveOptions {
    PresolveOptions {
        singleton_rows: false,
        redundant_rows: true,
        dominated_columns: true,
    }
}

/// Maps a reduced solution back to the original variable space.
#[derive(Debug, Clone)]
pub struct Restore {
    /// For each original variable: `Ok(reduced index)` if it survived,
    /// `Err(fixed value)` if presolve fixed it.
    mapping: Vec<Result<usize, f64>>,
    /// For each original row: `Some(reduced index)` if it survived, `None`
    /// if presolve dropped it.
    row_mapping: Vec<Option<usize>>,
    /// Objective contribution of the eliminated variables.
    pub objective_offset: f64,
}

impl Restore {
    /// Expand reduced-space values into original-space values.
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        self.mapping
            .iter()
            .map(|m| match m {
                Ok(idx) => reduced[*idx],
                Err(v) => *v,
            })
            .collect()
    }

    /// Expand reduced-space row duals into original-space duals. Dropped
    /// rows get multiplier zero — exact for redundant rows (never binding)
    /// and for empty rows, approximate for singleton rows whose tightened
    /// bound binds (hence [`certified_options`] keeps those).
    pub fn restore_duals(&self, reduced: &[f64]) -> Vec<f64> {
        self.row_mapping
            .iter()
            .map(|m| m.map_or(0.0, |idx| reduced[idx]))
            .collect()
    }

    /// Number of variables presolve eliminated.
    pub fn eliminated(&self) -> usize {
        self.mapping.iter().filter(|m| m.is_err()).count()
    }

    /// Number of rows presolve dropped (empty, singleton, redundant).
    pub fn dropped_rows(&self) -> usize {
        self.row_mapping.iter().filter(|m| m.is_none()).count()
    }

    /// Total reductions: eliminated variables plus dropped rows.
    pub fn removed(&self) -> usize {
        self.eliminated() + self.dropped_rows()
    }

    /// Project a warm start for the *original* model onto the reduced one:
    /// statuses of eliminated variables and dropped rows are discarded,
    /// positional (`"#i"`) row keys are renumbered.
    pub fn map_warm_start(&self, original: &Model, ws: &WarmStart) -> WarmStart {
        let mut out = WarmStart::new();
        for (i, m) in self.mapping.iter().enumerate() {
            if m.is_ok() {
                let name = original.var_name(VarId(i));
                if let Some(st) = ws.var(name) {
                    out.set_var(name, st);
                }
            }
        }
        for (ri, m) in self.row_mapping.iter().enumerate() {
            let Some(new_idx) = m else { continue };
            let name = original.constraint_name(ConstraintId(ri));
            let st = if name.is_empty() {
                ws.row(&format!("#{ri}"))
            } else {
                ws.row(name)
            };
            if let Some(st) = st {
                if name.is_empty() {
                    out.set_row(format!("#{new_idx}"), st);
                } else {
                    out.set_row(name, st);
                }
            }
        }
        out
    }

    /// Lift a warm start produced on the reduced model back to the
    /// original: eliminated variables rest at the bound they were fixed
    /// to, dropped rows' slacks are basic (the rows are slack by
    /// construction), positional row keys are renumbered back.
    pub fn unmap_warm_start(&self, original: &Model, ws: &WarmStart) -> WarmStart {
        let mut out = WarmStart::new();
        for (i, m) in self.mapping.iter().enumerate() {
            let name = original.var_name(VarId(i));
            match m {
                Ok(_) => {
                    if let Some(st) = ws.var(name) {
                        out.set_var(name, st);
                    }
                }
                Err(v) => {
                    let (lo, hi) = original.var_bounds(VarId(i));
                    let st = if hi.is_finite() && (v - hi).abs() <= (v - lo).abs() {
                        BasisStatus::AtUpper
                    } else {
                        BasisStatus::AtLower
                    };
                    out.set_var(name, st);
                }
            }
        }
        for (ri, m) in self.row_mapping.iter().enumerate() {
            let name = original.constraint_name(ConstraintId(ri));
            let key = if name.is_empty() {
                format!("#{ri}")
            } else {
                name.to_string()
            };
            match m {
                Some(new_idx) => {
                    let st = if name.is_empty() {
                        ws.row(&format!("#{new_idx}"))
                    } else {
                        ws.row(name)
                    };
                    if let Some(st) = st {
                        out.set_row(key, st);
                    }
                }
                None => out.set_row(key, BasisStatus::Basic),
            }
        }
        out
    }

    /// Lift a full reduced-model [`Solution`] back to the original model:
    /// values and duals expanded, objective offset re-added, solve stats
    /// carried through, and the warm start unmapped so the caller can seed
    /// the next epoch with an original-space basis.
    pub fn restore_solution(&self, original: &Model, sol: &Solution) -> Solution {
        let values = self.restore(sol.values());
        let duals = self.restore_duals(sol.duals());
        let mut out = Solution::new(
            sol.objective() + self.objective_offset,
            values,
            duals,
            sol.iterations(),
        )
        .with_stats(*sol.stats());
        if let Some(ws) = sol.warm_start() {
            out = out.with_warm_start(self.unmap_warm_start(original, ws));
        }
        out
    }
}

/// Apply all presolve reductions (see [`PresolveOptions::default`]).
/// Returns the reduced model plus the restore map, or an error if a
/// reduction proves the model infeasible outright.
pub fn presolve(model: &Model) -> Result<(Model, Restore), LpError> {
    presolve_with(model, PresolveOptions::default())
}

/// Apply the selected presolve reductions.
#[allow(clippy::too_many_lines)] // the passes share working state; splitting obscures the order
pub fn presolve_with(model: &Model, opts: PresolveOptions) -> Result<(Model, Restore), LpError> {
    model.validate()?;
    let n = model.num_vars();

    // Working bounds, tightened by singleton rows and dominance fixing.
    let mut lb: Vec<f64> = (0..n).map(|i| model.var_bounds(VarId(i)).0).collect();
    let mut ub: Vec<f64> = (0..n).map(|i| model.var_bounds(VarId(i)).1).collect();

    // Pass 1: merge duplicate terms, drop empty rows, and (optionally)
    // fold singleton rows into bounds. Merged terms are kept for the later
    // passes.
    let mut keep_row = vec![true; model.cons.len()];
    let mut merged: Vec<Vec<(usize, f64)>> = Vec::with_capacity(model.cons.len());
    for (ri, con) in model.cons.iter().enumerate() {
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for &(v, c) in &con.terms {
            if c == 0.0 {
                continue;
            }
            match terms.iter_mut().find(|(tv, _)| *tv == v) {
                // lips-allow(float-accum-in-loop): duplicate-term merge in the model's fixed term order
                Some((_, tc)) => *tc += c,
                None => terms.push((v, c)),
            }
        }
        terms.retain(|&(_, c)| c != 0.0);
        match terms.len() {
            0 => {
                // Empty row: 0 cmp rhs must hold.
                let ok = match con.cmp {
                    Cmp::Le => 0.0 <= con.rhs + TOL,
                    Cmp::Ge => 0.0 >= con.rhs - TOL,
                    Cmp::Eq => con.rhs.abs() <= TOL,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                keep_row[ri] = false;
            }
            1 if opts.singleton_rows => {
                // Singleton: pure bound information.
                let (v, c) = terms[0];
                let bound = con.rhs / c;
                match (con.cmp, c > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => ub[v] = ub[v].min(bound),
                    (Cmp::Ge, true) | (Cmp::Le, false) => lb[v] = lb[v].max(bound),
                    (Cmp::Eq, _) => {
                        lb[v] = lb[v].max(bound);
                        ub[v] = ub[v].min(bound);
                    }
                }
                if lb[v] > ub[v] + TOL {
                    return Err(LpError::Infeasible);
                }
                keep_row[ri] = false;
            }
            _ => {}
        }
        merged.push(terms);
    }

    // Dominance pass: a column whose (minimization-sense) cost is strictly
    // positive, that appears in no equality row, with nonnegative
    // coefficients in every ≤ row and nonpositive in every ≥ row, has
    // reduced cost ≥ its objective cost under *any* dual feasible
    // multiplier (≤ duals are ≤ 0, ≥ duals are ≥ 0) — so every optimum
    // rests it at its lower bound. Symmetrically for strictly negative
    // cost at the upper bound. This is the LP form of the paper's Fig-1
    // arc dominance.
    if opts.dominated_columns {
        #[derive(Clone, Copy, Default)]
        struct ColFacts {
            eq: bool,
            le_pos: bool,
            le_neg: bool,
            ge_pos: bool,
            ge_neg: bool,
        }
        let mut facts = vec![ColFacts::default(); n];
        for (ri, terms) in merged.iter().enumerate() {
            if !keep_row[ri] {
                continue;
            }
            let cmp = model.cons[ri].cmp;
            for &(v, c) in terms {
                let f = &mut facts[v];
                match cmp {
                    Cmp::Eq => f.eq = true,
                    Cmp::Le => {
                        if c > 0.0 {
                            f.le_pos = true;
                        } else {
                            f.le_neg = true;
                        }
                    }
                    Cmp::Ge => {
                        if c > 0.0 {
                            f.ge_pos = true;
                        } else {
                            f.ge_neg = true;
                        }
                    }
                }
            }
        }
        let sense_mul = match model.sense() {
            Sense::Minimize => 1.0,
            Sense::Maximize => -1.0,
        };
        for v in 0..n {
            if (ub[v] - lb[v]).abs() <= TOL {
                continue; // already fixed
            }
            let f = facts[v];
            if f.eq {
                continue;
            }
            let chat = sense_mul * model.var_obj(VarId(v));
            if chat > TOL && lb[v].is_finite() && !f.le_neg && !f.ge_pos {
                ub[v] = lb[v];
            } else if chat < -TOL && ub[v].is_finite() && !f.le_pos && !f.ge_neg {
                lb[v] = ub[v];
            }
        }
    }

    // Pass 2: fixed variables (after tightening and dominance fixing).
    let mut mapping: Vec<Result<usize, f64>> = Vec::with_capacity(n);
    let mut objective_offset = 0.0;
    let mut next = 0usize;
    for i in 0..n {
        if (ub[i] - lb[i]).abs() <= TOL && lb[i].is_finite() {
            let v = (lb[i] + ub[i]) / 2.0;
            // lips-allow(float-accum-in-loop): fixed-variable offset summed in ascending index order
            objective_offset += model.var_obj(VarId(i)) * v;
            mapping.push(Err(v));
        } else {
            mapping.push(Ok(next));
            next += 1;
        }
    }

    // Build the reduced model. Variable and row names are preserved so
    // warm starts resolve across the reduction.
    let mut reduced = Model::new(model.sense());
    for i in 0..n {
        if mapping[i].is_ok() {
            reduced.add_var(
                model.var_name(VarId(i)).to_string(),
                lb[i],
                ub[i],
                model.var_obj(VarId(i)),
            );
        }
    }
    let mut row_mapping: Vec<Option<usize>> = vec![None; model.cons.len()];
    for (ri, con) in model.cons.iter().enumerate() {
        if !keep_row[ri] {
            continue;
        }
        let mut rhs = con.rhs;
        let mut survivors: Vec<(usize, f64)> = Vec::new();
        for &(v, c) in &merged[ri] {
            match mapping[v] {
                Ok(_) => survivors.push((v, c)),
                Err(fixed) => rhs -= c * fixed,
            }
        }
        let rtol = TOL * (1.0 + rhs.abs());
        if survivors.is_empty() {
            let ok = match con.cmp {
                Cmp::Le => 0.0 <= rhs + rtol,
                Cmp::Ge => 0.0 >= rhs - rtol,
                Cmp::Eq => rhs.abs() <= rtol,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        if opts.redundant_rows {
            // Activity range over the (tightened) variable box. Each
            // term's extreme is finite or the matching infinity, so the
            // sums never mix +∞ and −∞.
            let mut sup = 0.0_f64;
            let mut inf = 0.0_f64;
            for &(v, c) in &survivors {
                if c > 0.0 {
                    // lips-allow(float-accum-in-loop): activity range in the row's fixed term order
                    sup += c * ub[v];
                    // lips-allow(float-accum-in-loop): activity range in the row's fixed term order
                    inf += c * lb[v];
                } else {
                    // lips-allow(float-accum-in-loop): activity range in the row's fixed term order
                    sup += c * lb[v];
                    // lips-allow(float-accum-in-loop): activity range in the row's fixed term order
                    inf += c * ub[v];
                }
            }
            let (impossible, redundant) = match con.cmp {
                Cmp::Le => (inf > rhs + rtol, sup <= rhs + rtol),
                Cmp::Ge => (sup < rhs - rtol, inf >= rhs - rtol),
                Cmp::Eq => (
                    inf > rhs + rtol || sup < rhs - rtol,
                    sup <= rhs + rtol && inf >= rhs - rtol,
                ),
            };
            if impossible {
                return Err(LpError::Infeasible);
            }
            if redundant {
                continue;
            }
        }
        let terms: Vec<(VarId, f64)> = survivors
            .into_iter()
            .map(|(v, c)| {
                let idx = match mapping[v] {
                    Ok(idx) => idx,
                    Err(_) => unreachable!("survivors hold only surviving vars"),
                };
                (VarId(idx), c)
            })
            .collect();
        let id = reduced.add_constraint(terms, con.cmp, rhs);
        let name = model.constraint_name(ConstraintId(ri));
        if !name.is_empty() {
            reduced.name_constraint(id, name);
        }
        row_mapping[ri] = Some(id.0);
    }

    Ok((
        reduced,
        Restore {
            mapping,
            row_mapping,
            objective_offset,
        },
    ))
}

/// Solve via presolve: reduce, solve, restore. The returned objective is
/// for the *original* model (offset re-added).
pub fn solve_presolved(model: &Model) -> Result<(f64, Vec<f64>), LpError> {
    let (reduced, restore) = presolve(model)?;
    if reduced.num_vars() == 0 {
        // Everything fixed; verify feasibility of the fixed point.
        let full = restore.restore(&[]);
        if !model.is_feasible(&full, 1e-6) {
            return Err(LpError::Infeasible);
        }
        return Ok((model.objective_of(&full), full));
    }
    let sol = reduced.solve()?;
    let full = restore.restore(sol.values());
    Ok((sol.objective() + restore.objective_offset, full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 3.0, 3.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let (reduced, restore) = presolve(&m).unwrap();
        assert_eq!(reduced.num_vars(), 1);
        assert_eq!(restore.eliminated(), 1);
        assert_eq!(restore.objective_offset, 6.0);
        let (obj, full) = solve_presolved(&m).unwrap();
        assert!((obj - 8.0).abs() < 1e-6); // x=3 (cost 6) + y=2 (cost 2)
        assert!((full[x.index()] - 3.0).abs() < 1e-9);
        assert!((full[y.index()] - 2.0).abs() < 1e-6);
        assert!(m.is_feasible(&full, 1e-6));
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 100.0, -1.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 10.0); // x <= 5
        m.add_constraint([(x, -1.0)], Cmp::Le, -2.0); // x >= 2
        let (reduced, restore) = presolve(&m).unwrap();
        assert_eq!(reduced.num_constraints(), 0);
        // Once the rows fold into bounds, the cost −1 column is dominated
        // toward its (tightened) upper bound and fixed there too.
        assert_eq!(reduced.num_vars(), 0);
        assert_eq!(restore.restore(&[]), vec![5.0]);
        let (obj, _) = solve_presolved(&m).unwrap();
        assert!((obj + 5.0).abs() < 1e-6);
    }

    #[test]
    fn certified_options_keep_singleton_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 100.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        let (reduced, restore) = presolve_with(&m, certified_options()).unwrap();
        assert_eq!(reduced.num_constraints(), 1);
        assert_eq!(restore.dropped_rows(), 0);
    }

    #[test]
    fn empty_rows_checked() {
        let mut m = Model::minimize();
        let _ = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint(Vec::<(crate::VarId, f64)>::new(), Cmp::Le, -1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_singletons_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 8.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn fixed_substitution_can_empty_a_row_infeasibly() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, 2.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0); // 2 >= 5: impossible
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn duplicate_terms_merged_before_classification() {
        // (x,1)+(x,1) is a singleton row 2x <= 8 -> x <= 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 100.0, -1.0);
        m.add_constraint([(x, 1.0), (x, 1.0)], Cmp::Le, 8.0);
        let (reduced, _) = presolve(&m).unwrap();
        assert_eq!(reduced.num_constraints(), 0);
        let (obj, _) = solve_presolved(&m).unwrap();
        assert!((obj + 4.0).abs() < 1e-6);
    }

    #[test]
    fn all_variables_fixed_feasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0, 1.0, 3.0);
        let y = m.add_var("y", 2.0, 2.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        let (obj, full) = solve_presolved(&m).unwrap();
        assert_eq!(full, vec![1.0, 2.0]);
        assert!((obj - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_variables_fixed_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 2.0);
        assert_eq!(solve_presolved(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn redundant_rows_are_dropped() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 5.0); // sup = 2 ≤ 5
        let c = m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0); // binding
        m.name_constraint(c, "cover");
        let (reduced, restore) = presolve(&m).unwrap();
        assert_eq!(reduced.num_constraints(), 1);
        assert_eq!(restore.dropped_rows(), 1);
        assert_eq!(reduced.constraint_name(ConstraintId(0)), "cover");
        let duals = restore.restore_duals(&[7.0]);
        assert_eq!(duals, vec![0.0, 7.0]);
    }

    #[test]
    fn impossible_row_activity_is_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0); // sup = 2 < 3
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn dominated_column_fixed_at_lower() {
        // min x + y with x only in ≤ rows with positive coefficients:
        // every optimum has x = 0.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 5.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 1.0)], Cmp::Ge, 2.0);
        let (reduced, restore) = presolve_with(&m, certified_options()).unwrap();
        assert_eq!(reduced.num_vars(), 1);
        assert_eq!(restore.eliminated(), 1);
        let sol = reduced.solve().unwrap();
        let full = restore.restore(sol.values());
        assert!((full[x.index()] - 0.0).abs() < 1e-9);
        assert!((full[y.index()] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn dominated_column_fixed_at_upper() {
        // max 3z with z only in a ≥ row with positive coefficient: z = ub.
        let mut m = Model::new(crate::Sense::Maximize);
        let z = m.add_var("z", 0.0, 2.0, 3.0);
        let w = m.add_var("w", 0.0, 1.0, 0.0);
        m.add_constraint([(z, 1.0), (w, 1.0)], Cmp::Ge, 1.0);
        let (reduced, restore) = presolve_with(&m, certified_options()).unwrap();
        assert!(restore.eliminated() >= 1);
        let _ = reduced;
        let full = restore.restore(&vec![0.0; reduced.num_vars()]);
        assert!((full[z.index()] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn equality_rows_block_dominance() {
        // x has positive cost but sits in an Eq row: must NOT be fixed.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 5.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 3.0);
        let (reduced, restore) = presolve_with(&m, certified_options()).unwrap();
        assert_eq!(restore.eliminated(), 0);
        assert_eq!(reduced.num_vars(), 1);
    }

    #[test]
    fn warm_start_round_trips_through_reduction() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0); // dominated -> fixed at 0
        let y = m.add_var("y", 0.0, 5.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 9.0); // redundant
        let c = m.add_constraint([(y, 1.0)], Cmp::Ge, 2.0);
        m.name_constraint(c, "floor");
        let (reduced, restore) = presolve_with(&m, certified_options()).unwrap();

        let mut ws = WarmStart::new();
        ws.set_var("x", BasisStatus::AtLower);
        ws.set_var("y", BasisStatus::Basic);
        ws.set_row("#0", BasisStatus::Basic);
        ws.set_row("floor", BasisStatus::AtLower);
        let mapped = restore.map_warm_start(&m, &ws);
        assert_eq!(mapped.var("x"), None); // eliminated
        assert_eq!(mapped.var("y"), Some(BasisStatus::Basic));
        assert_eq!(mapped.row("floor"), Some(BasisStatus::AtLower));

        let sol = reduced.solve_warm(Some(&mapped)).unwrap();
        let restored = restore.restore_solution(&m, &sol);
        assert!((restored.objective() - 2.0).abs() < 1e-6);
        let back = restored.warm_start().unwrap();
        assert_eq!(back.var("x"), Some(BasisStatus::AtLower));
        assert_eq!(back.row("#0"), Some(BasisStatus::Basic)); // dropped row
        assert_eq!(back.len(), 4);
    }

    #[test]
    fn presolved_agrees_with_direct_on_random_models() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let mut checked = 0;
        for case in 0..200 {
            let n = rng.gen_range(2..8);
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(-2.0..2.0);
                    // 30% of variables are fixed.
                    let hi = if rng.gen_bool(0.3) {
                        lo
                    } else {
                        lo + rng.gen_range(0.0..3.0)
                    };
                    m.add_var(format!("x{i}"), lo, hi, rng.gen_range(-2.0..2.0))
                })
                .collect();
            for _ in 0..rng.gen_range(1..6) {
                let cmp = [Cmp::Le, Cmp::Ge, Cmp::Eq][rng.gen_range(0..3)];
                // 30% singleton rows.
                let terms: Vec<_> = if rng.gen_bool(0.3) {
                    vec![(vars[rng.gen_range(0..n)], rng.gen_range(-2.0..2.0f64))]
                } else {
                    vars.iter()
                        .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                        .collect()
                };
                m.add_constraint(terms, cmp, rng.gen_range(-4.0..4.0));
            }
            let direct = m.solve();
            let pre = solve_presolved(&m);
            match (direct, pre) {
                (Ok(a), Ok((obj, full))) => {
                    checked += 1;
                    assert!(
                        (a.objective() - obj).abs() / (1.0 + a.objective().abs()) < 1e-5,
                        "case {case}: {} vs {obj}",
                        a.objective()
                    );
                    assert!(m.is_feasible(&full, 1e-5), "case {case}");
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("case {case}: {a:?} vs {b:?}"),
            }
        }
        assert!(checked > 30, "too few feasible cases: {checked}");
    }
}
