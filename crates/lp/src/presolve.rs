//! Presolve: cheap model reductions applied before the simplex runs.
//!
//! The scheduling LPs routinely contain structure a solver shouldn't waste
//! pivots on: variables fixed by their bounds (`lb == ub` — e.g. pinned
//! placements), singleton rows (`a·x ≤ b` — pure bound tightenings), and
//! empty rows. Presolve eliminates them and returns a [`Restore`] that
//! maps a reduced solution back onto the original variable space.
//!
//! ```
//! use lips_lp::{Model, Cmp};
//! use lips_lp::presolve::presolve;
//!
//! let mut m = Model::minimize();
//! let x = m.add_var("x", 2.0, 2.0, 5.0);          // fixed
//! let y = m.add_var("y", 0.0, 10.0, 1.0);
//! m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 6.0);
//! let (reduced, restore) = presolve(&m).unwrap();
//! assert_eq!(reduced.num_vars(), 1);              // x substituted out
//! let sol = reduced.solve().unwrap();
//! let full = restore.restore(sol.values());
//! assert!((full[0] - 2.0).abs() < 1e-9);
//! assert!((full[1] - 4.0).abs() < 1e-9);
//! ```

use crate::error::LpError;
use crate::model::{Cmp, Model};
use crate::TOL;

/// Maps a reduced solution back to the original variable space.
#[derive(Debug, Clone)]
pub struct Restore {
    /// For each original variable: `Ok(reduced index)` if it survived,
    /// `Err(fixed value)` if presolve fixed it.
    mapping: Vec<Result<usize, f64>>,
    /// Objective contribution of the eliminated variables.
    pub objective_offset: f64,
}

impl Restore {
    /// Expand reduced-space values into original-space values.
    pub fn restore(&self, reduced: &[f64]) -> Vec<f64> {
        self.mapping
            .iter()
            .map(|m| match m {
                Ok(idx) => reduced[*idx],
                Err(v) => *v,
            })
            .collect()
    }

    /// Number of variables presolve eliminated.
    pub fn eliminated(&self) -> usize {
        self.mapping.iter().filter(|m| m.is_err()).count()
    }
}

/// Apply presolve reductions. Returns the reduced model plus the restore
/// map, or an error if a reduction proves the model infeasible outright.
pub fn presolve(model: &Model) -> Result<(Model, Restore), LpError> {
    model.validate()?;
    let n = model.num_vars();

    // Working bounds, tightened by singleton rows.
    let mut lb: Vec<f64> = (0..n)
        .map(|i| model.var_bounds(crate::VarId(i)).0)
        .collect();
    let mut ub: Vec<f64> = (0..n)
        .map(|i| model.var_bounds(crate::VarId(i)).1)
        .collect();

    // Pass 1: singleton and empty rows.
    let mut keep_row = vec![true; model.cons.len()];
    for (ri, con) in model.cons.iter().enumerate() {
        // Merge duplicate terms first.
        let mut terms: Vec<(usize, f64)> = Vec::new();
        for &(v, c) in &con.terms {
            if c == 0.0 {
                continue;
            }
            match terms.iter_mut().find(|(tv, _)| *tv == v) {
                Some((_, tc)) => *tc += c,
                None => terms.push((v, c)),
            }
        }
        terms.retain(|&(_, c)| c != 0.0);
        match terms.len() {
            0 => {
                // Empty row: 0 cmp rhs must hold.
                let ok = match con.cmp {
                    Cmp::Le => 0.0 <= con.rhs + TOL,
                    Cmp::Ge => 0.0 >= con.rhs - TOL,
                    Cmp::Eq => con.rhs.abs() <= TOL,
                };
                if !ok {
                    return Err(LpError::Infeasible);
                }
                keep_row[ri] = false;
            }
            1 => {
                // Singleton: pure bound information.
                let (v, c) = terms[0];
                let bound = con.rhs / c;
                match (con.cmp, c > 0.0) {
                    (Cmp::Le, true) | (Cmp::Ge, false) => ub[v] = ub[v].min(bound),
                    (Cmp::Ge, true) | (Cmp::Le, false) => lb[v] = lb[v].max(bound),
                    (Cmp::Eq, _) => {
                        lb[v] = lb[v].max(bound);
                        ub[v] = ub[v].min(bound);
                    }
                }
                if lb[v] > ub[v] + TOL {
                    return Err(LpError::Infeasible);
                }
                keep_row[ri] = false;
            }
            _ => {}
        }
    }

    // Pass 2: fixed variables (after tightening).
    let mut mapping: Vec<Result<usize, f64>> = Vec::with_capacity(n);
    let mut objective_offset = 0.0;
    let mut next = 0usize;
    for i in 0..n {
        if (ub[i] - lb[i]).abs() <= TOL && lb[i].is_finite() {
            let v = (lb[i] + ub[i]) / 2.0;
            objective_offset += model.var_obj(crate::VarId(i)) * v;
            mapping.push(Err(v));
        } else {
            mapping.push(Ok(next));
            next += 1;
        }
    }

    // Build the reduced model.
    let mut reduced = Model::new(model.sense());
    for i in 0..n {
        if mapping[i].is_ok() {
            reduced.add_var(
                model.var_name(crate::VarId(i)).to_string(),
                lb[i],
                ub[i],
                model.var_obj(crate::VarId(i)),
            );
        }
    }
    for (ri, con) in model.cons.iter().enumerate() {
        if !keep_row[ri] {
            continue;
        }
        let mut rhs = con.rhs;
        let mut terms: Vec<(crate::VarId, f64)> = Vec::new();
        for &(v, c) in &con.terms {
            match mapping[v] {
                Ok(idx) => terms.push((crate::VarId(idx), c)),
                Err(fixed) => rhs -= c * fixed,
            }
        }
        if terms.is_empty() {
            let ok = match con.cmp {
                Cmp::Le => 0.0 <= rhs + TOL,
                Cmp::Ge => 0.0 >= rhs - TOL,
                Cmp::Eq => rhs.abs() <= TOL,
            };
            if !ok {
                return Err(LpError::Infeasible);
            }
            continue;
        }
        reduced.add_constraint(terms, con.cmp, rhs);
    }

    Ok((
        reduced,
        Restore {
            mapping,
            objective_offset,
        },
    ))
}

/// Solve via presolve: reduce, solve, restore. The returned objective is
/// for the *original* model (offset re-added).
pub fn solve_presolved(model: &Model) -> Result<(f64, Vec<f64>), LpError> {
    let (reduced, restore) = presolve(model)?;
    if reduced.num_vars() == 0 {
        // Everything fixed; verify feasibility of the fixed point.
        let full = restore.restore(&[]);
        if !model.is_feasible(&full, 1e-6) {
            return Err(LpError::Infeasible);
        }
        return Ok((model.objective_of(&full), full));
    }
    let sol = reduced.solve()?;
    let full = restore.restore(sol.values());
    Ok((sol.objective() + restore.objective_offset, full))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model};

    #[test]
    fn fixed_variables_are_substituted() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 3.0, 3.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 5.0);
        let (reduced, restore) = presolve(&m).unwrap();
        assert_eq!(reduced.num_vars(), 1);
        assert_eq!(restore.eliminated(), 1);
        assert_eq!(restore.objective_offset, 6.0);
        let (obj, full) = solve_presolved(&m).unwrap();
        assert!((obj - 8.0).abs() < 1e-6); // x=3 (cost 6) + y=2 (cost 2)
        assert!((full[x.index()] - 3.0).abs() < 1e-9);
        assert!((full[y.index()] - 2.0).abs() < 1e-6);
        assert!(m.is_feasible(&full, 1e-6));
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 100.0, -1.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 10.0); // x <= 5
        m.add_constraint([(x, -1.0)], Cmp::Le, -2.0); // x >= 2
        let (reduced, _) = presolve(&m).unwrap();
        assert_eq!(reduced.num_constraints(), 0);
        assert_eq!(reduced.var_bounds(crate::VarId(0)), (2.0, 5.0));
        let (obj, _) = solve_presolved(&m).unwrap();
        assert!((obj + 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_rows_checked() {
        let mut m = Model::minimize();
        let _ = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint(Vec::<(crate::VarId, f64)>::new(), Cmp::Le, -1.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn contradictory_singletons_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 8.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn fixed_substitution_can_empty_a_row_infeasibly() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, 2.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0); // 2 >= 5: impossible
        assert_eq!(presolve(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn duplicate_terms_merged_before_classification() {
        // (x,1)+(x,1) is a singleton row 2x <= 8 -> x <= 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 100.0, -1.0);
        m.add_constraint([(x, 1.0), (x, 1.0)], Cmp::Le, 8.0);
        let (reduced, _) = presolve(&m).unwrap();
        assert_eq!(reduced.num_constraints(), 0);
        let (obj, _) = solve_presolved(&m).unwrap();
        assert!((obj + 4.0).abs() < 1e-6);
    }

    #[test]
    fn all_variables_fixed_feasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0, 1.0, 3.0);
        let y = m.add_var("y", 2.0, 2.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        let (obj, full) = solve_presolved(&m).unwrap();
        assert_eq!(full, vec![1.0, 2.0]);
        assert!((obj - 5.0).abs() < 1e-12);
    }

    #[test]
    fn all_variables_fixed_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 1.0, 1.0, 0.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 2.0);
        assert_eq!(solve_presolved(&m).unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn presolved_agrees_with_direct_on_random_models() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let mut checked = 0;
        for case in 0..200 {
            let n = rng.gen_range(2..8);
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| {
                    let lo = rng.gen_range(-2.0..2.0);
                    // 30% of variables are fixed.
                    let hi = if rng.gen_bool(0.3) {
                        lo
                    } else {
                        lo + rng.gen_range(0.0..3.0)
                    };
                    m.add_var(format!("x{i}"), lo, hi, rng.gen_range(-2.0..2.0))
                })
                .collect();
            for _ in 0..rng.gen_range(1..6) {
                let cmp = [Cmp::Le, Cmp::Ge, Cmp::Eq][rng.gen_range(0..3)];
                // 30% singleton rows.
                let terms: Vec<_> = if rng.gen_bool(0.3) {
                    vec![(vars[rng.gen_range(0..n)], rng.gen_range(-2.0..2.0f64))]
                } else {
                    vars.iter()
                        .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                        .collect()
                };
                m.add_constraint(terms, cmp, rng.gen_range(-4.0..4.0));
            }
            let direct = m.solve();
            let pre = solve_presolved(&m);
            match (direct, pre) {
                (Ok(a), Ok((obj, full))) => {
                    checked += 1;
                    assert!(
                        (a.objective() - obj).abs() / (1.0 + a.objective().abs()) < 1e-5,
                        "case {case}: {} vs {obj}",
                        a.objective()
                    );
                    assert!(m.is_feasible(&full, 1e-5), "case {case}");
                }
                (Err(_), Err(_)) => {}
                (a, b) => panic!("case {case}: {a:?} vs {b:?}"),
            }
        }
        assert!(checked > 30, "too few feasible cases: {checked}");
    }
}
