//! Post-optimal sensitivity analysis: shadow prices and reduced costs.
//!
//! For the scheduler these answer operational questions directly: the
//! shadow price of a machine's capacity row is *the dollars saved per
//! extra ECU-second of capacity on that node* — i.e. how much renting one
//! more cheap node would be worth this epoch.

use crate::model::{Model, Sense};
use crate::solution::Solution;

/// Sensitivity report for an optimal solution.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Per-constraint shadow price in the *original* model sense: the rate
    /// of change of the optimal objective per unit increase of the rhs.
    pub shadow_prices: Vec<f64>,
    /// Per-variable reduced cost in the original sense: the rate at which
    /// the objective would change per unit increase of a nonbasic
    /// variable (≈ 0 for basic variables).
    pub reduced_costs: Vec<f64>,
}

/// Compute sensitivity information from a solved model.
///
/// Requires the solution to carry duals (the revised solver provides them;
/// the dense oracle does not — its solutions yield empty reports).
pub fn analyze(model: &Model, solution: &Solution) -> Sensitivity {
    let duals = solution.duals();
    if duals.len() != model.num_constraints() {
        return Sensitivity {
            shadow_prices: Vec::new(),
            reduced_costs: Vec::new(),
        };
    }
    // Internal duals are for the minimization form; a maximization model's
    // objective was negated, so flip back.
    let sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    let shadow_prices: Vec<f64> = duals.iter().map(|&y| sign * y).collect();

    // Reduced cost: d_j = c_j − y·A_j (internal), mapped back by the same
    // sign flip.
    let n = model.num_vars();
    let mut reduced = vec![0.0; n];
    for (j, r) in reduced.iter_mut().enumerate() {
        let c_internal = match model.sense() {
            Sense::Minimize => model.var_obj(crate::VarId(j)),
            Sense::Maximize => -model.var_obj(crate::VarId(j)),
        };
        *r = sign * c_internal;
    }
    for (ri, con) in model.cons.iter().enumerate() {
        // reduced_internal -= y_internal · coef, mapped back by `sign`.
        for &(v, coef) in &con.terms {
            reduced[v] -= sign * duals[ri] * coef;
        }
    }
    Sensitivity {
        shadow_prices,
        reduced_costs: reduced,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    /// Finite-difference check: perturbing a binding constraint's rhs by ε
    /// moves the optimum by ≈ shadow_price · ε.
    fn check_shadow_by_fd(build: impl Fn(f64, usize) -> Model, n_cons: usize) {
        let base = build(0.0, usize::MAX);
        let sol = base.solve().unwrap();
        let sens = analyze(&base, &sol);
        let eps = 1e-4;
        for ci in 0..n_cons {
            let perturbed = build(eps, ci);
            if let Ok(psol) = perturbed.solve() {
                let fd = (psol.objective() - sol.objective()) / eps;
                assert!(
                    (fd - sens.shadow_prices[ci]).abs() < 1e-3,
                    "constraint {ci}: fd {fd} vs dual {}",
                    sens.shadow_prices[ci]
                );
            }
        }
    }

    #[test]
    fn shadow_prices_match_finite_differences_min() {
        // min 2x + 3y, x + y >= 4, x + 3y >= 6.
        let build = |eps: f64, which: usize| {
            let mut m = Model::minimize();
            let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
            let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
            m.add_constraint(
                [(x, 1.0), (y, 1.0)],
                Cmp::Ge,
                4.0 + if which == 0 { eps } else { 0.0 },
            );
            m.add_constraint(
                [(x, 1.0), (y, 3.0)],
                Cmp::Ge,
                6.0 + if which == 1 { eps } else { 0.0 },
            );
            m
        };
        check_shadow_by_fd(build, 2);
    }

    #[test]
    fn shadow_prices_match_finite_differences_max() {
        // The textbook product-mix LP.
        let build = |eps: f64, which: usize| {
            let mut m = Model::new(Sense::Maximize);
            let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
            let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
            m.add_constraint(
                [(x, 1.0)],
                Cmp::Le,
                4.0 + if which == 0 { eps } else { 0.0 },
            );
            m.add_constraint(
                [(y, 2.0)],
                Cmp::Le,
                12.0 + if which == 1 { eps } else { 0.0 },
            );
            m.add_constraint(
                [(x, 3.0), (y, 2.0)],
                Cmp::Le,
                18.0 + if which == 2 { eps } else { 0.0 },
            );
            m
        };
        check_shadow_by_fd(build, 3);
    }

    #[test]
    fn slack_constraints_have_zero_shadow_price() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0); // binding
        m.add_constraint([(x, 1.0)], Cmp::Le, 100.0); // slack
        let sol = m.solve().unwrap();
        let sens = analyze(&m, &sol);
        assert!(sens.shadow_prices[0].abs() > 0.5); // =1: $1 per unit rhs
        assert!(sens.shadow_prices[1].abs() < 1e-9);
    }

    #[test]
    fn basic_variables_have_zero_reduced_cost() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let sens = analyze(&m, &sol);
        // Optimal: x=4 basic (reduced 0), y nonbasic at 0 (reduced 1).
        assert!(sens.reduced_costs[0].abs() < 1e-9);
        assert!((sens.reduced_costs[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dense_solution_yields_empty_report() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 0.5);
        let sol = m.solve_dense().unwrap();
        let sens = analyze(&m, &sol);
        assert!(sens.shadow_prices.is_empty());
        assert!(sens.reduced_costs.is_empty());
    }
}
