//! Dense LU factorization with partial pivoting, used to (re)factorize the
//! simplex basis matrix.
//!
//! The basis of the scheduling LPs is a few hundred to a few thousand rows;
//! a dense factorization is simple, cache-friendly, and — combined with
//! product-form eta updates between refactorizations — fast enough for every
//! experiment in the paper (the paper itself reports "10s of ms" GLPK
//! solves).

#![allow(clippy::needless_range_loop)] // index math mirrors the textbook formulas

use crate::error::LpError;
use crate::PIVOT_TOL;

/// Dense PA = LU factorization (row-major storage, partial pivoting).
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Packed LU factors: strictly-lower triangle holds L (unit diagonal
    /// implied), upper triangle + diagonal holds U.
    lu: Vec<f64>,
    /// Row permutation: `perm[i]` is the original row moved to position `i`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Factorize the `n × n` matrix given in row-major order.
    pub fn factorize(n: usize, mut a: Vec<f64>, pivot_tol: f64) -> Result<Self, LpError> {
        assert_eq!(a.len(), n * n);
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest |a[i][k]| for i >= k.
            let mut piv = k;
            let mut best = a[k * n + k].abs();
            for i in (k + 1)..n {
                let v = a[i * n + k].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best <= pivot_tol {
                return Err(LpError::SingularBasis);
            }
            if piv != k {
                for j in 0..n {
                    a.swap(k * n + j, piv * n + j);
                }
                perm.swap(k, piv);
            }
            let diag = a[k * n + k];
            for i in (k + 1)..n {
                let factor = a[i * n + k] / diag;
                a[i * n + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        a[i * n + j] -= factor * a[k * n + j];
                    }
                }
            }
        }
        Ok(DenseLu { n, lu: a, perm })
    }

    /// Dimension of the factorized matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Consume the factorization, handing back its `n × n` backing buffer so
    /// the caller can refill and refactorize without a fresh allocation.
    pub fn into_buffer(self) -> Vec<f64> {
        self.lu
    }

    /// The original row that provided the pivot for column `pos` (used by
    /// warm-start basis repair to know which row a replacement unit column
    /// must cover).
    pub fn pivot_row(&self, pos: usize) -> usize {
        self.perm[pos]
    }

    /// Solve `A x = rhs` in place (`rhs` becomes `x`).
    pub fn solve_in_place(&self, rhs: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(rhs.len(), n);
        // Apply permutation: y = P * rhs.
        let mut y: Vec<f64> = (0..n).map(|i| rhs[self.perm[i]]).collect();
        // Forward: L z = y (unit diagonal).
        for i in 1..n {
            let mut s = y[i];
            for j in 0..i {
                s -= self.lu[i * n + j] * y[j];
            }
            y[i] = s;
        }
        // Backward: U x = z.
        for i in (0..n).rev() {
            let mut s = y[i];
            for j in (i + 1)..n {
                s -= self.lu[i * n + j] * y[j];
            }
            y[i] = s / self.lu[i * n + i];
        }
        rhs.copy_from_slice(&y);
    }

    /// Solve `Aᵀ x = rhs` in place.
    pub fn solve_transpose_in_place(&self, rhs: &mut [f64]) {
        let n = self.n;
        debug_assert_eq!(rhs.len(), n);
        // A = Pᵀ L U  ⇒  Aᵀ = Uᵀ Lᵀ P. Solve Uᵀ z = rhs, then Lᵀ w = z,
        // then x = Pᵀ w (i.e. x[perm[i]] = w[i]).
        let mut z = rhs.to_vec();
        // Uᵀ is lower triangular: forward substitution.
        for i in 0..n {
            let mut s = z[i];
            for j in 0..i {
                s -= self.lu[j * n + i] * z[j];
            }
            z[i] = s / self.lu[i * n + i];
        }
        // Lᵀ is unit upper triangular: backward substitution.
        for i in (0..n).rev() {
            let mut s = z[i];
            for j in (i + 1)..n {
                s -= self.lu[j * n + i] * z[j];
            }
            z[i] = s;
        }
        for i in 0..n {
            rhs[self.perm[i]] = z[i];
        }
    }
}

/// Convenience: factorize with the crate-default pivot tolerance.
pub fn factorize(n: usize, a: Vec<f64>) -> Result<DenseLu, LpError> {
    DenseLu::factorize(n, a, PIVOT_TOL)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat_vec(n: usize, a: &[f64], x: &[f64]) -> Vec<f64> {
        (0..n)
            .map(|i| (0..n).map(|j| a[i * n + j] * x[j]).sum())
            .collect()
    }

    #[test]
    fn solves_identity() {
        let a = vec![1.0, 0.0, 0.0, 1.0];
        let lu = factorize(2, a).unwrap();
        let mut x = vec![3.0, -4.0];
        lu.solve_in_place(&mut x);
        assert_eq!(x, vec![3.0, -4.0]);
    }

    #[test]
    fn solves_small_system() {
        // A = [[2,1],[1,3]], b = [5, 10] -> x = [1, 3]
        let a = vec![2.0, 1.0, 1.0, 3.0];
        let lu = factorize(2, a).unwrap();
        let mut x = vec![5.0, 10.0];
        lu.solve_in_place(&mut x);
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solves_system_requiring_pivoting() {
        // Leading zero forces a row swap.
        let a = vec![0.0, 1.0, 1.0, 0.0];
        let lu = factorize(2, a).unwrap();
        let mut x = vec![7.0, 9.0];
        lu.solve_in_place(&mut x);
        assert_eq!(x, vec![9.0, 7.0]);
    }

    #[test]
    fn transpose_solve_matches_transposed_matrix() {
        // Asymmetric so the transpose solve is actually exercised.
        let a = vec![2.0, 1.0, 0.5, 0.0, 3.0, 1.0, 1.0, 0.0, 4.0];
        let lu = factorize(3, a.clone()).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        // rhs = Aᵀ x_true
        let mut rhs = vec![0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                rhs[j] += a[i * 3 + j] * x_true[i];
            }
        }
        lu.solve_transpose_in_place(&mut rhs);
        for (got, want) in rhs.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-12, "{got} vs {want}");
        }
    }

    #[test]
    fn random_roundtrip() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for n in [1usize, 2, 5, 17, 40] {
            let a: Vec<f64> = (0..n * n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Diagonal boost keeps it comfortably nonsingular.
            let mut a2 = a.clone();
            for i in 0..n {
                a2[i * n + i] += 3.0;
            }
            let lu = factorize(n, a2.clone()).unwrap();
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let mut rhs = mat_vec(n, &a2, &x_true);
            lu.solve_in_place(&mut rhs);
            for (got, want) in rhs.iter().zip(&x_true) {
                assert!((got - want).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = vec![1.0, 2.0, 2.0, 4.0];
        assert!(matches!(factorize(2, a), Err(LpError::SingularBasis)));
    }
}
