//! Warm-start basis descriptions.
//!
//! The LiPS epoch loop re-solves a structurally near-identical LP every
//! epoch: the same machines, stores, and capacity rows, with a few job
//! columns added or removed and costs drifting as transfers complete. A
//! [`WarmStart`] captures the basis of an optimal solution in a form that
//! survives those edits: statuses are keyed by *variable name* and *row
//! name*, not by position, so the next model can reuse whatever part of the
//! basis still exists and the solver repairs or cold-starts the rest.

use std::collections::BTreeMap;

/// Simplex status of one variable (or of a row's slack) in a basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BasisStatus {
    /// In the basis.
    Basic,
    /// Nonbasic at its lower bound.
    AtLower,
    /// Nonbasic at its upper bound.
    AtUpper,
    /// Nonbasic free variable (rests at zero).
    Free,
}

/// How a solve actually started (reported in
/// [`crate::solution::SolveStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WarmOutcome {
    /// Phase 1 from scratch: no warm start given, or the given basis could
    /// not be salvaged (singular after repair, wrong shape).
    #[default]
    Cold,
    /// The warm basis was primal feasible as-is; phase 1 was skipped
    /// entirely.
    Warm,
    /// The warm basis needed repair (some basics violated their bounds
    /// after model edits); a short phase 1 over the repair artificials ran
    /// before phase 2.
    WarmRepaired,
    /// The warm basis was dual feasible (possibly after bound flips) and
    /// the bounded dual simplex re-optimized it directly — no phase 1, no
    /// artificials (see [`crate::dual::solve_dual_from_basis`]).
    Dual,
}

/// A basis snapshot keyed by names, suitable for seeding a later solve of
/// the same or a perturbed model.
///
/// Produced by [`crate::solution::Solution::warm_start`] after every
/// revised-simplex solve; consumed by
/// [`crate::revised::RevisedSimplex::solve_with_warm_start`] or
/// [`crate::model::Model::solve_warm`]. Rows without an explicit name (see
/// [`crate::model::Model::name_constraint`]) are keyed positionally as
/// `"#<index>"`, which still round-trips when the constraint list does not
/// change shape.
///
/// Name collisions degrade gracefully: the status of the last variable with
/// a given name wins, and any resulting over- or under-full basis is
/// trimmed / completed with slacks before factorization (with a cold solve
/// as the final fallback), so a warm start can never change the optimum —
/// only the path to it.
#[derive(Debug, Clone, Default)]
pub struct WarmStart {
    vars: BTreeMap<String, BasisStatus>,
    rows: BTreeMap<String, BasisStatus>,
}

impl WarmStart {
    /// An empty warm start (equivalent to passing `None`).
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// True if no statuses are recorded.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty() && self.rows.is_empty()
    }

    /// Number of recorded statuses (variables + rows).
    pub fn len(&self) -> usize {
        self.vars.len() + self.rows.len()
    }

    /// Record the status of a variable by name.
    pub fn set_var(&mut self, name: impl Into<String>, status: BasisStatus) {
        self.vars.insert(name.into(), status);
    }

    /// Record the status of a row's slack by row name.
    pub fn set_row(&mut self, name: impl Into<String>, status: BasisStatus) {
        self.rows.insert(name.into(), status);
    }

    /// Look up a variable status by name.
    pub fn var(&self, name: &str) -> Option<BasisStatus> {
        self.vars.get(name).copied()
    }

    /// Look up a row-slack status by row name.
    pub fn row(&self, name: &str) -> Option<BasisStatus> {
        self.rows.get(name).copied()
    }

    /// Keep only the variable statuses whose name satisfies `keep`.
    ///
    /// Used when the model the basis was taken from loses structure — e.g.
    /// a machine is revoked and every column touching it vanishes. Feeding
    /// the stale names to the repair loop would seed garbage; dropping them
    /// up front leaves a smaller but honest basis the solver completes with
    /// slacks.
    pub fn retain_vars(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.vars.retain(|name, _| keep(name));
    }

    /// Keep only the row statuses whose name satisfies `keep`.
    pub fn retain_rows(&mut self, mut keep: impl FnMut(&str) -> bool) {
        self.rows.retain(|name, _| keep(name));
    }

    /// Merge another warm start into this one, keeping this one's status
    /// wherever both record the same name (first-wins).
    ///
    /// This is the stitching primitive of a decomposed solve: per-shard
    /// subproblem bases cover disjoint column families but all name the
    /// shared coupling rows, so absorbing them in shard order yields one
    /// deterministic seed basis for the stitched master. The merged basis
    /// need not be consistent (its basic count can be off); the warm-start
    /// repair loop trims, completes, or cold-falls-back as usual, so an
    /// absorbed basis can never change an optimum — only the pivot count.
    pub fn absorb(&mut self, other: &WarmStart) {
        for (name, &status) in &other.vars {
            self.vars.entry(name.clone()).or_insert(status);
        }
        for (name, &status) in &other.rows {
            self.rows.entry(name.clone()).or_insert(status);
        }
    }

    /// Number of variables and rows recorded as [`BasisStatus::Basic`].
    pub fn num_basic(&self) -> usize {
        self.vars
            .values()
            .chain(self.rows.values())
            .filter(|&&s| s == BasisStatus::Basic)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_counts() {
        let mut ws = WarmStart::new();
        assert!(ws.is_empty());
        ws.set_var("x", BasisStatus::Basic);
        ws.set_var("y", BasisStatus::AtUpper);
        ws.set_row("cap", BasisStatus::Basic);
        ws.set_row("#1", BasisStatus::AtLower);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws.num_basic(), 2);
        assert_eq!(ws.var("x"), Some(BasisStatus::Basic));
        assert_eq!(ws.var("z"), None);
        assert_eq!(ws.row("cap"), Some(BasisStatus::Basic));
        // Re-setting a name overwrites.
        ws.set_var("x", BasisStatus::Free);
        assert_eq!(ws.var("x"), Some(BasisStatus::Free));
        assert_eq!(ws.len(), 4);
    }

    #[test]
    fn absorb_is_first_wins_and_additive() {
        let mut a = WarmStart::new();
        a.set_var("xt_0_1", BasisStatus::Basic);
        a.set_row("cov_0", BasisStatus::AtLower);
        let mut b = WarmStart::new();
        b.set_var("xt_0_1", BasisStatus::AtUpper); // conflict: a wins
        b.set_var("xt_1_7", BasisStatus::Basic); // new: absorbed
        b.set_row("cov_0", BasisStatus::Basic); // conflict: a wins
        b.set_row("cpu_7", BasisStatus::Basic); // new: absorbed
        a.absorb(&b);
        assert_eq!(a.var("xt_0_1"), Some(BasisStatus::Basic));
        assert_eq!(a.var("xt_1_7"), Some(BasisStatus::Basic));
        assert_eq!(a.row("cov_0"), Some(BasisStatus::AtLower));
        assert_eq!(a.row("cpu_7"), Some(BasisStatus::Basic));
        assert_eq!(a.len(), 4);
    }

    #[test]
    fn retain_drops_only_rejected_names() {
        let mut ws = WarmStart::new();
        ws.set_var("xt_0_1", BasisStatus::Basic);
        ws.set_var("xt_0_2", BasisStatus::AtLower);
        ws.set_row("cpu_1", BasisStatus::Basic);
        ws.set_row("cpu_2", BasisStatus::AtLower);
        ws.retain_vars(|name| !name.ends_with("_1"));
        ws.retain_rows(|name| !name.ends_with("_1"));
        assert_eq!(ws.var("xt_0_1"), None);
        assert_eq!(ws.var("xt_0_2"), Some(BasisStatus::AtLower));
        assert_eq!(ws.row("cpu_1"), None);
        assert_eq!(ws.row("cpu_2"), Some(BasisStatus::AtLower));
        assert_eq!(ws.len(), 2);
    }
}
