//! Textbook two-phase tableau simplex.
//!
//! This solver exists to *check* the production solver, not to compete with
//! it: it is written for obviousness (full dense tableau, explicit
//! variable-transformation bookkeeping) and is quadratic-to-cubic per pivot,
//! so it is only suitable for small models. Tests cross-validate
//! [`crate::revised::RevisedSimplex`] against it on thousands of random LPs.
//!
//! Model lowering differs from the production path on purpose — bounds are
//! handled by *substitution* (shift / negate / split / explicit rows) rather
//! than natively — so the two solvers share as little code as possible and a
//! bug in one lowering cannot mask the same bug in the other.

#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use crate::error::LpError;
use crate::model::{Cmp, Model, Sense};
use crate::solution::Solution;

/// Tableau simplex solver (oracle-grade).
#[derive(Debug, Clone)]
pub struct DenseSimplex {
    /// Hard pivot cap (both phases).
    pub max_iterations: usize,
    /// Reduced-cost / feasibility tolerance.
    pub tol: f64,
}

impl Default for DenseSimplex {
    fn default() -> Self {
        DenseSimplex {
            max_iterations: 50_000,
            tol: 1e-9,
        }
    }
}

/// How an original variable maps onto nonnegative tableau variables.
#[derive(Debug, Clone, Copy)]
enum VarMap {
    /// `x = x' + shift`, `x' >= 0`.
    Shifted { col: usize, shift: f64 },
    /// `x = shift - x'`, `x' >= 0` (upper-bounded, no finite lower bound).
    Negated { col: usize, shift: f64 },
    /// `x = x⁺ − x⁻`, both `>= 0` (free variable).
    Split { pos: usize, neg: usize },
}

/// A lowered constraint row, dense over z-columns.
struct Row {
    coefs: Vec<f64>,
    cmp: Cmp,
    rhs: f64,
}

impl DenseSimplex {
    /// Solve `model` to optimality.
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        model.validate()?;

        // ---- Lower to: min c'z, A z (<=,>=,=) b, z >= 0 ----
        let mut maps: Vec<VarMap> = Vec::with_capacity(model.vars.len());
        let mut ncols = 0usize;
        let mut c: Vec<f64> = Vec::new();
        let mut obj_const = 0.0;
        let sense_sign = if model.sense == Sense::Maximize {
            -1.0
        } else {
            1.0
        };
        // Extra rows for upper bounds of doubly-bounded variables.
        let mut bound_rows: Vec<(usize, f64)> = Vec::new(); // (col, ub - lb)

        for v in &model.vars {
            let obj = sense_sign * v.obj;
            match (v.lb.is_finite(), v.ub.is_finite()) {
                (true, _) => {
                    maps.push(VarMap::Shifted {
                        col: ncols,
                        shift: v.lb,
                    });
                    c.push(obj);
                    obj_const += obj * v.lb;
                    if v.ub.is_finite() {
                        bound_rows.push((ncols, v.ub - v.lb));
                    }
                    ncols += 1;
                }
                (false, true) => {
                    maps.push(VarMap::Negated {
                        col: ncols,
                        shift: v.ub,
                    });
                    c.push(-obj);
                    obj_const += obj * v.ub;
                    ncols += 1;
                }
                (false, false) => {
                    maps.push(VarMap::Split {
                        pos: ncols,
                        neg: ncols + 1,
                    });
                    c.push(obj);
                    c.push(-obj);
                    ncols += 2;
                }
            }
        }

        // Rows: original constraints then bound rows.
        let mut rows: Vec<Row> = Vec::new();
        for con in &model.cons {
            let mut coefs = vec![0.0; ncols];
            let mut rhs = con.rhs;
            for &(vi, a) in &con.terms {
                match maps[vi] {
                    VarMap::Shifted { col, shift } => {
                        coefs[col] += a;
                        rhs -= a * shift;
                    }
                    VarMap::Negated { col, shift } => {
                        coefs[col] -= a;
                        rhs -= a * shift;
                    }
                    VarMap::Split { pos, neg } => {
                        coefs[pos] += a;
                        coefs[neg] -= a;
                    }
                }
            }
            rows.push(Row {
                coefs,
                cmp: con.cmp,
                rhs,
            });
        }
        for &(col, gap) in &bound_rows {
            let mut coefs = vec![0.0; ncols];
            coefs[col] = 1.0;
            rows.push(Row {
                coefs,
                cmp: Cmp::Le,
                rhs: gap,
            });
        }

        // Normalize rhs >= 0.
        for row in &mut rows {
            if row.rhs < 0.0 {
                for a in &mut row.coefs {
                    *a = -*a;
                }
                row.rhs = -row.rhs;
                row.cmp = match row.cmp {
                    Cmp::Le => Cmp::Ge,
                    Cmp::Ge => Cmp::Le,
                    Cmp::Eq => Cmp::Eq,
                };
            }
        }

        // ---- Build tableau with slacks / surplus / artificials ----
        let m = rows.len();
        let n_slack: usize = rows.iter().filter(|r| r.cmp != Cmp::Eq).count();
        let n_art: usize = rows.iter().filter(|r| r.cmp != Cmp::Le).count();
        let total = ncols + n_slack + n_art;
        let width = total + 1; // + rhs column
        let mut t = vec![vec![0.0; width]; m];
        let mut basis = vec![0usize; m];
        let mut art_cols: Vec<usize> = Vec::new();
        // Scale of the row each artificial belongs to, indexed by column,
        // for the per-row relative infeasibility check after phase 1.
        let mut art_row_scale: HashMap<usize, f64> = HashMap::new();
        let mut next_slack = ncols;
        let mut next_art = ncols + n_slack;
        for (i, row) in rows.iter().enumerate() {
            t[i][..ncols].copy_from_slice(&row.coefs);
            t[i][total] = row.rhs;
            match row.cmp {
                Cmp::Le => {
                    t[i][next_slack] = 1.0;
                    basis[i] = next_slack;
                    next_slack += 1;
                }
                Cmp::Ge => {
                    t[i][next_slack] = -1.0;
                    next_slack += 1;
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    art_cols.push(next_art);
                    art_row_scale.insert(next_art, 1.0 + row.rhs.abs());
                    next_art += 1;
                }
                Cmp::Eq => {
                    t[i][next_art] = 1.0;
                    basis[i] = next_art;
                    art_cols.push(next_art);
                    art_row_scale.insert(next_art, 1.0 + row.rhs.abs());
                    next_art += 1;
                }
            }
        }

        let mut iterations = 0usize;

        // ---- Phase 1 ----
        let mut art_flag = vec![false; total];
        for &j in &art_cols {
            art_flag[j] = true;
        }
        if !art_cols.is_empty() {
            let mut d = vec![0.0; total];
            for &j in &art_cols {
                d[j] = 1.0;
            }
            // No growth guard in phase 1: artificial mass may shuffle
            // between rows while the total strictly decreases.
            let no_guard = vec![false; total];
            self.optimize(
                &mut t,
                &mut basis,
                &d,
                total,
                &mut iterations,
                &[],
                &no_guard,
            )?;
            // Per-row relative residual: each basic artificial's value is
            // its origin row's residual; compare to that row's scale.
            for (i, &b) in basis.iter().enumerate() {
                if let Some(scale) = art_row_scale.get(&b) {
                    if t[i][total] / scale > 1e-7 {
                        return Err(LpError::Infeasible);
                    }
                }
            }
        }

        // ---- Phase 2 (artificials barred from entering and, when still
        // basic at zero, barred from growing back above zero) ----
        let mut c_full = vec![0.0; total];
        c_full[..ncols].copy_from_slice(&c);
        self.optimize(
            &mut t,
            &mut basis,
            &c_full,
            total,
            &mut iterations,
            &art_cols,
            &art_flag,
        )?;

        // ---- Extract ----
        let mut z = vec![0.0; total];
        for (i, &b) in basis.iter().enumerate() {
            z[b] = t[i][total];
        }
        let mut x = vec![0.0; model.vars.len()];
        for (vi, map) in maps.iter().enumerate() {
            x[vi] = match *map {
                VarMap::Shifted { col, shift } => z[col] + shift,
                VarMap::Negated { col, shift } => shift - z[col],
                VarMap::Split { pos, neg } => z[pos] - z[neg],
            };
        }
        let internal: f64 = c_full.iter().zip(&z).map(|(c, z)| c * z).sum::<f64>() + obj_const;
        let external = if model.sense == Sense::Maximize {
            -internal
        } else {
            internal
        };
        // The tableau method does not track duals; report an empty vector.
        Ok(Solution::new(external, x, Vec::new(), iterations))
    }

    /// Run the tableau to optimality for cost vector `d`; returns the
    /// objective value (without constants). `barred` columns may not enter;
    /// columns flagged in `pinned` are additionally not allowed to *grow*
    /// while basic (used to keep phase-1 artificials at zero in phase 2).
    #[allow(clippy::too_many_arguments)]
    fn optimize(
        &self,
        t: &mut [Vec<f64>],
        basis: &mut [usize],
        d: &[f64],
        total: usize,
        iterations: &mut usize,
        barred: &[usize],
        pinned: &[bool],
    ) -> Result<f64, LpError> {
        let m = t.len();
        let mut degenerate_run = 0usize;
        loop {
            if *iterations >= self.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: *iterations,
                });
            }
            // Reduced costs: r_j = d_j − Σ_i d_{basis i} · t[i][j].
            let bland = degenerate_run > 2 * m + 50;
            let mut entering: Option<(usize, f64)> = None;
            for j in 0..total {
                if barred.contains(&j) || basis.contains(&j) {
                    continue;
                }
                let mut r = d[j];
                for i in 0..m {
                    let db = d[basis[i]];
                    if db != 0.0 {
                        r -= db * t[i][j];
                    }
                }
                if r < -self.tol {
                    if bland {
                        entering = Some((j, r));
                        break;
                    }
                    match entering {
                        Some((_, best)) if best <= r => {}
                        _ => entering = Some((j, r)),
                    }
                }
            }
            let Some((q, _)) = entering else {
                let obj: f64 = (0..m).map(|i| d[basis[i]] * t[i][total]).sum();
                return Ok(obj);
            };

            // Ratio test. A pinned basic variable (phase-1 artificial at
            // zero) must not grow, so a negative column entry forces a
            // degenerate pivot that evicts it.
            let mut leave: Option<(usize, f64)> = None;
            for i in 0..m {
                let ratio = if t[i][q] > self.tol {
                    t[i][total] / t[i][q]
                } else if pinned[basis[i]] && t[i][q] < -self.tol {
                    debug_assert!(t[i][total] <= 1e-6, "pinned basic above zero");
                    0.0
                } else {
                    continue;
                };
                let better = match leave {
                    None => true,
                    Some((li, lr)) => {
                        ratio < lr - 1e-12 || (ratio <= lr + 1e-12 && bland && basis[i] < basis[li])
                    }
                };
                if better {
                    leave = Some((i, ratio));
                }
            }
            let Some((r, ratio)) = leave else {
                return Err(LpError::Unbounded);
            };
            if ratio <= 1e-12 {
                degenerate_run += 1;
            } else {
                degenerate_run = 0;
            }

            // Pivot on (r, q).
            let piv = t[r][q];
            for v in &mut t[r] {
                *v /= piv;
            }
            let pivot_row: Vec<f64> = t[r].clone();
            for (i, row) in t.iter_mut().enumerate() {
                if i != r && row[q] != 0.0 {
                    let factor = row[q];
                    for (v, pv) in row.iter_mut().zip(&pivot_row) {
                        *v -= factor * pv;
                    }
                }
            }
            basis[r] = q;
            *iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn textbook_maximization() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.objective(), 36.0);
    }

    #[test]
    fn bounded_box_variables() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, -1.0);
        let y = m.add_var("y", 0.0, 1.0, -2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.5);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.objective(), -2.5); // y=1, x=0.5
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn shifted_lower_bounds() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, 10.0, 1.0);
        let y = m.add_var("y", 3.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.objective(), 7.0);
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn negated_upper_only_variable() {
        // x <= 4 with no lower bound; min -x -> x = 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, 4.0, -1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -100.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.value_of(x), 4.0);
    }

    #[test]
    fn split_free_variable() {
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -7.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.value_of(x), -7.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve_dense().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(m.solve_dense().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn negative_rhs_normalization() {
        // -x <= -3  ⇔  x >= 3.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, -1.0)], Cmp::Le, -3.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.value_of(x), 3.0);
    }

    #[test]
    fn equality_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.objective(), 14.0);
    }

    #[test]
    fn maximization_with_negative_coeffs() {
        // max -x + 2y, x,y in [0,5], x + y >= 2 -> x=0..? need x+y>=2:
        // best is y=5, x=0 (feasible since 5 >= 2), obj = 10.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, 5.0, -1.0);
        let y = m.add_var("y", 0.0, 5.0, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 2.0);
        let sol = m.solve_dense().unwrap();
        assert_close(sol.objective(), 10.0);
    }
}
