//! Sanctioned timing for solver paths.
//!
//! Solver code must not call `Instant::now()` directly (the
//! `wall-clock-in-solver` lint): timing readings are observable in
//! `SolveStats`, and a caller comparing runs bit-for-bit — the
//! determinism proptests, a replayed epoch, CI — needs them to be
//! reproducible. All solver timing therefore flows through [`Stopwatch`],
//! which deterministic callers can globally zero out with
//! [`set_enabled`]`(false)`: every reading becomes exactly `0.0` and the
//! wall clock is never consulted.
//!
//! Timing state never feeds solver *decisions* — pivot budgets are
//! iteration counts, not milliseconds — so disabling the clock changes
//! reports, never results.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enable or disable solver timing. Disabled, every
/// [`Stopwatch`] reads `0.0` ms and never consults the wall clock.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether solver timing is currently enabled.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// A wall-clock stopwatch that respects the global switch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<Instant>);

impl Stopwatch {
    /// Start timing (a no-op recording nothing when timing is disabled).
    pub fn start() -> Self {
        if is_enabled() {
            // lips-allow(wall-clock-in-solver): this is the sanctioned wrapper the lint points to
            Stopwatch(Some(Instant::now()))
        } else {
            Stopwatch(None)
        }
    }

    /// Milliseconds since [`Stopwatch::start`]; exactly `0.0` when timing
    /// was disabled at start time.
    pub fn elapsed_ms(&self) -> f64 {
        self.0.map_or(0.0, |t| t.elapsed().as_secs_f64() * 1e3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_stopwatch_reads_zero() {
        set_enabled(false);
        let sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert_eq!(sw.elapsed_ms(), 0.0);
        set_enabled(true);
        let sw = Stopwatch::start();
        assert!(sw.elapsed_ms() >= 0.0);
    }
}
