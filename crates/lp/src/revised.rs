//! Production solver: two-phase, bounded-variable revised primal simplex.
//!
//! Design notes (why this shape):
//!
//! * **Bounded variables.** Every variable of the LiPS scheduling LPs lives
//!   in `[0, 1]`; handling bounds natively (nonbasic-at-lower /
//!   nonbasic-at-upper, bound flips in the ratio test) keeps the basis a
//!   fraction of the size that a split `x = x⁺ − x⁻` reformulation would
//!   need.
//! * **Sparse product-form updates.** The basis inverse is represented as a
//!   Markowitz-ordered sparse LU factorization ([`crate::slu::SparseLu`];
//!   the dense backend survives as an option) plus a file of sparse eta
//!   vectors, refactorized periodically. FTRAN/BTRAN cost is proportional
//!   to the stored nonzeros rather than `m²`, which matters because the
//!   scheduler's bases are mostly slack (unit) columns.
//! * **Phase 1 with per-row artificials.** Rows whose slack cannot absorb
//!   the initial residual get a signed artificial column; phase 1 minimizes
//!   the artificial mass, phase 2 pins artificials to `[0,0]` and restores
//!   the true costs without rebuilding the basis.
//! * **Devex pricing + Bland fallback.** Devex reference weights approximate
//!   steepest-edge at a fraction of the cost and cut pivot counts on the
//!   long thin scheduling LPs; a partial-pricing window bounds the scan per
//!   iteration. After a run of degenerate pivots the solver switches to
//!   Bland's rule, which guarantees termination, and switches back once the
//!   objective moves again.
//! * **Warm starts.** [`RevisedSimplex::solve_with_warm_start`] seeds the
//!   basis from a named [`WarmStart`] snapshot (produced by every solve).
//!   A basis that is still primal feasible skips phase 1 entirely; a basis
//!   broken by model edits is repaired with per-row artificials and a short
//!   phase 1; anything unusable falls back to a cold solve. The warm start
//!   can change the pivot path but never the optimum.

#![allow(clippy::needless_range_loop)] // simplex kernels read clearer with indices

use crate::basis::{BasisStatus, WarmOutcome, WarmStart};
use crate::error::LpError;
use crate::lu::DenseLu;
use crate::model::{ConstraintId, Model, VarId};
use crate::slu::SparseLu;
use crate::solution::{Solution, SolveStats};
use crate::sparse::CsrMatrix;
use crate::standard::StandardForm;
use crate::{PIVOT_TOL, TOL};

/// Basis factorization backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LuBackend {
    /// Markowitz-ordered sparse LU (the default; cost tracks fill-in).
    #[default]
    Sparse,
    /// Dense LU with partial pivoting (`O(m³)` refactorization); kept for
    /// cross-checking and for tiny dense models.
    Dense,
}

/// Entering-variable pricing rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Pricing {
    /// Devex reference weights (approximate steepest edge): pick the
    /// nonbasic column maximizing `d_j² / w_j`. The default.
    #[default]
    Devex,
    /// Most-negative reduced cost.
    Dantzig,
}

/// Devex weights above this trigger a reference-framework reset (all
/// weights back to 1); unbounded weight growth makes the scores meaningless.
const DEVEX_RESET: f64 = 1e8;

/// Tuning knobs for [`RevisedSimplex`].
#[derive(Debug, Clone)]
pub struct RevisedOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Reduced-cost / feasibility tolerance.
    pub tol: f64,
    /// Minimum acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: usize,
    /// Partial pricing window: scan at most this many *eligible* columns
    /// per pricing pass, resuming where the previous pass stopped
    /// (`None` = full pricing). Cuts per-iteration cost from
    /// `O(n)` to `O(window)` on wide models at the price of slightly less
    /// greedy pivots; the optimum is unaffected (a pass that finds no
    /// eligible column in the window continues scanning the rest).
    pub partial_pricing: Option<usize>,
    /// Basis factorization backend.
    pub backend: LuBackend,
    /// Entering-variable pricing rule.
    pub pricing: Pricing,
}

impl Default for RevisedOptions {
    fn default() -> Self {
        RevisedOptions {
            max_iterations: 200_000,
            refactor_interval: 96,
            tol: TOL,
            pivot_tol: PIVOT_TOL,
            bland_trigger: 200,
            partial_pricing: Some(64),
            backend: LuBackend::Sparse,
            pricing: Pricing::Devex,
        }
    }
}

/// The solver itself; stateless between `solve` calls.
#[derive(Debug, Clone, Default)]
pub struct RevisedSimplex {
    /// Options used for every solve.
    pub options: RevisedOptions,
}

impl RevisedSimplex {
    /// Construct with explicit options.
    pub fn with_options(options: RevisedOptions) -> Self {
        RevisedSimplex { options }
    }

    /// Solve `model` to proven optimality (or a definitive error).
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        self.solve_with_warm_start(model, None)
    }

    /// Solve `model`, optionally seeding the simplex from a prior basis.
    ///
    /// The warm start is matched to the model by variable name and row name
    /// (see [`WarmStart`]); unmatched columns get their cold-start
    /// placement. Three things can happen, reported in
    /// [`SolveStats::warm`]:
    ///
    /// * the seeded basis is primal feasible → phase 1 is skipped,
    /// * it violates some bounds (model edits) → violating basics are
    ///   swapped for per-row artificials and a short phase 1 repairs them,
    /// * it is unusable (singular, wrong shape) → full cold solve.
    ///
    /// The optimum is identical in all three cases; only the pivot path
    /// changes.
    pub fn solve_with_warm_start(
        &self,
        model: &Model,
        warm: Option<&WarmStart>,
    ) -> Result<Solution, LpError> {
        model.validate()?;
        let t0 = crate::clock::Stopwatch::start();
        let sf = StandardForm::from_model(model);
        let warm_states = warm
            .filter(|ws| !ws.is_empty())
            .and_then(|ws| resolve_warm_states(model, &sf, ws));

        let mut w = Worker::new(&sf, &self.options);
        let mut outcome = WarmOutcome::Cold;
        if let Some(states) = &warm_states {
            match w.init_warm_basis(states) {
                WarmInit::Feasible => outcome = WarmOutcome::Warm,
                WarmInit::Repaired => outcome = WarmOutcome::WarmRepaired,
                WarmInit::Failed => {
                    // Anything left over from the attempt (partial basis,
                    // repair artificials) is untrustworthy: start fresh.
                    w = Worker::new(&sf, &self.options);
                }
            }
        }
        if outcome == WarmOutcome::Cold {
            w.init_basis();
            w.refactor()?;
        } else if outcome == WarmOutcome::WarmRepaired {
            // A repaired basis is usually a handful of pivots from
            // feasibility, but a bad repair can strand phase 1 on a
            // degenerate plateau the cold crash basis would never visit.
            // Budget the probe; if it runs out, restart cold below so the
            // worst case is a bounded prefix of phase 1 plus one cold solve.
            w.iteration_budget = Some((sf.nrows() / 2).max(256));
        }

        // Phase 1: minimize total artificial mass. A feasible warm basis
        // has no artificials and skips this entirely; a repaired one only
        // carries artificials for the rows broken by model edits.
        if w.has_artificials() {
            w.set_phase1_costs();
            match w.run() {
                Err(LpError::IterationLimit { .. }) if w.iteration_budget.is_some() => {
                    // Repaired warm start blew its budget: abandon it, but
                    // keep the wasted pivots on the books so the stats stay
                    // honest about what the warm attempt really cost.
                    let wasted = w.iterations;
                    outcome = WarmOutcome::Cold;
                    w = Worker::new(&sf, &self.options);
                    w.iterations = wasted;
                    w.init_basis();
                    w.refactor()?;
                    w.set_phase1_costs();
                    w.run()?;
                }
                r => r?,
            }
            w.iteration_budget = None;
            // Per-row relative residual check: an artificial's value is the
            // residual of *its own* row, so compare it against that row's
            // scale — a global max-|b| scale would let large capacity rows
            // mask real infeasibility on small rows.
            if w.worst_relative_infeasibility() > 1e-7 {
                return Err(LpError::Infeasible);
            }
            w.pin_artificials();
        }
        w.phase1_iterations = w.iterations;

        // Phase 2: the real objective.
        w.set_phase2_costs();
        w.run()?;

        let values = w.x[..sf.n_structural].to_vec();
        let internal: f64 = w.costs.iter().zip(&w.x).map(|(c, x)| c * x).sum();
        let duals = w.current_duals();
        let stats = SolveStats {
            iterations: w.iterations,
            phase1_iterations: w.phase1_iterations,
            refactors: w.refactors,
            ftran_nnz: w.ftran_nnz,
            warm: outcome,
            solve_ms: t0.elapsed_ms(),
            ..SolveStats::default()
        };
        let next_warm = extract_warm_start(model, &sf, &w);
        Ok(
            Solution::new(sf.external_objective(internal), values, duals, w.iterations)
                .with_stats(stats)
                .with_warm_start(next_warm),
        )
    }
}

/// Map a warm start's named statuses onto this model's standard-form
/// columns. Returns `None` when not a single status matched (treat as
/// cold — the warm start is for a different model).
pub(crate) fn resolve_warm_states(
    model: &Model,
    sf: &StandardForm,
    ws: &WarmStart,
) -> Option<Vec<Option<BasisStatus>>> {
    let mut states: Vec<Option<BasisStatus>> = vec![None; sf.ncols()];
    let mut matched = 0usize;
    for j in 0..sf.n_structural {
        if let Some(st) = ws.var(model.var_name(VarId(j))) {
            states[j] = Some(st);
            matched += 1;
        }
    }
    for i in 0..sf.nrows() {
        let name = model.constraint_name(ConstraintId(i));
        let st = if name.is_empty() {
            ws.row(&format!("#{i}"))
        } else {
            ws.row(name)
        };
        if let Some(st) = st {
            states[sf.n_structural + i] = Some(st);
            matched += 1;
        }
    }
    (matched > 0).then_some(states)
}

/// Snapshot the final basis as a name-keyed warm start for the next solve.
pub(crate) fn extract_warm_start(model: &Model, sf: &StandardForm, w: &Worker) -> WarmStart {
    let mut ws = WarmStart::new();
    for j in 0..sf.n_structural {
        ws.set_var(model.var_name(VarId(j)), to_basis_status(w.state[j]));
    }
    for i in 0..sf.nrows() {
        let name = model.constraint_name(ConstraintId(i));
        let key = if name.is_empty() {
            format!("#{i}")
        } else {
            name.to_string()
        };
        ws.set_row(key, to_basis_status(w.state[sf.n_structural + i]));
    }
    ws
}

pub(crate) fn to_basis_status(s: VarState) -> BasisStatus {
    match s {
        VarState::Basic => BasisStatus::Basic,
        VarState::AtLower => BasisStatus::AtLower,
        VarState::AtUpper => BasisStatus::AtUpper,
        VarState::Free => BasisStatus::Free,
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic with both bounds infinite; rests at zero.
    Free,
}

/// Outcome of seeding the worker from a warm basis.
enum WarmInit {
    /// Basis factorized and primal feasible: go straight to phase 2.
    Feasible,
    /// Basis factorized after swapping violating basics for artificials:
    /// needs a (short) phase 1.
    Repaired,
    /// Unusable; caller must rebuild the worker and cold-start.
    Failed,
}

/// One product-form update: `B_new = B_old · E` where `E` is the identity
/// with column `row` replaced by the FTRAN'd entering column. Only the
/// nonzeros are stored: `diag` is the pivot entry, `nnz` the off-pivot
/// entries — the columns are typically very sparse and the dense scan was
/// measurable on large bases.
pub(crate) struct Eta {
    pub(crate) row: usize,
    pub(crate) diag: f64,
    pub(crate) nnz: Vec<(usize, f64)>,
}

/// Basis factorization, either backend.
pub(crate) enum Factor {
    Dense(DenseLu),
    Sparse(SparseLu),
}

impl Factor {
    fn solve_in_place(&self, v: &mut [f64], scratch: &mut [f64]) {
        match self {
            Factor::Dense(lu) => lu.solve_in_place(v),
            Factor::Sparse(lu) => lu.solve_in_place(v, scratch),
        }
    }

    fn solve_transpose_in_place(&self, v: &mut [f64], scratch: &mut [f64]) {
        match self {
            Factor::Dense(lu) => lu.solve_transpose_in_place(v),
            Factor::Sparse(lu) => lu.solve_transpose_in_place(v, scratch),
        }
    }

    fn pivot_row(&self, pos: usize) -> usize {
        match self {
            Factor::Dense(lu) => lu.pivot_row(pos),
            Factor::Sparse(lu) => lu.pivot_row(pos),
        }
    }
}

pub(crate) struct Worker<'a> {
    pub(crate) sf: &'a StandardForm,
    pub(crate) opts: &'a RevisedOptions,
    /// Number of non-artificial columns (structural + slack).
    pub(crate) n_real: usize,
    /// Artificial column sign per row (`0.0` = row has no artificial).
    art_sign: Vec<f64>,
    /// Column ids of created artificials (each ≥ `n_real`).
    art_cols: Vec<usize>,
    /// Maps artificial column id → row.
    art_row: Vec<usize>,
    pub(crate) lb: Vec<f64>,
    pub(crate) ub: Vec<f64>,
    pub(crate) costs: Vec<f64>,
    pub(crate) state: Vec<VarState>,
    /// Basic variable per row.
    pub(crate) basis: Vec<usize>,
    /// Current value of every column.
    pub(crate) x: Vec<f64>,
    factor: Option<Factor>,
    pub(crate) etas: Vec<Eta>,
    /// Length-`m` scratch for the sparse backend's solves.
    scratch: Vec<f64>,
    /// Reused per-refactorization workspace: the basis columns handed to
    /// the sparse factorization (drained by it, refilled next time).
    spcols: Vec<Vec<(usize, f64)>>,
    /// Row-major mirror of `sf.a` for devex pivot-row computation
    /// (`None` under Dantzig pricing).
    pub(crate) csr: Option<CsrMatrix>,
    /// Devex reference weights, one per column (artificials included).
    devex_w: Vec<f64>,
    pub(crate) iterations: usize,
    pub(crate) phase1_iterations: usize,
    pub(crate) refactors: usize,
    /// Nonzeros produced by entering-column FTRANs (see
    /// [`SolveStats::ftran_nnz`]).
    pub(crate) ftran_nnz: u64,
    pub(crate) degenerate_run: usize,
    pub(crate) bland: bool,
    in_phase1: bool,
    /// Rotating start offset for partial pricing.
    price_cursor: usize,
    /// Extra pivot cap for the current phase (on top of
    /// `opts.max_iterations`). Set while probing a repaired warm basis so a
    /// pathological repair can never cost more than a bounded prefix of
    /// phase 1 before the caller falls back to a cold start.
    pub(crate) iteration_budget: Option<usize>,
}

impl<'a> Worker<'a> {
    pub(crate) fn new(sf: &'a StandardForm, opts: &'a RevisedOptions) -> Self {
        let n_real = sf.ncols();
        let m = sf.nrows();
        let csr = match opts.pricing {
            Pricing::Devex => Some(CsrMatrix::from_csc(&sf.a)),
            Pricing::Dantzig => None,
        };
        Worker {
            sf,
            opts,
            n_real,
            art_sign: vec![0.0; m],
            art_cols: Vec::new(),
            art_row: Vec::new(),
            lb: sf.lb.clone(),
            ub: sf.ub.clone(),
            costs: vec![0.0; n_real],
            state: vec![VarState::AtLower; n_real],
            basis: Vec::with_capacity(m),
            x: vec![0.0; n_real],
            factor: None,
            etas: Vec::new(),
            scratch: vec![0.0; m],
            spcols: Vec::new(),
            csr,
            devex_w: vec![1.0; n_real],
            iterations: 0,
            phase1_iterations: 0,
            refactors: 0,
            ftran_nnz: 0,
            degenerate_run: 0,
            bland: false,
            in_phase1: false,
            price_cursor: 0,
            iteration_budget: None,
        }
    }

    /// Guarantee the CSR mirror exists. Devex pricing builds it eagerly;
    /// the dual ratio test needs it regardless of the pricing rule because
    /// pivot rows are accumulated over the rows of `rho`'s support.
    pub(crate) fn ensure_csr(&mut self) {
        if self.csr.is_none() {
            self.csr = Some(CsrMatrix::from_csc(&self.sf.a));
        }
    }

    pub(crate) fn m(&self) -> usize {
        self.sf.nrows()
    }

    pub(crate) fn ncols(&self) -> usize {
        self.n_real + self.art_cols.len()
    }

    fn has_artificials(&self) -> bool {
        !self.art_cols.is_empty()
    }

    /// How much of the basis a warm-start repair may touch before the
    /// attempt is abandoned. Every repaired slot demotes a basic to an
    /// arbitrary bound and spends a phase-1 artificial on its row, so past
    /// a modest share of the rows the repaired point is *worse* than the
    /// cold crash basis; measured on the epoch workload the crossover sits
    /// near an eighth of the rows.
    pub(crate) fn repair_limit(&self) -> usize {
        (self.m() / 8).max(8)
    }

    /// Visit the nonzero entries of a column (handles artificial columns,
    /// which are signed unit vectors). Closure-based to stay allocation-free
    /// on the pricing hot path.
    pub(crate) fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n_real {
            for (r, v) in self.sf.a.col(j) {
                f(r, v);
            }
        } else {
            let row = self.art_row[j - self.n_real];
            f(row, self.art_sign[row]);
        }
    }

    /// Cold-start nonbasic placement: rest at the finite bound nearest
    /// zero.
    fn default_nonbasic(lo: f64, hi: f64) -> (VarState, f64) {
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                if lo.abs() <= hi.abs() {
                    (VarState::AtLower, lo)
                } else {
                    (VarState::AtUpper, hi)
                }
            }
            (true, false) => (VarState::AtLower, lo),
            (false, true) => (VarState::AtUpper, hi),
            (false, false) => (VarState::Free, 0.0),
        }
    }

    /// Place column `j` nonbasic, honoring a requested status when it is
    /// consistent with the bounds, falling back to the cold placement.
    pub(crate) fn place_nonbasic(&mut self, j: usize, requested: Option<BasisStatus>) {
        let (lo, hi) = (self.lb[j], self.ub[j]);
        let (st, v) = match requested {
            Some(BasisStatus::AtLower) if lo.is_finite() => (VarState::AtLower, lo),
            Some(BasisStatus::AtUpper) if hi.is_finite() => (VarState::AtUpper, hi),
            Some(BasisStatus::Free) if !lo.is_finite() && !hi.is_finite() => (VarState::Free, 0.0),
            _ => Self::default_nonbasic(lo, hi),
        };
        self.state[j] = st;
        self.x[j] = v;
    }

    /// Place structural and slack variables at their initial nonbasic
    /// positions, choose the starting basis (slack where it can absorb the
    /// row residual, artificial otherwise).
    fn init_basis(&mut self) {
        let n_struct = self.sf.n_structural;
        let m = self.m();

        // Structural variables: rest at the finite bound nearest zero.
        for j in 0..n_struct {
            let (st, v) = Self::default_nonbasic(self.lb[j], self.ub[j]);
            self.state[j] = st;
            self.x[j] = v;
        }

        // Row residuals with only structural variables placed.
        let mut resid = self.sf.b.clone();
        for j in 0..n_struct {
            if self.x[j] != 0.0 {
                for (r, v) in self.sf.a.col(j) {
                    resid[r] -= v * self.x[j];
                }
            }
        }

        // One slack per row: basic if it can hold the residual, else pinned
        // at its nearest bound with an artificial absorbing the rest.
        self.basis.clear();
        for i in 0..m {
            let s = n_struct + i;
            let (lo, hi) = (self.lb[s], self.ub[s]);
            let r = resid[i];
            if r >= lo - self.opts.tol && r <= hi + self.opts.tol {
                self.state[s] = VarState::Basic;
                self.x[s] = r;
                self.basis.push(s);
            } else {
                let v = if r < lo { lo } else { hi };
                self.state[s] = if v == lo {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                };
                self.x[s] = v;
                let excess = r - v;
                let sign = if excess >= 0.0 { 1.0 } else { -1.0 };
                let col = self.push_artificial(i, sign);
                self.x[col] = excess.abs();
                self.basis.push(col);
            }
        }
    }

    /// Append a basic artificial column for `row` with the given sign and
    /// return its column id. The caller sets its value and basis slot.
    fn push_artificial(&mut self, row: usize, sign: f64) -> usize {
        debug_assert_eq!(self.art_sign[row], 0.0, "row already has an artificial");
        self.art_sign[row] = sign;
        let col = self.n_real + self.art_cols.len();
        self.art_cols.push(col);
        self.art_row.push(row);
        self.lb.push(0.0);
        self.ub.push(f64::INFINITY);
        self.costs.push(0.0);
        self.state.push(VarState::Basic);
        self.x.push(0.0);
        self.devex_w.push(1.0);
        col
    }

    /// Seed the basis from name-resolved warm statuses. Never fails the
    /// solve: any inconsistency degrades to [`WarmInit::Failed`] and the
    /// caller cold-starts.
    fn init_warm_basis(&mut self, states: &[Option<BasisStatus>]) -> WarmInit {
        let m = self.m();
        let n_struct = self.sf.n_structural;

        // Nonbasic placement + basic candidates.
        let mut basics: Vec<usize> = Vec::new();
        for j in 0..self.n_real {
            if states[j] == Some(BasisStatus::Basic) {
                basics.push(j);
            } else {
                self.place_nonbasic(j, states[j]);
            }
        }
        // Over-full basis (name collisions, model edits): demote the
        // highest-index extras — those are slacks / late-added columns,
        // the cheapest to re-derive.
        while basics.len() > m {
            let j = basics.pop().expect("non-empty");
            self.place_nonbasic(j, None);
        }
        // Fail fast when model edits wiped out a sizeable share of the
        // basis: missing slots get completed with guessed slacks that
        // mostly come straight back as repairs, so far past the repair
        // limit the attempt is already doomed — bail before spending a
        // factorization (and possibly a rank sweep) on it. The factor of
        // two is headroom for the completions that do land feasible.
        if m - basics.len() > 2 * self.repair_limit() {
            return WarmInit::Failed;
        }
        // Under-full: complete with slacks of uncovered rows (every row has
        // one, so this always reaches m).
        if basics.len() < m {
            let mut in_basis = vec![false; self.n_real];
            for &j in &basics {
                in_basis[j] = true;
            }
            for i in 0..m {
                if basics.len() == m {
                    break;
                }
                let s = n_struct + i;
                if !in_basis[s] {
                    in_basis[s] = true;
                    basics.push(s);
                }
            }
        }
        if basics.len() != m {
            return WarmInit::Failed;
        }
        basics.sort_unstable();
        for &j in &basics {
            self.state[j] = VarState::Basic;
        }
        self.basis = basics;
        let mut repaired = false;
        if self.refactor().is_err() {
            // Model edits can leave the name-matched columns rank-deficient
            // (a job's avail set changed, a column vanished). Swap the
            // dependent ones for slacks of the rows they fail to cover and
            // retry once before giving up.
            if !self.prune_dependent_basics(self.repair_limit()) || self.refactor().is_err() {
                return WarmInit::Failed;
            }
            repaired = true;
        }

        // Repair loop: basics pushed out of their bounds by model edits are
        // demoted to the violated bound and replaced by an artificial unit
        // column on their pivot row (which keeps the basis nonsingular).
        // Artificials that come out negative get their sign flipped — that
        // negates exactly their own basic value and nothing else. A few
        // rounds suffice in practice; anything that still violates after
        // that is handed back as Failed.
        for round in 0..4 {
            let mut flipped = false;
            for k in 0..self.art_cols.len() {
                let j = self.art_cols[k];
                if self.x[j] < -self.opts.tol {
                    let row = self.art_row[k];
                    self.art_sign[row] = -self.art_sign[row];
                    flipped = true;
                }
            }
            if flipped && !self.refactor_or_prune() {
                return WarmInit::Failed;
            }

            let mut violators: Vec<usize> = Vec::new();
            for p in 0..m {
                let j = self.basis[p];
                let v = self.x[j];
                let below = self.lb[j].is_finite()
                    && v < self.lb[j] - self.opts.tol * (1.0 + self.lb[j].abs());
                let above = self.ub[j].is_finite()
                    && v > self.ub[j] + self.opts.tol * (1.0 + self.ub[j].abs());
                if below || above {
                    violators.push(p);
                }
            }
            if violators.is_empty() {
                return if repaired {
                    WarmInit::Repaired
                } else {
                    WarmInit::Feasible
                };
            }
            if round == 3 {
                break;
            }
            // Cold-fallback condition: a repair that would touch more than
            // the limit's share of the basis starts phase 1 from a *worse*
            // point than the cold crash basis — hand back Failed and let
            // the caller cold-start.
            if self.art_cols.len() + violators.len() > self.repair_limit() {
                return WarmInit::Failed;
            }
            for &p in &violators {
                let out = self.basis[p];
                if out >= self.n_real {
                    // An artificial out of bounds even after sign flips:
                    // numerics are off, don't fight them.
                    return WarmInit::Failed;
                }
                let row = self.factor.as_ref().expect("factorized").pivot_row(p);
                if self.art_sign[row] != 0.0 {
                    return WarmInit::Failed;
                }
                let (st, v) = if self.x[out] < self.lb[out] {
                    (VarState::AtLower, self.lb[out])
                } else {
                    (VarState::AtUpper, self.ub[out])
                };
                self.state[out] = st;
                self.x[out] = v;
                let col = self.push_artificial(row, 1.0);
                self.basis[p] = col;
                repaired = true;
            }
            // A unit swap on the factorization's pivot row is almost always
            // nonsingular, but later columns' elimination ran through the
            // replaced one, so it isn't guaranteed — degrade through the
            // rank repair before abandoning the warm start.
            if !self.refactor_or_prune() {
                return WarmInit::Failed;
            }
        }
        WarmInit::Failed
    }

    /// Refactorize, and on singularity retry once after swapping the
    /// dependent columns for slacks (see [`Self::prune_dependent_basics`]).
    pub(crate) fn refactor_or_prune(&mut self) -> bool {
        self.refactor().is_ok()
            || (self.prune_dependent_basics(self.repair_limit()) && self.refactor().is_ok())
    }

    /// The seeded warm basis failed to factorize: some name-matched columns
    /// no longer span the row space. Identify a maximal independent subset
    /// with a dense rank-revealing elimination and replace each dependent
    /// column with the slack of a row the independent set leaves uncovered
    /// (slacks are unit columns, so the result is structurally nonsingular).
    /// Runs only on the factorization-failure path, so the O(m³) dense sweep
    /// never touches a healthy solve. Returns `false` when no full basis can
    /// be assembled (caller cold-starts).
    fn prune_dependent_basics(&mut self, limit: usize) -> bool {
        let m = self.m();
        let n_struct = self.sf.n_structural;
        // Dense copy of the seeded basis columns, a[r * m + p].
        let mut a = vec![0.0; m * m];
        for (p, &j) in self.basis.iter().enumerate() {
            self.for_col(j, |r, v| a[r * m + p] = v);
        }
        let mut row_used = vec![false; m];
        let mut dependent: Vec<usize> = Vec::new();
        for p in 0..m {
            let mut best = self.opts.pivot_tol;
            let mut best_row = usize::MAX;
            for (r, used) in row_used.iter().enumerate() {
                if !used && a[r * m + p].abs() > best {
                    best = a[r * m + p].abs();
                    best_row = r;
                }
            }
            if best_row == usize::MAX {
                dependent.push(p);
                if dependent.len() > limit {
                    // More dependent columns than the repair loop would
                    // ever accept as violators: the attempt is doomed, so
                    // stop the O(m³) sweep here.
                    return false;
                }
                continue;
            }
            row_used[best_row] = true;
            // Eliminate the pivot row from later columns. Earlier pivot rows
            // are already zero in column p, so skipping used rows is exact.
            let piv = a[best_row * m + p];
            for q in (p + 1)..m {
                let f = a[best_row * m + q] / piv;
                if f == 0.0 {
                    continue;
                }
                for (r, used) in row_used.iter().enumerate() {
                    if !used {
                        a[r * m + q] -= f * a[r * m + p];
                    }
                }
            }
        }
        if dependent.is_empty() {
            // Full rank by this sweep yet LU refused: numerical trouble the
            // warm path should not fight.
            return false;
        }
        let mut is_basic = vec![false; self.ncols()];
        for &j in &self.basis {
            is_basic[j] = true;
        }
        let mut unused: Vec<usize> = (0..m).filter(|&r| !row_used[r]).collect();
        for &p in &dependent {
            let Some(pos) = unused.iter().position(|&r| !is_basic[n_struct + r]) else {
                return false;
            };
            let r = unused.swap_remove(pos);
            let out = self.basis[p];
            is_basic[out] = false;
            self.place_nonbasic(out, None);
            let s = n_struct + r;
            is_basic[s] = true;
            self.state[s] = VarState::Basic;
            self.basis[p] = s;
        }
        true
    }

    fn set_phase1_costs(&mut self) {
        self.in_phase1 = true;
        for c in &mut self.costs {
            *c = 0.0;
        }
        for &j in &self.art_cols {
            self.costs[j] = 1.0;
        }
        // New phase, new devex reference framework.
        self.devex_w.fill(1.0);
    }

    pub(crate) fn set_phase2_costs(&mut self) {
        self.in_phase1 = false;
        for (j, c) in self.costs.iter_mut().enumerate() {
            *c = if j < self.n_real { self.sf.c[j] } else { 0.0 };
        }
        self.devex_w.fill(1.0);
    }

    /// Largest artificial value relative to its own row's magnitude.
    fn worst_relative_infeasibility(&self) -> f64 {
        self.art_cols
            .iter()
            .map(|&j| {
                let row = self.art_row[j - self.n_real];
                self.x[j].max(0.0) / (1.0 + self.sf.b[row].abs())
            })
            .fold(0.0, f64::max)
    }

    /// After a successful phase 1, forbid artificials from ever re-entering:
    /// clamp them into `[0, 0]`.
    fn pin_artificials(&mut self) {
        for &j in &self.art_cols {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
            if self.state[j] != VarState::Basic {
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
    }

    /// Rebuild the basis factorization and recompute the basic values from
    /// scratch (limits numerical drift).
    ///
    /// Both backends recycle their working storage across calls: the sparse
    /// path refills the per-column workspace the previous factorization
    /// drained, the dense path refills the previous factor's `m × m`
    /// buffer. Refactorization happens every few dozen pivots, and on large
    /// bases the repeated allocation (and its page faults) used to dominate
    /// the factorization itself.
    pub(crate) fn refactor(&mut self) -> Result<(), LpError> {
        let m = self.m();
        self.refactors += 1;
        match self.opts.backend {
            LuBackend::Sparse => {
                let mut cols = std::mem::take(&mut self.spcols);
                cols.resize_with(m, Vec::new);
                for (i, &j) in self.basis.iter().enumerate() {
                    cols[i].clear();
                    self.for_col(j, |r, v| cols[i].push((r, v)));
                }
                let res = SparseLu::factorize(m, &mut cols, self.opts.pivot_tol);
                self.spcols = cols;
                self.factor = Some(Factor::Sparse(res?));
            }
            LuBackend::Dense => {
                let mut dense = match self.factor.take() {
                    Some(Factor::Dense(old)) if old.dim() == m => {
                        let mut buf = old.into_buffer();
                        buf.fill(0.0);
                        buf
                    }
                    _ => vec![0.0; m * m],
                };
                for (i, &j) in self.basis.iter().enumerate() {
                    self.for_col(j, |r, v| dense[r * m + i] = v);
                }
                self.factor = Some(Factor::Dense(DenseLu::factorize(
                    m,
                    dense,
                    self.opts.pivot_tol,
                )?));
            }
        }
        self.etas.clear();
        self.recompute_basic_values();
        Ok(())
    }

    /// xB = B⁻¹ (b − N x_N).
    pub(crate) fn recompute_basic_values(&mut self) {
        let m = self.m();
        let mut rhs = self.sf.b.clone();
        for j in 0..self.ncols() {
            if self.state[j] != VarState::Basic && self.x[j] != 0.0 {
                let xj = self.x[j];
                self.for_col(j, |r, v| rhs[r] -= v * xj);
            }
        }
        self.ftran(&mut rhs);
        for i in 0..m {
            self.x[self.basis[i]] = rhs[i];
        }
    }

    /// Solve `B t = v` in place.
    pub(crate) fn ftran(&mut self, v: &mut [f64]) {
        let Worker {
            factor,
            scratch,
            etas,
            ..
        } = self;
        factor
            .as_ref()
            .expect("basis factorized")
            .solve_in_place(v, scratch);
        for eta in etas.iter() {
            let tr = v[eta.row] / eta.diag;
            if tr != 0.0 {
                for &(i, w) in &eta.nnz {
                    v[i] -= w * tr;
                }
            }
            v[eta.row] = tr;
        }
    }

    /// Solve `Bᵀ y = v` in place.
    pub(crate) fn btran(&mut self, v: &mut [f64]) {
        let Worker {
            factor,
            scratch,
            etas,
            ..
        } = self;
        for eta in etas.iter().rev() {
            let mut s = v[eta.row];
            for &(i, w) in &eta.nnz {
                s -= w * v[i];
            }
            v[eta.row] = s / eta.diag;
        }
        factor
            .as_ref()
            .expect("basis factorized")
            .solve_transpose_in_place(v, scratch);
    }

    /// Simplex multipliers for the *current* cost vector, into a reused
    /// buffer.
    pub(crate) fn current_duals_into(&mut self, y: &mut Vec<f64>) {
        y.clear();
        y.extend(self.basis.iter().map(|&j| self.costs[j]));
        self.btran(y);
    }

    /// Simplex multipliers for the *current* cost vector (allocating; used
    /// once per solve for the returned duals).
    pub(crate) fn current_duals(&mut self) -> Vec<f64> {
        let mut y = Vec::new();
        self.current_duals_into(&mut y);
        y
    }

    /// Reduced cost of nonbasic column `j` given multipliers `y`.
    pub(crate) fn reduced_cost(&self, y: &[f64], j: usize) -> f64 {
        if j < self.n_real {
            self.costs[j] - self.sf.a.dot_col(y, j)
        } else {
            let row = self.art_row[j - self.n_real];
            self.costs[j] - y[row] * self.art_sign[row]
        }
    }

    /// Pick the entering column, honoring the pricing rule or Bland mode.
    /// Returns `(column, direction)` with direction `+1` (increase from
    /// lower/free) or `-1` (decrease from upper).
    fn price(&mut self, y: &[f64]) -> Option<(usize, f64)> {
        let tol = self.opts.tol;
        let n = self.ncols();
        let window = if self.bland {
            None
        } else {
            self.opts.partial_pricing
        };
        let devex = self.opts.pricing == Pricing::Devex && !self.bland;
        let start = self.price_cursor % n.max(1);
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, score)
        let mut eligible_seen = 0usize;
        for step in 0..n {
            // Bland mode must scan in plain index order for its
            // termination guarantee; otherwise rotate from the cursor so
            // partial pricing covers all columns fairly across passes.
            let j = if self.bland { step } else { (start + step) % n };
            if self.state[j] == VarState::Basic {
                continue;
            }
            // Fixed columns (including pinned artificials) can never move.
            if self.lb[j] == self.ub[j] {
                continue;
            }
            let (dir, viol) = match self.state[j] {
                VarState::Basic => unreachable!(),
                VarState::AtLower | VarState::Free => {
                    let d = self.reduced_cost(y, j);
                    if d < -tol {
                        (1.0, -d)
                    } else if self.state[j] == VarState::Free && d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
                VarState::AtUpper => {
                    let d = self.reduced_cost(y, j);
                    if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            if self.bland {
                // Bland: first eligible index wins.
                return Some((j, dir));
            }
            let score = if devex {
                viol * viol / self.devex_w[j]
            } else {
                viol
            };
            match best {
                Some((_, _, bs)) if bs >= score => {}
                _ => best = Some((j, dir, score)),
            }
            eligible_seen += 1;
            if let Some(w) = window {
                if eligible_seen >= w {
                    // Resume the next pass after this column.
                    self.price_cursor = (start + step + 1) % n;
                    break;
                }
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// Devex reference-weight update after choosing pivot row `r` for
    /// entering column `q` with FTRAN'd column `w` (so `w[r]` is the pivot
    /// element α_rq). Computes the pivot row `α_r = (B⁻ᵀe_r)ᵀ A` sparsely
    /// through the CSR mirror and applies the classical update
    /// `w_j = max(w_j, (α_rj/α_rq)² w_q)`.
    fn devex_update(
        &mut self,
        q: usize,
        r: usize,
        w: &[f64],
        rho: &mut [f64],
        acc: &mut [f64],
        touched: &mut Vec<usize>,
    ) {
        let m = self.m();
        let wr = w[r];
        if wr == 0.0 {
            return;
        }
        rho.fill(0.0);
        rho[r] = 1.0;
        self.btran(rho);
        {
            let csr = self
                .csr
                .as_ref()
                .expect("devex pricing needs the CSR mirror");
            for i in 0..m {
                let ri = rho[i];
                if ri == 0.0 {
                    continue;
                }
                for (j, a) in csr.row(i) {
                    if acc[j] == 0.0 {
                        touched.push(j);
                    }
                    acc[j] += ri * a;
                }
            }
        }
        let gq = self.devex_w[q];
        let mut needs_reset = false;
        let mut bump = |wj: &mut f64, alpha: f64| {
            let ratio = alpha / wr;
            let cand = ratio * ratio * gq;
            if cand > *wj {
                *wj = cand;
                if cand > DEVEX_RESET {
                    needs_reset = true;
                }
            }
        };
        for &j in touched.iter() {
            if j != q && self.state[j] != VarState::Basic && self.lb[j] != self.ub[j] {
                bump(&mut self.devex_w[j], acc[j]);
            }
        }
        // Artificial columns are signed unit vectors: α_rj = ρ[row]·sign.
        for k in 0..self.art_cols.len() {
            let j = self.art_cols[k];
            if self.state[j] == VarState::Basic || self.lb[j] == self.ub[j] {
                continue;
            }
            let row = self.art_row[k];
            bump(&mut self.devex_w[j], rho[row] * self.art_sign[row]);
        }
        // The leaving variable re-enters the nonbasic pool with the weight
        // the devex recurrence assigns it.
        let out = self.basis[r];
        self.devex_w[out] = (gq / (wr * wr)).max(1.0);
        for &j in touched.iter() {
            acc[j] = 0.0;
        }
        touched.clear();
        if needs_reset {
            self.devex_w.fill(1.0);
        }
    }

    /// One full simplex phase with the current cost vector.
    pub(crate) fn run(&mut self) -> Result<(), LpError> {
        let m = self.m();
        let n = self.ncols();
        // Per-phase scratch, reused across every iteration of the loop —
        // the per-iteration allocations here used to dominate small pivots.
        let mut y = Vec::with_capacity(m);
        let mut w = vec![0.0; m];
        let mut rho = vec![0.0; m];
        let mut acc = vec![0.0; n];
        let mut touched: Vec<usize> = Vec::new();
        loop {
            let cap = self.iteration_budget.map_or(self.opts.max_iterations, |b| {
                b.min(self.opts.max_iterations)
            });
            if self.iterations >= cap {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            self.current_duals_into(&mut y);
            let Some((q, dir)) = self.price(&y) else {
                return Ok(()); // phase optimal
            };

            // FTRAN the entering column.
            w.fill(0.0);
            self.for_col(q, |r, v| w[r] += v);
            self.ftran(&mut w);

            // Ratio test: how far can x_q move?
            let bound_gap = if self.lb[q].is_finite() && self.ub[q].is_finite() {
                self.ub[q] - self.lb[q]
            } else {
                f64::INFINITY
            };
            let mut t = bound_gap;
            let mut leaving: Option<(usize, VarState)> = None;
            let mut wnnz = 0u64;
            for i in 0..m {
                let wi = w[i];
                if wi != 0.0 {
                    wnnz += 1;
                }
                if wi.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let bvar = self.basis[i];
                // x_B changes at rate −dir·w per unit of t.
                let delta = dir * wi;
                let (limit, hits) = if delta > 0.0 {
                    let lo = self.lb[bvar];
                    if lo.is_finite() {
                        ((self.x[bvar] - lo) / delta, VarState::AtLower)
                    } else {
                        continue;
                    }
                } else {
                    let hi = self.ub[bvar];
                    if hi.is_finite() {
                        ((hi - self.x[bvar]) / (-delta), VarState::AtUpper)
                    } else {
                        continue;
                    }
                };
                let limit = limit.max(0.0);
                let better = match leaving {
                    None => limit < t - 1e-12,
                    Some((cur, _)) => {
                        if self.bland {
                            // Bland tie-break: smaller basic variable index.
                            limit < t - 1e-12
                                || (limit <= t + 1e-12 && self.basis[i] < self.basis[cur])
                        } else {
                            // Prefer larger pivot magnitude on near-ties for
                            // numerical stability.
                            limit < t - 1e-12 || (limit <= t + 1e-12 && wi.abs() > w[cur].abs())
                        }
                    }
                };
                if better {
                    t = limit.min(t);
                    leaving = Some((i, hits));
                }
            }
            self.ftran_nnz += wnnz;

            if t.is_infinite() {
                return if self.in_phase1 {
                    // Phase-1 objective is bounded below by 0; an unbounded
                    // ray here means numerical trouble.
                    Err(LpError::SingularBasis)
                } else {
                    Err(LpError::Unbounded)
                };
            }

            match leaving {
                None => {
                    // Bound flip: x_q jumps to its opposite bound.
                    for i in 0..m {
                        if w[i] != 0.0 {
                            self.x[self.basis[i]] -= dir * t * w[i];
                        }
                    }
                    self.x[q] = if dir > 0.0 { self.ub[q] } else { self.lb[q] };
                    self.state[q] = if dir > 0.0 {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                }
                Some((r, hits)) => {
                    if w[r].abs() <= self.opts.pivot_tol {
                        // Pivot too small; refactorize and retry this
                        // iteration with fresh numerics.
                        self.refactor()?;
                        continue;
                    }
                    // Devex weights must be updated against the basis
                    // *before* this pivot is applied.
                    if self.opts.pricing == Pricing::Devex && !self.bland {
                        self.devex_update(q, r, &w, &mut rho, &mut acc, &mut touched);
                    }
                    for i in 0..m {
                        if w[i] != 0.0 {
                            self.x[self.basis[i]] -= dir * t * w[i];
                        }
                    }
                    self.x[q] += dir * t;
                    let out = self.basis[r];
                    self.state[out] = hits;
                    // Snap the leaving variable exactly onto its bound.
                    self.x[out] = match hits {
                        VarState::AtLower => self.lb[out],
                        VarState::AtUpper => self.ub[out],
                        _ => unreachable!(),
                    };
                    self.basis[r] = q;
                    self.state[q] = VarState::Basic;
                    let diag = w[r];
                    let nnz: Vec<(usize, f64)> = w
                        .iter()
                        .enumerate()
                        .filter(|&(i, &v)| i != r && v != 0.0)
                        .map(|(i, &v)| (i, v))
                        .collect();
                    self.etas.push(Eta { row: r, diag, nnz });
                    if self.etas.len() >= self.opts.refactor_interval {
                        self.refactor()?;
                    }
                }
            }

            // Degeneracy bookkeeping → Bland switch.
            if t <= 1e-10 {
                self.degenerate_run += 1;
                if self.degenerate_run > self.opts.bland_trigger {
                    self.bland = true;
                }
            } else {
                self.degenerate_run = 0;
                self.bland = false;
            }
            self.iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn trivial_bounds_only() {
        // min 2x - y, 0<=x<=3, 1<=y<=4  ->  x=0, y=4, obj=-4.
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 3.0, 2.0);
        m.add_var("y", 1.0, 4.0, -1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -4.0);
        assert_close(sol.values()[0], 0.0);
        assert_close(sol.values()[1], 4.0);
    }

    #[test]
    fn textbook_2d() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0 -> (2,6), 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value_of(x), 2.0);
        assert_close(sol.value_of(y), 6.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + 2y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj=14.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 14.0);
        assert_close(sol.value_of(x), 6.0);
        assert_close(sol.value_of(y), 4.0);
    }

    #[test]
    fn ge_constraints_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> (3,1), obj=9.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_infeasible_contradictory_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - 2y with x,y in [0,1] and x + y <= 3 (slack basic, both
        // structural vars reach their upper bounds by bound flips).
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, -1.0);
        let y = m.add_var("y", 0.0, 1.0, -2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -3.0);
        assert_close(sol.value_of(x), 1.0);
        assert_close(sol.value_of(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x >= 2, y >= 3, x + y >= 7 -> obj 7 (e.g. x=4,y=3).
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 3.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 7.0);
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn negative_bounds() {
        // min x, -5 <= x <= -1, x >= -3  ->  x = -3.
        let mut m = Model::minimize();
        let x = m.add_var("x", -5.0, -1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), -3.0);
    }

    #[test]
    fn free_variable() {
        // min x + y, x free, y >= 0, x + y = 1, x >= -2  ->  x=-2, y=3, obj=1
        // (obj is constant along the constraint, any feasible point works).
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.0);
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn free_variable_drives_objective() {
        // min x with x free and x >= -7 via constraint  ->  x = -7.
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), -7.0);
    }

    #[test]
    fn degenerate_model_terminates() {
        // Classic degeneracy: redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Le, 2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.0);
    }

    #[test]
    fn transportation_like_structure() {
        // 2 supplies x 3 demands min-cost transportation; optimal cost by
        // inspection: supply0->d1 (cost 1)*10, supply0->d0 (2)*5,
        // Solve and verify against the dense oracle instead of by hand.
        let mut m = Model::minimize();
        let costs = [[2.0, 1.0, 4.0], [3.0, 2.0, 1.0]];
        let supply = [15.0, 20.0];
        let demand = [5.0, 10.0, 20.0];
        let mut vars = [[None; 3]; 2];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars[i][j] = Some(m.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY, c));
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            m.add_constraint((0..3).map(|j| (vars[i][j].unwrap(), 1.0)), Cmp::Le, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            m.add_constraint((0..2).map(|i| (vars[i][j].unwrap(), 1.0)), Cmp::Ge, d);
        }
        let sol = m.solve().unwrap();
        let oracle = m.solve_dense().unwrap();
        assert_close(sol.objective(), oracle.objective());
        assert!(m.is_feasible(sol.values(), 1e-6));
    }

    #[test]
    fn duals_satisfy_strong_duality_on_standard_problem() {
        // max 3x+5y (textbook_2d): primal opt 36; b'y must equal 36 too.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve().unwrap();
        let b = [4.0, 12.0, 18.0];
        let by: f64 = b.iter().zip(sol.duals()).map(|(b, y)| b * y).sum();
        // Internally minimized −obj, so b'y == −36.
        assert_close(by, -36.0);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let solver = RevisedSimplex::with_options(RevisedOptions {
            max_iterations: 0,
            ..Default::default()
        });
        assert!(matches!(
            solver.solve(&m),
            Err(LpError::IterationLimit { .. })
        ));
    }

    #[test]
    fn refactor_interval_one_still_correct() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let solver = RevisedSimplex::with_options(RevisedOptions {
            refactor_interval: 1,
            ..Default::default()
        });
        let sol = solver.solve(&m).unwrap();
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn empty_model_solves_to_zero() {
        let m = Model::minimize();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective(), 0.0);
        assert!(sol.values().is_empty());
    }

    #[test]
    fn fixed_variables() {
        // x fixed at 2 by bounds; min y with y >= 10 - 3x = 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, 2.0, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 3.0), (y, 1.0)], Cmp::Ge, 10.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), 2.0);
        assert_close(sol.value_of(y), 4.0);
    }

    #[test]
    fn partial_pricing_reaches_the_same_optimum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        for case in 0..30 {
            let n = rng.gen_range(5..40);
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("x{i}"), 0.0, 1.0, rng.gen_range(-2.0..2.0)))
                .collect();
            for _ in 0..rng.gen_range(1..8) {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
                let cap = f64::from(n) * 0.3;
                m.add_constraint(terms, Cmp::Le, cap);
            }
            let full = m.solve().unwrap();
            for window in [1usize, 4, 16] {
                let solver = RevisedSimplex::with_options(RevisedOptions {
                    partial_pricing: Some(window),
                    ..Default::default()
                });
                let partial = solver.solve(&m).unwrap();
                assert!(
                    (full.objective() - partial.objective()).abs() / (1.0 + full.objective().abs())
                        < 1e-7,
                    "case {case} window {window}: {} vs {}",
                    full.objective(),
                    partial.objective()
                );
            }
        }
    }

    #[test]
    fn partial_pricing_infeasible_and_unbounded_still_detected() {
        let solver = RevisedSimplex::with_options(RevisedOptions {
            partial_pricing: Some(1),
            ..Default::default()
        });
        let mut inf = Model::minimize();
        let x = inf.add_var("x", 0.0, 1.0, 1.0);
        inf.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solver.solve(&inf).unwrap_err(), LpError::Infeasible);

        let mut unb = Model::minimize();
        let y = unb.add_var("y", 0.0, f64::INFINITY, -1.0);
        unb.add_constraint([(y, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(solver.solve(&unb).unwrap_err(), LpError::Unbounded);
    }

    /// Build a mid-size random LP for backend/pricing agreement tests.
    fn random_model(seed: u64, n: usize, rows: usize) -> Model {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), 0.0, 1.0, rng.gen_range(-2.0..2.0)))
            .collect();
        for r in 0..rows {
            let mut terms: Vec<(VarId, f64)> = Vec::new();
            for &v in &vars {
                if rng.gen_bool(0.3) {
                    terms.push((v, rng.gen_range(0.1..2.0)));
                }
            }
            if terms.is_empty() {
                continue;
            }
            let cmp = if r % 3 == 0 { Cmp::Ge } else { Cmp::Le };
            let rhs = match cmp {
                Cmp::Ge => rng.gen_range(0.0..0.5) * terms.len() as f64 * 0.3,
                _ => rng.gen_range(0.3..1.0) * terms.len() as f64 * 0.6,
            };
            m.add_constraint(terms, cmp, rhs);
        }
        m
    }

    #[test]
    fn sparse_and_dense_backends_agree() {
        for seed in 0..10u64 {
            let m = random_model(seed, 40, 25);
            let sparse = RevisedSimplex::with_options(RevisedOptions {
                backend: LuBackend::Sparse,
                ..Default::default()
            })
            .solve(&m);
            let dense = RevisedSimplex::with_options(RevisedOptions {
                backend: LuBackend::Dense,
                ..Default::default()
            })
            .solve(&m);
            match (sparse, dense) {
                (Ok(a), Ok(b)) => {
                    let scale = 1.0 + a.objective().abs().max(b.objective().abs());
                    assert!(
                        (a.objective() - b.objective()).abs() / scale < 1e-7,
                        "seed {seed}: {} vs {}",
                        a.objective(),
                        b.objective()
                    );
                    assert!(m.is_feasible(a.values(), 1e-6), "seed {seed}");
                }
                (a, b) => panic!("seed {seed}: backend disagreement {a:?} vs {b:?}"),
            }
        }
    }

    #[test]
    fn devex_and_dantzig_agree() {
        for seed in 20..28u64 {
            let m = random_model(seed, 35, 20);
            let devex = RevisedSimplex::with_options(RevisedOptions {
                pricing: Pricing::Devex,
                ..Default::default()
            })
            .solve(&m)
            .unwrap();
            let dantzig = RevisedSimplex::with_options(RevisedOptions {
                pricing: Pricing::Dantzig,
                partial_pricing: None,
                ..Default::default()
            })
            .solve(&m)
            .unwrap();
            let scale = 1.0 + devex.objective().abs().max(dantzig.objective().abs());
            assert!(
                (devex.objective() - dantzig.objective()).abs() / scale < 1e-7,
                "seed {seed}: {} vs {}",
                devex.objective(),
                dantzig.objective()
            );
        }
    }

    #[test]
    fn warm_restart_of_same_model_skips_phase1() {
        // An equality-constrained model needs phase 1 when cold; re-solving
        // from its own optimal basis must not.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let cold = m.solve().unwrap();
        assert!(cold.stats().phase1_iterations > 0);
        assert_eq!(cold.stats().warm, WarmOutcome::Cold);

        let warm = m.solve_warm(cold.warm_start()).unwrap();
        assert_eq!(warm.stats().warm, WarmOutcome::Warm);
        assert_eq!(warm.stats().phase1_iterations, 0);
        assert_close(warm.objective(), cold.objective());
        // Optimal basis stays optimal: zero pivots needed.
        assert_eq!(warm.iterations(), 0);
    }

    #[test]
    fn warm_start_with_jittered_costs_matches_cold() {
        let base = random_model(77, 30, 18);
        let first = base.solve().unwrap();
        // Cost-only perturbations keep the basis primal feasible, so the
        // warm path must engage (feasibility doesn't depend on costs).
        let mut jittered = Model::minimize();
        for v in base.var_ids() {
            let (lb, ub) = base.var_bounds(v);
            jittered.add_var(
                base.var_name(v).to_string(),
                lb,
                ub,
                base.var_obj(v) + 0.013 * ((v.index() as f64) * 1.7).sin(),
            );
        }
        for c in base.constraint_ids() {
            let terms: Vec<_> = base.constraint_terms(c).collect();
            jittered.add_constraint(terms, base.constraint_cmp(c), base.constraint_rhs(c));
        }
        let cold = jittered.solve().unwrap();
        let warm = jittered.solve_warm(first.warm_start()).unwrap();
        assert_eq!(warm.stats().warm, WarmOutcome::Warm);
        let scale = 1.0 + cold.objective().abs();
        assert!(
            (warm.objective() - cold.objective()).abs() / scale < 1e-7,
            "{} vs {}",
            warm.objective(),
            cold.objective()
        );
        assert!(warm.iterations() <= cold.iterations());
    }

    #[test]
    fn warm_start_survives_added_and_removed_rows() {
        // Named rows let the warm start follow the surviving constraints
        // even when the row order shifts.
        let mut base = Model::minimize();
        let x = base.add_var("x", 0.0, 10.0, 1.0);
        let y = base.add_var("y", 0.0, 10.0, 2.0);
        let c0 = base.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let c1 = base.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        base.name_constraint(c0, "sum");
        base.name_constraint(c1, "weighted");
        let first = base.solve().unwrap();

        // Drop "weighted", add a fresh row, keep "sum" — in a new order.
        let mut edited = Model::minimize();
        let x = edited.add_var("x", 0.0, 10.0, 1.0);
        let y = edited.add_var("y", 0.0, 10.0, 2.0);
        let z = edited.add_var("z", 0.0, 5.0, 0.5);
        let cnew = edited.add_constraint([(y, 1.0), (z, 1.0)], Cmp::Ge, 1.0);
        let csum = edited.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        edited.name_constraint(cnew, "fresh");
        edited.name_constraint(csum, "sum");

        let cold = edited.solve().unwrap();
        let warm = edited.solve_warm(first.warm_start()).unwrap();
        let scale = 1.0 + cold.objective().abs();
        assert!(
            (warm.objective() - cold.objective()).abs() / scale < 1e-7,
            "{} vs {}",
            warm.objective(),
            cold.objective()
        );
        assert!(edited.is_feasible(warm.values(), 1e-6));
    }

    #[test]
    fn warm_start_garbage_falls_back_to_cold() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);

        // Statuses for a completely different model: nothing matches.
        let mut alien = WarmStart::new();
        alien.set_var("a", BasisStatus::Basic);
        alien.set_var("b", BasisStatus::AtUpper);
        let sol = m.solve_warm(Some(&alien)).unwrap();
        assert_eq!(sol.stats().warm, WarmOutcome::Cold);
        assert_close(sol.objective(), 8.0);

        // Everything claims to be basic: must trim and still solve right.
        let mut all_basic = WarmStart::new();
        all_basic.set_var("x", BasisStatus::Basic);
        all_basic.set_var("y", BasisStatus::Basic);
        all_basic.set_row("#0", BasisStatus::Basic);
        let sol = m.solve_warm(Some(&all_basic)).unwrap();
        assert_close(sol.objective(), 8.0);
    }

    #[test]
    fn warm_start_repairs_bound_violations() {
        // Optimal basis for rhs=4 puts x basic at 4; tightening x's upper
        // bound to 3 breaks that basis and must trigger the repair path
        // (or at minimum still reach the new optimum).
        let mut base = Model::minimize();
        let x = base.add_var("x", 0.0, 10.0, 1.0);
        let y = base.add_var("y", 0.0, 10.0, 2.0);
        base.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let first = base.solve().unwrap();
        assert_close(first.objective(), 4.0); // x=4, y=0

        let mut tight = Model::minimize();
        let x = tight.add_var("x", 0.0, 3.0, 1.0);
        let y = tight.add_var("y", 0.0, 10.0, 2.0);
        tight.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let warm = tight.solve_warm(first.warm_start()).unwrap();
        assert_close(warm.objective(), 5.0); // x=3, y=1
        assert!(tight.is_feasible(warm.values(), 1e-7));
        assert_ne!(warm.stats().warm, WarmOutcome::Cold);
        let _ = (x, y);
    }

    #[test]
    fn warm_start_detects_infeasible_after_edit() {
        let mut base = Model::minimize();
        let x = base.add_var("x", 0.0, 10.0, 1.0);
        base.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let first = base.solve().unwrap();

        let mut broken = Model::minimize();
        let x = broken.add_var("x", 0.0, 2.0, 1.0);
        broken.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        assert_eq!(
            broken.solve_warm(first.warm_start()).unwrap_err(),
            LpError::Infeasible
        );
    }

    #[test]
    fn solve_stats_are_populated() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.stats().iterations, sol.iterations());
        assert!(sol.stats().refactors >= 1);
        assert!(sol.stats().ftran_nnz > 0);
        assert!(sol.stats().phase1_iterations <= sol.stats().iterations);
        assert!(sol.warm_start().is_some());
        let ws = sol.warm_start().unwrap();
        // Two structural vars + two row slacks recorded.
        assert_eq!(ws.len(), 4);
    }
}
