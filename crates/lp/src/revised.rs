//! Production solver: two-phase, bounded-variable revised primal simplex.
//!
//! Design notes (why this shape):
//!
//! * **Bounded variables.** Every variable of the LiPS scheduling LPs lives
//!   in `[0, 1]`; handling bounds natively (nonbasic-at-lower /
//!   nonbasic-at-upper, bound flips in the ratio test) keeps the basis a
//!   fraction of the size that a split `x = x⁺ − x⁻` reformulation would
//!   need.
//! * **Product-form updates.** The basis inverse is represented as a dense
//!   LU factorization plus a file of eta vectors, refactorized periodically.
//!   FTRAN/BTRAN are `O(m² + m·#etas)` which is fast at the few-thousand-row
//!   scale the scheduler produces.
//! * **Phase 1 with per-row artificials.** Rows whose slack cannot absorb
//!   the initial residual get a signed artificial column; phase 1 minimizes
//!   the artificial mass, phase 2 pins artificials to `[0,0]` and restores
//!   the true costs without rebuilding the basis.
//! * **Dantzig pricing + Bland fallback.** Dantzig (most-negative reduced
//!   cost) is fast in practice; after a run of degenerate pivots the solver
//!   switches to Bland's rule, which guarantees termination, and switches
//!   back once the objective moves again.

#![allow(clippy::needless_range_loop)] // simplex kernels read clearer with indices

use crate::error::LpError;
use crate::lu::DenseLu;
use crate::model::Model;
use crate::solution::Solution;
use crate::standard::StandardForm;
use crate::{PIVOT_TOL, TOL};

/// Tuning knobs for [`RevisedSimplex`].
#[derive(Debug, Clone)]
pub struct RevisedOptions {
    /// Hard cap on total pivots across both phases.
    pub max_iterations: usize,
    /// Refactorize the basis after this many eta updates.
    pub refactor_interval: usize,
    /// Reduced-cost / feasibility tolerance.
    pub tol: f64,
    /// Minimum acceptable pivot magnitude.
    pub pivot_tol: f64,
    /// Consecutive degenerate pivots before switching to Bland's rule.
    pub bland_trigger: usize,
    /// Partial pricing window: scan at most this many *eligible* columns
    /// per pricing pass, resuming where the previous pass stopped
    /// (`None` = full Dantzig pricing). Cuts per-iteration cost from
    /// `O(n)` to `O(window)` on wide models at the price of slightly less
    /// greedy pivots; the optimum is unaffected (a pass that finds no
    /// eligible column in the window continues scanning the rest).
    pub partial_pricing: Option<usize>,
}

impl Default for RevisedOptions {
    fn default() -> Self {
        RevisedOptions {
            max_iterations: 200_000,
            refactor_interval: 96,
            tol: TOL,
            pivot_tol: PIVOT_TOL,
            bland_trigger: 200,
            partial_pricing: None,
        }
    }
}

/// The solver itself; stateless between `solve` calls.
#[derive(Debug, Clone, Default)]
pub struct RevisedSimplex {
    /// Options used for every solve.
    pub options: RevisedOptions,
}

impl RevisedSimplex {
    /// Construct with explicit options.
    pub fn with_options(options: RevisedOptions) -> Self {
        RevisedSimplex { options }
    }

    /// Solve `model` to proven optimality (or a definitive error).
    pub fn solve(&self, model: &Model) -> Result<Solution, LpError> {
        model.validate()?;
        let sf = StandardForm::from_model(model);
        let mut w = Worker::new(&sf, &self.options);
        w.init_basis();
        w.refactor()?;

        // Phase 1: minimize total artificial mass.
        if w.has_artificials() {
            w.set_phase1_costs();
            w.run()?;
            // Per-row relative residual check: an artificial's value is the
            // residual of *its own* row, so compare it against that row's
            // scale — a global max-|b| scale would let large capacity rows
            // mask real infeasibility on small rows.
            if w.worst_relative_infeasibility() > 1e-7 {
                return Err(LpError::Infeasible);
            }
            w.pin_artificials();
        }

        // Phase 2: the real objective.
        w.set_phase2_costs();
        w.run()?;

        let values = w.x[..sf.n_structural].to_vec();
        let internal: f64 = w.costs.iter().zip(&w.x).map(|(c, x)| c * x).sum();
        let duals = w.current_duals();
        Ok(Solution::new(
            sf.external_objective(internal),
            values,
            duals,
            w.iterations,
        ))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VarState {
    Basic,
    AtLower,
    AtUpper,
    /// Nonbasic with both bounds infinite; rests at zero.
    Free,
}

/// One product-form update: `B_new = B_old · E` where `E` is the identity
/// with column `row` replaced by `col` (the FTRAN'd entering column).
struct Eta {
    row: usize,
    col: Vec<f64>,
}

struct Worker<'a> {
    sf: &'a StandardForm,
    opts: &'a RevisedOptions,
    /// Number of non-artificial columns (structural + slack).
    n_real: usize,
    /// Artificial column sign per row (`0.0` = row has no artificial).
    art_sign: Vec<f64>,
    /// Column ids of created artificials (each ≥ `n_real`).
    art_cols: Vec<usize>,
    /// Maps artificial column id → row.
    art_row: Vec<usize>,
    lb: Vec<f64>,
    ub: Vec<f64>,
    costs: Vec<f64>,
    state: Vec<VarState>,
    /// Basic variable per row.
    basis: Vec<usize>,
    /// Current value of every column.
    x: Vec<f64>,
    lu: Option<DenseLu>,
    etas: Vec<Eta>,
    iterations: usize,
    degenerate_run: usize,
    bland: bool,
    in_phase1: bool,
    /// Rotating start offset for partial pricing.
    price_cursor: usize,
}

impl<'a> Worker<'a> {
    fn new(sf: &'a StandardForm, opts: &'a RevisedOptions) -> Self {
        let n_real = sf.ncols();
        let m = sf.nrows();
        Worker {
            sf,
            opts,
            n_real,
            art_sign: vec![0.0; m],
            art_cols: Vec::new(),
            art_row: Vec::new(),
            lb: sf.lb.clone(),
            ub: sf.ub.clone(),
            costs: vec![0.0; n_real],
            state: vec![VarState::AtLower; n_real],
            basis: Vec::with_capacity(m),
            x: vec![0.0; n_real],
            lu: None,
            etas: Vec::new(),
            iterations: 0,
            degenerate_run: 0,
            bland: false,
            in_phase1: false,
            price_cursor: 0,
        }
    }

    fn m(&self) -> usize {
        self.sf.nrows()
    }

    fn ncols(&self) -> usize {
        self.n_real + self.art_cols.len()
    }

    fn has_artificials(&self) -> bool {
        !self.art_cols.is_empty()
    }

    /// Visit the nonzero entries of a column (handles artificial columns,
    /// which are signed unit vectors). Closure-based to stay allocation-free
    /// on the pricing hot path.
    fn for_col(&self, j: usize, mut f: impl FnMut(usize, f64)) {
        if j < self.n_real {
            for (r, v) in self.sf.a.col(j) {
                f(r, v);
            }
        } else {
            let row = self.art_row[j - self.n_real];
            f(row, self.art_sign[row]);
        }
    }

    /// Place structural and slack variables at their initial nonbasic
    /// positions, choose the starting basis (slack where it can absorb the
    /// row residual, artificial otherwise).
    fn init_basis(&mut self) {
        let n_struct = self.sf.n_structural;
        let m = self.m();

        // Structural variables: rest at the finite bound nearest zero.
        for j in 0..n_struct {
            let (lo, hi) = (self.lb[j], self.ub[j]);
            let (st, v) = match (lo.is_finite(), hi.is_finite()) {
                (true, true) => {
                    if lo.abs() <= hi.abs() {
                        (VarState::AtLower, lo)
                    } else {
                        (VarState::AtUpper, hi)
                    }
                }
                (true, false) => (VarState::AtLower, lo),
                (false, true) => (VarState::AtUpper, hi),
                (false, false) => (VarState::Free, 0.0),
            };
            self.state[j] = st;
            self.x[j] = v;
        }

        // Row residuals with only structural variables placed.
        let mut resid = self.sf.b.clone();
        for j in 0..n_struct {
            if self.x[j] != 0.0 {
                for (r, v) in self.sf.a.col(j) {
                    resid[r] -= v * self.x[j];
                }
            }
        }

        // One slack per row: basic if it can hold the residual, else pinned
        // at its nearest bound with an artificial absorbing the rest.
        self.basis.clear();
        for i in 0..m {
            let s = n_struct + i;
            let (lo, hi) = (self.lb[s], self.ub[s]);
            let r = resid[i];
            if r >= lo - self.opts.tol && r <= hi + self.opts.tol {
                self.state[s] = VarState::Basic;
                self.x[s] = r;
                self.basis.push(s);
            } else {
                let v = if r < lo { lo } else { hi };
                self.state[s] = if v == lo {
                    VarState::AtLower
                } else {
                    VarState::AtUpper
                };
                self.x[s] = v;
                let excess = r - v;
                let sign = if excess >= 0.0 { 1.0 } else { -1.0 };
                self.art_sign[i] = sign;
                let col = self.n_real + self.art_cols.len();
                self.art_cols.push(col);
                self.art_row.push(i);
                self.lb.push(0.0);
                self.ub.push(f64::INFINITY);
                self.costs.push(0.0);
                self.state.push(VarState::Basic);
                self.x.push(excess.abs());
                self.basis.push(col);
            }
        }
    }

    fn set_phase1_costs(&mut self) {
        self.in_phase1 = true;
        for c in self.costs.iter_mut() {
            *c = 0.0;
        }
        for &j in &self.art_cols {
            self.costs[j] = 1.0;
        }
    }

    fn set_phase2_costs(&mut self) {
        self.in_phase1 = false;
        for (j, c) in self.costs.iter_mut().enumerate() {
            *c = if j < self.n_real { self.sf.c[j] } else { 0.0 };
        }
    }

    /// Largest artificial value relative to its own row's magnitude.
    fn worst_relative_infeasibility(&self) -> f64 {
        self.art_cols
            .iter()
            .map(|&j| {
                let row = self.art_row[j - self.n_real];
                self.x[j].max(0.0) / (1.0 + self.sf.b[row].abs())
            })
            .fold(0.0, f64::max)
    }

    /// After a successful phase 1, forbid artificials from ever re-entering:
    /// clamp them into `[0, 0]`.
    fn pin_artificials(&mut self) {
        for &j in &self.art_cols {
            self.lb[j] = 0.0;
            self.ub[j] = 0.0;
            if self.state[j] != VarState::Basic {
                self.state[j] = VarState::AtLower;
                self.x[j] = 0.0;
            }
        }
    }

    /// Rebuild the LU factorization from the current basis and recompute the
    /// basic values from scratch (limits numerical drift).
    ///
    /// The `m × m` working matrix is recycled from the previous
    /// factorization: refactorization happens every few dozen pivots, and on
    /// large bases the repeated allocation (and its page faults) used to
    /// dominate the factorization itself.
    fn refactor(&mut self) -> Result<(), LpError> {
        let m = self.m();
        let mut dense = match self.lu.take() {
            Some(old) if old.dim() == m => {
                let mut buf = old.into_buffer();
                buf.fill(0.0);
                buf
            }
            _ => vec![0.0; m * m],
        };
        for (i, &j) in self.basis.iter().enumerate() {
            self.for_col(j, |r, v| dense[r * m + i] = v);
        }
        self.lu = Some(DenseLu::factorize(m, dense, self.opts.pivot_tol)?);
        self.etas.clear();
        self.recompute_basic_values();
        Ok(())
    }

    /// xB = B⁻¹ (b − N x_N).
    fn recompute_basic_values(&mut self) {
        let m = self.m();
        let mut rhs = self.sf.b.clone();
        for j in 0..self.ncols() {
            if self.state[j] != VarState::Basic && self.x[j] != 0.0 {
                let xj = self.x[j];
                self.for_col(j, |r, v| rhs[r] -= v * xj);
            }
        }
        self.ftran(&mut rhs);
        for i in 0..m {
            self.x[self.basis[i]] = rhs[i];
        }
    }

    /// Solve `B t = v` in place.
    fn ftran(&self, v: &mut [f64]) {
        self.lu
            .as_ref()
            .expect("basis factorized")
            .solve_in_place(v);
        for eta in &self.etas {
            let tr = v[eta.row] / eta.col[eta.row];
            if tr != 0.0 {
                for (i, &w) in eta.col.iter().enumerate() {
                    if i != eta.row && w != 0.0 {
                        v[i] -= w * tr;
                    }
                }
            }
            v[eta.row] = tr;
        }
    }

    /// Solve `Bᵀ y = v` in place.
    fn btran(&self, v: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut s = v[eta.row];
            for (i, &w) in eta.col.iter().enumerate() {
                if i != eta.row {
                    s -= w * v[i];
                }
            }
            v[eta.row] = s / eta.col[eta.row];
        }
        self.lu
            .as_ref()
            .expect("basis factorized")
            .solve_transpose_in_place(v);
    }

    /// Simplex multipliers for the *current* cost vector.
    fn current_duals(&self) -> Vec<f64> {
        let mut y: Vec<f64> = self.basis.iter().map(|&j| self.costs[j]).collect();
        self.btran(&mut y);
        y
    }

    /// Reduced cost of nonbasic column `j` given multipliers `y`.
    fn reduced_cost(&self, y: &[f64], j: usize) -> f64 {
        if j < self.n_real {
            self.costs[j] - self.sf.a.dot_col(y, j)
        } else {
            let row = self.art_row[j - self.n_real];
            self.costs[j] - y[row] * self.art_sign[row]
        }
    }

    /// Pick the entering column, honoring Dantzig or Bland mode. Returns
    /// `(column, direction)` with direction `+1` (increase from lower/free)
    /// or `-1` (decrease from upper).
    fn price(&mut self, y: &[f64]) -> Option<(usize, f64)> {
        let tol = self.opts.tol;
        let n = self.ncols();
        let window = if self.bland {
            None
        } else {
            self.opts.partial_pricing
        };
        let start = self.price_cursor % n.max(1);
        let mut best: Option<(usize, f64, f64)> = None; // (col, dir, violation)
        let mut eligible_seen = 0usize;
        for step in 0..n {
            // Bland mode must scan in plain index order for its
            // termination guarantee; otherwise rotate from the cursor so
            // partial pricing covers all columns fairly across passes.
            let j = if self.bland { step } else { (start + step) % n };
            let (dir, viol) = match self.state[j] {
                VarState::Basic => continue,
                VarState::AtLower | VarState::Free => {
                    let d = self.reduced_cost(y, j);
                    if d < -tol {
                        (1.0, -d)
                    } else if self.state[j] == VarState::Free && d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
                VarState::AtUpper => {
                    let d = self.reduced_cost(y, j);
                    if d > tol {
                        (-1.0, d)
                    } else {
                        continue;
                    }
                }
            };
            if self.bland {
                // Bland: first eligible index wins.
                return Some((j, dir));
            }
            match best {
                Some((_, _, bv)) if bv >= viol => {}
                _ => best = Some((j, dir, viol)),
            }
            eligible_seen += 1;
            if let Some(w) = window {
                if eligible_seen >= w {
                    // Resume the next pass after this column.
                    self.price_cursor = (start + step + 1) % n;
                    break;
                }
            }
        }
        best.map(|(j, d, _)| (j, d))
    }

    /// One full simplex phase with the current cost vector.
    fn run(&mut self) -> Result<(), LpError> {
        loop {
            if self.iterations >= self.opts.max_iterations {
                return Err(LpError::IterationLimit {
                    iterations: self.iterations,
                });
            }
            let y = self.current_duals();
            let Some((q, dir)) = self.price(&y) else {
                return Ok(()); // phase optimal
            };

            // FTRAN the entering column.
            let m = self.m();
            let mut w = vec![0.0; m];
            self.for_col(q, |r, v| w[r] += v);
            self.ftran(&mut w);

            // Ratio test: how far can x_q move?
            let bound_gap = if self.lb[q].is_finite() && self.ub[q].is_finite() {
                self.ub[q] - self.lb[q]
            } else {
                f64::INFINITY
            };
            let mut t = bound_gap;
            let mut leaving: Option<(usize, VarState)> = None;
            for i in 0..m {
                let wi = w[i];
                if wi.abs() <= self.opts.pivot_tol {
                    continue;
                }
                let bvar = self.basis[i];
                // x_B changes at rate −dir·w per unit of t.
                let delta = dir * wi;
                let (limit, hits) = if delta > 0.0 {
                    let lo = self.lb[bvar];
                    if lo.is_finite() {
                        ((self.x[bvar] - lo) / delta, VarState::AtLower)
                    } else {
                        continue;
                    }
                } else {
                    let hi = self.ub[bvar];
                    if hi.is_finite() {
                        ((hi - self.x[bvar]) / (-delta), VarState::AtUpper)
                    } else {
                        continue;
                    }
                };
                let limit = limit.max(0.0);
                let better = match leaving {
                    None => limit < t - 1e-12,
                    Some((cur, _)) => {
                        if self.bland {
                            // Bland tie-break: smaller basic variable index.
                            limit < t - 1e-12
                                || (limit <= t + 1e-12 && self.basis[i] < self.basis[cur])
                        } else {
                            // Prefer larger pivot magnitude on near-ties for
                            // numerical stability.
                            limit < t - 1e-12 || (limit <= t + 1e-12 && wi.abs() > w[cur].abs())
                        }
                    }
                };
                if better {
                    t = limit.min(t);
                    leaving = Some((i, hits));
                }
            }

            if t.is_infinite() {
                return if self.in_phase1 {
                    // Phase-1 objective is bounded below by 0; an unbounded
                    // ray here means numerical trouble.
                    Err(LpError::SingularBasis)
                } else {
                    Err(LpError::Unbounded)
                };
            }

            match leaving {
                None => {
                    // Bound flip: x_q jumps to its opposite bound.
                    for i in 0..m {
                        if w[i] != 0.0 {
                            self.x[self.basis[i]] -= dir * t * w[i];
                        }
                    }
                    self.x[q] = if dir > 0.0 { self.ub[q] } else { self.lb[q] };
                    self.state[q] = if dir > 0.0 {
                        VarState::AtUpper
                    } else {
                        VarState::AtLower
                    };
                }
                Some((r, hits)) => {
                    if w[r].abs() <= self.opts.pivot_tol {
                        // Pivot too small; refactorize and retry this
                        // iteration with fresh numerics.
                        self.refactor()?;
                        continue;
                    }
                    for i in 0..m {
                        if w[i] != 0.0 {
                            self.x[self.basis[i]] -= dir * t * w[i];
                        }
                    }
                    self.x[q] += dir * t;
                    let out = self.basis[r];
                    self.state[out] = hits;
                    // Snap the leaving variable exactly onto its bound.
                    self.x[out] = match hits {
                        VarState::AtLower => self.lb[out],
                        VarState::AtUpper => self.ub[out],
                        _ => unreachable!(),
                    };
                    self.basis[r] = q;
                    self.state[q] = VarState::Basic;
                    self.etas.push(Eta { row: r, col: w });
                    if self.etas.len() >= self.opts.refactor_interval {
                        self.refactor()?;
                    }
                }
            }

            // Degeneracy bookkeeping → Bland switch.
            if t <= 1e-10 {
                self.degenerate_run += 1;
                if self.degenerate_run > self.opts.bland_trigger {
                    self.bland = true;
                }
            } else {
                self.degenerate_run = 0;
                self.bland = false;
            }
            self.iterations += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Cmp, Model, Sense};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} vs {b}");
    }

    #[test]
    fn trivial_bounds_only() {
        // min 2x - y, 0<=x<=3, 1<=y<=4  ->  x=0, y=4, obj=-4.
        let mut m = Model::minimize();
        m.add_var("x", 0.0, 3.0, 2.0);
        m.add_var("y", 1.0, 4.0, -1.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -4.0);
        assert_close(sol.values()[0], 0.0);
        assert_close(sol.values()[1], 4.0);
    }

    #[test]
    fn textbook_2d() {
        // max 3x + 5y s.t. x<=4, 2y<=12, 3x+2y<=18, x,y>=0 -> (2,6), 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 36.0);
        assert_close(sol.value_of(x), 2.0);
        assert_close(sol.value_of(y), 6.0);
    }

    #[test]
    fn equality_constraints_need_phase1() {
        // min x + 2y s.t. x + y = 10, x - y = 2 -> x=6, y=4, obj=14.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 10.0);
        m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 14.0);
        assert_close(sol.value_of(x), 6.0);
        assert_close(sol.value_of(y), 4.0);
    }

    #[test]
    fn ge_constraints_phase1() {
        // min 2x + 3y s.t. x + y >= 4, x + 3y >= 6 -> (3,1), obj=9.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_infeasible_contradictory_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(m.solve().unwrap_err(), LpError::Unbounded);
    }

    #[test]
    fn bound_flip_path() {
        // min -x - 2y with x,y in [0,1] and x + y <= 3 (slack basic, both
        // structural vars reach their upper bounds by bound flips).
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, -1.0);
        let y = m.add_var("y", 0.0, 1.0, -2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), -3.0);
        assert_close(sol.value_of(x), 1.0);
        assert_close(sol.value_of(y), 1.0);
    }

    #[test]
    fn nonzero_lower_bounds() {
        // min x + y, x >= 2, y >= 3, x + y >= 7 -> obj 7 (e.g. x=4,y=3).
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 3.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 7.0);
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn negative_bounds() {
        // min x, -5 <= x <= -1, x >= -3  ->  x = -3.
        let mut m = Model::minimize();
        let x = m.add_var("x", -5.0, -1.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -3.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), -3.0);
    }

    #[test]
    fn free_variable() {
        // min x + y, x free, y >= 0, x + y = 1, x >= -2  ->  x=-2, y=3, obj=1
        // (obj is constant along the constraint, any feasible point works).
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.0);
        assert!(m.is_feasible(sol.values(), 1e-7));
    }

    #[test]
    fn free_variable_drives_objective() {
        // min x with x free and x >= -7 via constraint  ->  x = -7.
        let mut m = Model::minimize();
        let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, -7.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), -7.0);
    }

    #[test]
    fn degenerate_model_terminates() {
        // Classic degeneracy: redundant constraints through the optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(y, 1.0)], Cmp::Le, 1.0);
        m.add_constraint([(x, 2.0), (y, 1.0)], Cmp::Le, 2.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Le, 2.0);
        let sol = m.solve().unwrap();
        assert_close(sol.objective(), 1.0);
    }

    #[test]
    fn transportation_like_structure() {
        // 2 supplies x 3 demands min-cost transportation; optimal cost by
        // inspection: supply0->d1 (cost 1)*10, supply0->d0 (2)*5,
        // Solve and verify against the dense oracle instead of by hand.
        let mut m = Model::minimize();
        let costs = [[2.0, 1.0, 4.0], [3.0, 2.0, 1.0]];
        let supply = [15.0, 20.0];
        let demand = [5.0, 10.0, 20.0];
        let mut vars = [[None; 3]; 2];
        for (i, row) in costs.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                vars[i][j] = Some(m.add_var(format!("x{i}{j}"), 0.0, f64::INFINITY, c));
            }
        }
        for (i, &s) in supply.iter().enumerate() {
            m.add_constraint((0..3).map(|j| (vars[i][j].unwrap(), 1.0)), Cmp::Le, s);
        }
        for (j, &d) in demand.iter().enumerate() {
            m.add_constraint((0..2).map(|i| (vars[i][j].unwrap(), 1.0)), Cmp::Ge, d);
        }
        let sol = m.solve().unwrap();
        let oracle = m.solve_dense().unwrap();
        assert_close(sol.objective(), oracle.objective());
        assert!(m.is_feasible(sol.values(), 1e-6));
    }

    #[test]
    fn duals_satisfy_strong_duality_on_standard_problem() {
        // max 3x+5y (textbook_2d): primal opt 36; b'y must equal 36 too.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 3.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 5.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(y, 2.0)], Cmp::Le, 12.0);
        m.add_constraint([(x, 3.0), (y, 2.0)], Cmp::Le, 18.0);
        let sol = m.solve().unwrap();
        let b = [4.0, 12.0, 18.0];
        let by: f64 = b.iter().zip(sol.duals()).map(|(b, y)| b * y).sum();
        // Internally minimized −obj, so b'y == −36.
        assert_close(by, -36.0);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        let solver = RevisedSimplex::with_options(RevisedOptions {
            max_iterations: 0,
            ..Default::default()
        });
        assert!(matches!(
            solver.solve(&m),
            Err(LpError::IterationLimit { .. })
        ));
    }

    #[test]
    fn refactor_interval_one_still_correct() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, 2.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Ge, 6.0);
        let solver = RevisedSimplex::with_options(RevisedOptions {
            refactor_interval: 1,
            ..Default::default()
        });
        let sol = solver.solve(&m).unwrap();
        assert_close(sol.objective(), 9.0);
    }

    #[test]
    fn empty_model_solves_to_zero() {
        let m = Model::minimize();
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective(), 0.0);
        assert!(sol.values().is_empty());
    }

    #[test]
    fn fixed_variables() {
        // x fixed at 2 by bounds; min y with y >= 10 - 3x = 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 2.0, 2.0, 0.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 3.0), (y, 1.0)], Cmp::Ge, 10.0);
        let sol = m.solve().unwrap();
        assert_close(sol.value_of(x), 2.0);
        assert_close(sol.value_of(y), 4.0);
    }

    #[test]
    fn partial_pricing_reaches_the_same_optimum() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(13);
        for case in 0..30 {
            let n = rng.gen_range(5..40);
            let mut m = Model::minimize();
            let vars: Vec<_> = (0..n)
                .map(|i| m.add_var(format!("x{i}"), 0.0, 1.0, rng.gen_range(-2.0..2.0)))
                .collect();
            for _ in 0..rng.gen_range(1..8) {
                let terms: Vec<_> = vars.iter().map(|&v| (v, rng.gen_range(0.0..2.0))).collect();
                let cap = f64::from(n) * 0.3;
                m.add_constraint(terms, Cmp::Le, cap);
            }
            let full = m.solve().unwrap();
            for window in [1usize, 4, 16] {
                let solver = RevisedSimplex::with_options(RevisedOptions {
                    partial_pricing: Some(window),
                    ..Default::default()
                });
                let partial = solver.solve(&m).unwrap();
                assert!(
                    (full.objective() - partial.objective()).abs() / (1.0 + full.objective().abs())
                        < 1e-7,
                    "case {case} window {window}: {} vs {}",
                    full.objective(),
                    partial.objective()
                );
            }
        }
    }

    #[test]
    fn partial_pricing_infeasible_and_unbounded_still_detected() {
        let solver = RevisedSimplex::with_options(RevisedOptions {
            partial_pricing: Some(1),
            ..Default::default()
        });
        let mut inf = Model::minimize();
        let x = inf.add_var("x", 0.0, 1.0, 1.0);
        inf.add_constraint([(x, 1.0)], Cmp::Ge, 2.0);
        assert_eq!(solver.solve(&inf).unwrap_err(), LpError::Infeasible);

        let mut unb = Model::minimize();
        let y = unb.add_var("y", 0.0, f64::INFINITY, -1.0);
        unb.add_constraint([(y, 1.0)], Cmp::Ge, 1.0);
        assert_eq!(solver.solve(&unb).unwrap_err(), LpError::Unbounded);
    }
}
