//! Property tests: the production revised simplex must agree with the dense
//! tableau oracle on random models, and every returned point must be
//! feasible for the *original* model.

use lips_lp::{Cmp, LpError, Model, Sense};
use proptest::prelude::*;

/// A randomly generated LP description (kept small so the dense oracle is
/// fast and disagreements shrink well).
#[derive(Debug, Clone)]
struct RandomLp {
    nvars: usize,
    // per-var: (lb, ub_gap, obj)
    vars: Vec<(f64, f64, f64)>,
    // per-constraint: (coefs, cmp, rhs)
    cons: Vec<(Vec<f64>, u8, f64)>,
    maximize: bool,
}

fn lp_strategy() -> impl Strategy<Value = RandomLp> {
    (2usize..6, 1usize..6, any::<bool>())
        .prop_flat_map(|(nvars, ncons, maximize)| {
            let var = (-3.0f64..3.0, 0.0f64..5.0, -4.0f64..4.0);
            let coef = -3.0f64..3.0;
            let con = (prop::collection::vec(coef, nvars), 0u8..3, -6.0f64..6.0);
            (
                Just(nvars),
                prop::collection::vec(var, nvars),
                prop::collection::vec(con, ncons),
                Just(maximize),
            )
        })
        .prop_map(|(nvars, vars, cons, maximize)| RandomLp {
            nvars,
            vars,
            cons,
            maximize,
        })
}

fn build(lp: &RandomLp) -> Model {
    let sense = if lp.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = lp
        .vars
        .iter()
        .enumerate()
        .map(|(i, &(lb, gap, obj))| m.add_var(format!("x{i}"), lb, lb + gap, obj))
        .collect();
    for (coefs, cmp, rhs) in &lp.cons {
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constraint(
            coefs
                .iter()
                .enumerate()
                .map(|(i, &c)| (vars[i], c))
                .take(lp.nvars),
            cmp,
            *rhs,
        );
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    /// Both solvers agree on status; on Optimal they agree on objective and
    /// both points are feasible.
    #[test]
    fn revised_matches_dense_oracle(lp in lp_strategy()) {
        let m = build(&lp);
        let revised = m.solve();
        let dense = m.solve_dense();
        match (revised, dense) {
            (Ok(a), Ok(b)) => {
                prop_assert!(m.is_feasible(a.values(), 1e-5),
                    "revised point infeasible: viol={}", m.max_violation(a.values()));
                prop_assert!(m.is_feasible(b.values(), 1e-5),
                    "dense point infeasible: viol={}", m.max_violation(b.values()));
                let scale = 1.0 + a.objective().abs().max(b.objective().abs());
                prop_assert!((a.objective() - b.objective()).abs() / scale < 1e-5,
                    "objectives differ: revised={} dense={}", a.objective(), b.objective());
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (Err(LpError::Unbounded), Err(LpError::Unbounded)) => {}
            // A model can be both infeasible and (if feasible) unbounded
            // detectors may disagree only through tolerance edge cases near
            // empty boxes; treat any other mismatch as failure.
            (a, b) => prop_assert!(false, "solver disagreement: {a:?} vs {b:?}"),
        }
    }

    /// The optimum can never be beaten by a random feasible point.
    #[test]
    fn optimum_dominates_random_feasible_points(
        lp in lp_strategy(),
        probe in prop::collection::vec(0.0f64..1.0, 8),
    ) {
        let m = build(&lp);
        if let Ok(sol) = m.solve() {
            // Sample a point inside the variable boxes; only compare when it
            // happens to satisfy all the constraints.
            let point: Vec<f64> = lp.vars.iter().enumerate().map(|(i, &(lb, gap, _))| {
                lb + probe[i % probe.len()] * gap
            }).collect();
            if m.is_feasible(&point, 1e-9) {
                let obj = m.objective_of(&point);
                match m.sense() {
                    Sense::Minimize => prop_assert!(sol.objective() <= obj + 1e-6),
                    Sense::Maximize => prop_assert!(sol.objective() >= obj - 1e-6),
                }
            }
        }
    }

    /// Solving a model twice yields the same objective (determinism).
    #[test]
    fn solve_is_deterministic(lp in lp_strategy()) {
        let m = build(&lp);
        let a = m.solve();
        let b = m.solve();
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.objective(), y.objective());
                prop_assert_eq!(x.values(), y.values());
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "nondeterministic status"),
        }
    }
}

/// Larger randomized agreement sweep with a seeded RNG (outside proptest so
/// the problem sizes can grow a little without shrink blowup).
#[test]
fn seeded_agreement_sweep() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2013);
    let mut optimal = 0;
    for case in 0..300 {
        let nvars = rng.gen_range(2..10);
        let ncons = rng.gen_range(1..10);
        let maximize = rng.gen_bool(0.5);
        let mut m = Model::new(if maximize {
            Sense::Maximize
        } else {
            Sense::Minimize
        });
        let vars: Vec<_> = (0..nvars)
            .map(|i| {
                let lb = rng.gen_range(-2.0..2.0);
                let ub = lb + rng.gen_range(0.0..4.0);
                m.add_var(format!("x{i}"), lb, ub, rng.gen_range(-3.0..3.0))
            })
            .collect();
        for _ in 0..ncons {
            let cmp = match rng.gen_range(0..3) {
                0 => Cmp::Le,
                1 => Cmp::Ge,
                _ => Cmp::Eq,
            };
            let terms: Vec<_> = vars
                .iter()
                .map(|&v| (v, rng.gen_range(-2.0..2.0)))
                .collect();
            m.add_constraint(terms, cmp, rng.gen_range(-5.0..5.0));
        }
        let a = m.solve();
        let b = m.solve_dense();
        match (a, b) {
            (Ok(x), Ok(y)) => {
                optimal += 1;
                assert!(
                    m.is_feasible(x.values(), 1e-5),
                    "case {case}: revised infeasible"
                );
                assert!(
                    m.is_feasible(y.values(), 1e-5),
                    "case {case}: dense infeasible"
                );
                let scale = 1.0 + x.objective().abs().max(y.objective().abs());
                assert!(
                    (x.objective() - y.objective()).abs() / scale < 1e-5,
                    "case {case}: {} vs {}",
                    x.objective(),
                    y.objective()
                );
            }
            (Err(LpError::Infeasible), Err(LpError::Infeasible)) => {}
            (a, b) => panic!("case {case}: disagreement {a:?} vs {b:?}"),
        }
    }
    // Bounded boxes mean unbounded cannot occur, and a healthy share of the
    // random cases must actually be feasible for the sweep to mean anything.
    assert!(
        optimal > 50,
        "only {optimal} optimal cases — generator too tight"
    );
}
