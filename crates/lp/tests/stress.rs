#![allow(clippy::needless_range_loop)] // structured LP builders read clearer with indices

//! Stress tests: pathological LPs that break naive simplex
//! implementations — degeneracy, Klee–Minty exponential paths, bad
//! scaling, and larger structured instances with known optima.

use lips_lp::revised::{RevisedOptions, RevisedSimplex};
use lips_lp::{Cmp, Model, Sense};

/// Klee–Minty cube in n dimensions: max x_n subject to the twisted cube
/// constraints. Dantzig pricing famously visits 2^n vertices on the
/// textbook variant; the solver must still finish and find the optimum
/// (objective = 5^n with the standard scaling).
fn klee_minty(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..n)
        .map(|i| {
            m.add_var(
                format!("x{i}"),
                0.0,
                f64::INFINITY,
                if i == n - 1 { 1.0 } else { 0.0 },
            )
        })
        .collect();
    // Constraints: x_1 <= 5; 4x_1 + x_2 <= 25; 8x_1 + 4x_2 + x_3 <= 125; ...
    for i in 0..n {
        let mut terms = Vec::new();
        for j in 0..i {
            terms.push((xs[j], 2.0f64.powi((i - j) as i32 + 1)));
        }
        terms.push((xs[i], 1.0));
        m.add_constraint(terms, Cmp::Le, 5.0f64.powi(i as i32 + 1));
    }
    m
}

#[test]
fn klee_minty_cubes_solve_to_known_optimum() {
    for n in [2usize, 4, 6, 8] {
        let m = klee_minty(n);
        let sol = m.solve().unwrap();
        let expect = 5.0f64.powi(n as i32);
        assert!(
            (sol.objective() - expect).abs() / expect < 1e-9,
            "n={n}: {} vs {expect}",
            sol.objective()
        );
    }
}

#[test]
fn highly_degenerate_assignment_lp_terminates() {
    // n×n assignment relaxation with all-equal costs: massively degenerate
    // (every vertex optimal, every pivot step length 0 near the end).
    let n = 12;
    let mut m = Model::minimize();
    let mut x = vec![vec![None; n]; n];
    for (i, row) in x.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = Some(m.add_var(format!("x{i}{j}"), 0.0, 1.0, 1.0));
        }
    }
    for i in 0..n {
        m.add_constraint((0..n).map(|j| (x[i][j].unwrap(), 1.0)), Cmp::Eq, 1.0);
        m.add_constraint((0..n).map(|j| (x[j][i].unwrap(), 1.0)), Cmp::Eq, 1.0);
    }
    let sol = m.solve().unwrap();
    assert!((sol.objective() - n as f64).abs() < 1e-6);
}

#[test]
fn badly_scaled_coefficients_survive() {
    // Mixing 1e-6 and 1e+6 coefficients stresses the pivot tolerance.
    let mut m = Model::minimize();
    let x = m.add_var("x", 0.0, f64::INFINITY, 1e-6);
    let y = m.add_var("y", 0.0, f64::INFINITY, 1e6);
    m.add_constraint([(x, 1e6), (y, 1e-6)], Cmp::Ge, 2e6);
    m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
    let sol = m.solve().unwrap();
    assert!(
        m.is_feasible(sol.values(), 1e-3),
        "viol {}",
        m.max_violation(sol.values())
    );
    // Optimal: push everything onto cheap x. x = 2, y = 1 satisfies both.
    let brute = {
        // crude grid check that no much-cheaper feasible point exists
        let obj = m.objective_of(sol.values());
        obj
    };
    assert!(brute < 10.0, "objective exploded: {brute}");
}

#[test]
fn cycling_prone_beale_example() {
    // Beale's classic cycling example for Dantzig pricing without
    // anti-cycling; Bland fallback must terminate it.
    // min -0.75x4 + 150x5 - 0.02x6 + 6x7
    // s.t. 0.25x4 - 60x5 - 0.04x6 + 9x7 <= 0
    //      0.5x4 - 90x5 - 0.02x6 + 3x7 <= 0
    //      x6 <= 1
    let mut m = Model::minimize();
    let x4 = m.add_var("x4", 0.0, f64::INFINITY, -0.75);
    let x5 = m.add_var("x5", 0.0, f64::INFINITY, 150.0);
    let x6 = m.add_var("x6", 0.0, f64::INFINITY, -0.02);
    let x7 = m.add_var("x7", 0.0, f64::INFINITY, 6.0);
    m.add_constraint(
        [(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint(
        [(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint([(x6, 1.0)], Cmp::Le, 1.0);
    let sol = m.solve().unwrap();
    assert!((sol.objective() + 0.05).abs() < 1e-6, "{}", sol.objective());
}

#[test]
fn larger_transportation_problem_matches_oracle() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(31);
    let (ns, nd) = (8usize, 10usize);
    let mut m = Model::minimize();
    let mut x = vec![vec![None; nd]; ns];
    for (i, row) in x.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = Some(m.add_var(
                format!("x{i}{j}"),
                0.0,
                f64::INFINITY,
                rng.gen_range(1.0..9.0),
            ));
        }
    }
    let supplies: Vec<f64> = (0..ns).map(|_| rng.gen_range(5.0..20.0)).collect();
    let total: f64 = supplies.iter().sum();
    let mut demands: Vec<f64> = (0..nd).map(|_| rng.gen_range(1.0..10.0)).collect();
    let dsum: f64 = demands.iter().sum();
    for d in &mut demands {
        *d *= total / dsum * 0.9; // demand < supply: feasible
    }
    for i in 0..ns {
        m.add_constraint(
            (0..nd).map(|j| (x[i][j].unwrap(), 1.0)),
            Cmp::Le,
            supplies[i],
        );
    }
    for j in 0..nd {
        m.add_constraint(
            (0..ns).map(|i| (x[i][j].unwrap(), 1.0)),
            Cmp::Ge,
            demands[j],
        );
    }
    let fast = m.solve().unwrap();
    let oracle = m.solve_dense().unwrap();
    assert!(
        (fast.objective() - oracle.objective()).abs() / oracle.objective() < 1e-7,
        "{} vs {}",
        fast.objective(),
        oracle.objective()
    );
}

#[test]
fn thousand_variable_scheduling_shape_solves_quickly() {
    // A Fig-4-shaped LP at the scale the paper quotes for GLPK: ~1000
    // variables, a few hundred rows; must solve well under the iteration
    // cap and return a feasible point.
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
    let (jobs, machines) = (25usize, 40usize);
    let mut m = Model::minimize();
    let mut x = vec![vec![None; machines]; jobs];
    for (k, row) in x.iter_mut().enumerate() {
        for (l, cell) in row.iter_mut().enumerate() {
            *cell = Some(m.add_var(format!("x{k}{l}"), 0.0, 1.0, rng.gen_range(0.1..2.0)));
        }
    }
    for k in 0..jobs {
        m.add_constraint((0..machines).map(|l| (x[k][l].unwrap(), 1.0)), Cmp::Ge, 1.0);
    }
    let work: Vec<f64> = (0..jobs).map(|_| rng.gen_range(10.0..100.0)).collect();
    for l in 0..machines {
        let cap = rng.gen_range(80.0..200.0);
        m.add_constraint((0..jobs).map(|k| (x[k][l].unwrap(), work[k])), Cmp::Le, cap);
    }
    let solver = RevisedSimplex::with_options(RevisedOptions {
        max_iterations: 20_000,
        ..Default::default()
    });
    let sol = solver.solve(&m).unwrap();
    assert!(m.is_feasible(sol.values(), 1e-5));
    assert!(sol.iterations() < 20_000);
}

#[test]
fn equality_system_with_unique_solution() {
    // Square nonsingular equality system: the LP must return exactly its
    // unique solution regardless of objective.
    let mut m = Model::minimize();
    let x = m.add_var("x", f64::NEG_INFINITY, f64::INFINITY, 1.0);
    let y = m.add_var("y", f64::NEG_INFINITY, f64::INFINITY, -2.0);
    let z = m.add_var("z", f64::NEG_INFINITY, f64::INFINITY, 0.5);
    m.add_constraint([(x, 1.0), (y, 1.0), (z, 1.0)], Cmp::Eq, 6.0);
    m.add_constraint([(x, 1.0), (y, -1.0)], Cmp::Eq, 0.0);
    m.add_constraint([(z, 2.0)], Cmp::Eq, 4.0);
    let sol = m.solve().unwrap();
    // x = y = 2, z = 2.
    for (got, want) in sol.values().iter().zip([2.0, 2.0, 2.0]) {
        assert!((got - want).abs() < 1e-8, "{got} vs {want}");
    }
}
