//! Degeneracy and anti-cycling under both LU backends.
//!
//! Every test here runs with `bland_trigger: 0`, so the very first
//! degenerate pivot flips the solver into Bland's rule — the worst case
//! for pivot-selection quality and the configuration where cycling bugs
//! surface. The solver must still terminate inside the iteration cap,
//! reach the known optimum, and produce a solution the KKT certificate
//! checker accepts, with both the sparse and the dense basis
//! factorization.

#![allow(clippy::needless_range_loop)] // structured LP builders read clearer with indices

use lips_audit::certify;
use lips_lp::revised::{LuBackend, RevisedOptions, RevisedSimplex};
use lips_lp::{Cmp, Model, Sense, Solution};

const BACKENDS: [LuBackend; 2] = [LuBackend::Sparse, LuBackend::Dense];

fn solve_bland(m: &Model, backend: LuBackend) -> Solution {
    let solver = RevisedSimplex::with_options(RevisedOptions {
        bland_trigger: 0,
        backend,
        ..Default::default()
    });
    let sol = solver.solve(m).expect("degenerate model must still solve");
    assert!(
        sol.iterations() < RevisedOptions::default().max_iterations,
        "hit the iteration cap: likely cycling ({} iterations)",
        sol.iterations()
    );
    sol
}

fn assert_certified(m: &Model, sol: &Solution, label: &str) {
    let cert = certify(m, sol).expect("revised simplex reports duals");
    assert!(
        cert.is_optimal(),
        "{label}: Bland-mode solution failed certification:\n{cert}"
    );
}

/// Beale's classic cycling example: Dantzig pricing without anti-cycling
/// loops forever on this model.
fn beale() -> (Model, f64) {
    let mut m = Model::minimize();
    let x4 = m.add_var("x4", 0.0, f64::INFINITY, -0.75);
    let x5 = m.add_var("x5", 0.0, f64::INFINITY, 150.0);
    let x6 = m.add_var("x6", 0.0, f64::INFINITY, -0.02);
    let x7 = m.add_var("x7", 0.0, f64::INFINITY, 6.0);
    m.add_constraint(
        [(x4, 0.25), (x5, -60.0), (x6, -0.04), (x7, 9.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint(
        [(x4, 0.5), (x5, -90.0), (x6, -0.02), (x7, 3.0)],
        Cmp::Le,
        0.0,
    );
    m.add_constraint([(x6, 1.0)], Cmp::Le, 1.0);
    (m, -0.05)
}

/// Marshall–Suurballe-style cycler: both rows are tight at the origin, so
/// the first pivots are all degenerate. Boxed into `[0, 1]` to keep it
/// bounded; the optimum is taken from the dense tableau oracle.
fn marshall_suurballe() -> (Model, f64) {
    let mut m = Model::minimize();
    let x1 = m.add_var("x1", 0.0, 1.0, -2.3);
    let x2 = m.add_var("x2", 0.0, 1.0, -2.15);
    let x3 = m.add_var("x3", 0.0, 1.0, 13.55);
    let x4 = m.add_var("x4", 0.0, 1.0, 0.4);
    m.add_constraint([(x1, 0.4), (x2, 0.2), (x3, -1.4), (x4, -0.2)], Cmp::Le, 0.0);
    m.add_constraint([(x1, -7.8), (x2, -1.4), (x3, 7.8), (x4, 0.4)], Cmp::Le, 0.0);
    let oracle = m.solve_dense().expect("boxed model is bounded").objective();
    (m, oracle)
}

/// All-equal-cost assignment relaxation: every vertex is optimal and the
/// endgame is a long run of zero-length pivots.
fn degenerate_assignment(n: usize) -> (Model, f64) {
    let mut m = Model::minimize();
    let mut x = vec![vec![None; n]; n];
    for (i, row) in x.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = Some(m.add_var(format!("x{i}{j}"), 0.0, 1.0, 1.0));
        }
    }
    for i in 0..n {
        m.add_constraint((0..n).map(|j| (x[i][j].unwrap(), 1.0)), Cmp::Eq, 1.0);
        m.add_constraint((0..n).map(|j| (x[j][i].unwrap(), 1.0)), Cmp::Eq, 1.0);
    }
    (m, n as f64)
}

/// Klee–Minty twisted cube: not degenerate, but the canonical stress for
/// pivot rules — under forced Bland the path is long yet must terminate.
fn klee_minty(n: usize) -> (Model, f64) {
    let mut m = Model::new(Sense::Maximize);
    let xs: Vec<_> = (0..n)
        .map(|i| {
            m.add_var(
                format!("x{i}"),
                0.0,
                f64::INFINITY,
                if i == n - 1 { 1.0 } else { 0.0 },
            )
        })
        .collect();
    for i in 0..n {
        let mut terms = Vec::new();
        for (j, &xj) in xs.iter().enumerate().take(i) {
            terms.push((xj, 2.0f64.powi((i - j) as i32 + 1)));
        }
        terms.push((xs[i], 1.0));
        m.add_constraint(terms, Cmp::Le, 5.0f64.powi(i as i32 + 1));
    }
    (m, 5.0f64.powi(n as i32))
}

#[test]
fn beale_terminates_and_certifies_under_forced_bland() {
    let (m, expect) = beale();
    for backend in BACKENDS {
        let sol = solve_bland(&m, backend);
        assert!(
            (sol.objective() - expect).abs() < 1e-6,
            "{backend:?}: {} vs {expect}",
            sol.objective()
        );
        assert_certified(&m, &sol, "beale");
    }
}

#[test]
fn marshall_suurballe_terminates_and_certifies_under_forced_bland() {
    let (m, expect) = marshall_suurballe();
    for backend in BACKENDS {
        let sol = solve_bland(&m, backend);
        assert!(
            (sol.objective() - expect).abs() < 1e-6,
            "{backend:?}: {} vs {expect}",
            sol.objective()
        );
        assert_certified(&m, &sol, "marshall-suurballe");
    }
}

#[test]
fn degenerate_assignment_terminates_and_certifies_under_forced_bland() {
    let (m, expect) = degenerate_assignment(10);
    for backend in BACKENDS {
        let sol = solve_bland(&m, backend);
        assert!(
            (sol.objective() - expect).abs() < 1e-6,
            "{backend:?}: {} vs {expect}",
            sol.objective()
        );
        assert_certified(&m, &sol, "assignment");
    }
}

#[test]
fn klee_minty_terminates_and_certifies_under_forced_bland() {
    for n in [4usize, 6] {
        let (m, expect) = klee_minty(n);
        for backend in BACKENDS {
            let sol = solve_bland(&m, backend);
            assert!(
                (sol.objective() - expect).abs() / expect < 1e-9,
                "n={n} {backend:?}: {} vs {expect}",
                sol.objective()
            );
            assert_certified(&m, &sol, "klee-minty");
        }
    }
}

#[test]
fn backends_agree_bit_for_bit_on_objectives() {
    // The two factorization backends follow the same pivot sequence under
    // Bland (deterministic entering rule), so their optima must agree to
    // full precision, not just tolerance.
    for (m, _) in [beale(), marshall_suurballe(), degenerate_assignment(6)] {
        let a = solve_bland(&m, LuBackend::Sparse);
        let b = solve_bland(&m, LuBackend::Dense);
        assert!(
            (a.objective() - b.objective()).abs() < 1e-9,
            "backends diverged: {} vs {}",
            a.objective(),
            b.objective()
        );
    }
}
