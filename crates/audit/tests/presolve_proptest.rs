//! Property test: epoch presolve is an optimization of the *model*, never
//! of the *answer*.
//!
//! Mirrors the `EpochSolver::presolve` fast path end to end: build a
//! Fig-4-shaped LP, presolve it with the certification-safe reductions
//! (redundant-row dropping + dominated-column fixing), solve the reduced
//! model — cold, warm-started through `Restore::map_warm_start`, and by
//! the dual simplex — and restore. The restored solution must match an
//! unreduced solve's objective to tolerance and pass full KKT
//! certification against the *original* model, duals and basis included.

#![allow(clippy::needless_range_loop)] // structured LP builders read clearer with indices

use lips_audit::certify;
use lips_lp::presolve::{certified_options, presolve_with};
use lips_lp::revised::RevisedOptions;
use lips_lp::{solve_dual_with_options, Cmp, LpError, Model, VarId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-6;

/// The same epoch-LP lookalike the warm-start properties use, plus the
/// structure presolve feeds on: a few *loose* capacity rows (redundant by
/// activity range) and an occasional strictly-dominated duplicate column.
fn epoch_model(rng: &mut ChaCha8Rng, jobs: &[usize], machines: usize) -> Model {
    let mut m = Model::minimize();
    let mut x: Vec<Vec<VarId>> = Vec::new();
    for &job in jobs {
        let row: Vec<VarId> = (0..machines)
            .map(|l| m.add_var(format!("x_{job}_{l}"), 0.0, 1.0, rng.gen_range(0.1..2.0)))
            .collect();
        x.push(row);
    }
    for (k, &job) in jobs.iter().enumerate() {
        let c = m.add_constraint((0..machines).map(|l| (x[k][l], 1.0)), Cmp::Ge, 1.0);
        m.name_constraint(c, format!("cov_{job}"));
    }
    for l in 0..machines {
        // Every few machines, a capacity far beyond worst-case activity:
        // redundant-row elimination must fire and must not change the
        // optimum.
        let cap = if l % 3 == 0 {
            jobs.len() as f64 + 2.0
        } else {
            rng.gen_range(0.6..1.5) * jobs.len() as f64 / machines as f64 + 0.5
        };
        let c = m.add_constraint((0..jobs.len()).map(|k| (x[k][l], 1.0)), Cmp::Le, cap);
        m.name_constraint(c, format!("cap_{l}"));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Cold path: solve the presolved model, restore, and the answer —
    /// objective, duals, basis — must be indistinguishable from solving
    /// the unreduced model.
    #[test]
    fn presolved_then_restored_matches_unreduced_and_certifies(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let machines = rng.gen_range(3usize..8);
        let jobs: Vec<usize> = (0..rng.gen_range(3usize..9)).collect();
        let m = epoch_model(&mut rng, &jobs, machines);

        let full = m.solve().expect("full model is feasible");
        let (reduced, restore) = presolve_with(&m, certified_options())
            .expect("presolve never errors on a feasible model");
        let red_sol = reduced.solve().expect("reduced model is feasible");
        let restored = restore.restore_solution(&m, &red_sol);

        prop_assert!(
            (restored.objective() - full.objective()).abs()
                <= TOL * (1.0 + full.objective().abs()),
            "seed {seed}: restored {} vs unreduced {}",
            restored.objective(),
            full.objective()
        );
        let cert = certify(&m, &restored).expect("restored duals present");
        prop_assert!(
            cert.is_optimal(),
            "seed {seed}: restored solution failed certification against the full model:\n{cert}"
        );
    }

    /// Warm + dual path: capture a basis, perturb the next epoch, map the
    /// basis into the reduced space, dual re-solve there, restore — same
    /// optimum, still certified, exactly like `EpochSolver::dual` +
    /// `EpochSolver::presolve` chain them.
    #[test]
    fn presolved_dual_resolve_matches_unreduced_and_certifies(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let machines = rng.gen_range(3usize..8);
        let jobs: Vec<usize> = (0..rng.gen_range(3usize..9)).collect();

        let base = epoch_model(&mut rng, &jobs, machines);
        let warm = base
            .solve()
            .expect("base model is feasible")
            .warm_start()
            .expect("revised solve records a basis")
            .clone();

        // Next epoch: same structure, re-jittered costs and capacities.
        let next = epoch_model(&mut rng, &jobs, machines);
        let full = next.solve().expect("perturbed model is feasible");

        let (reduced, restore) = presolve_with(&next, certified_options())
            .expect("presolve never errors on a feasible model");
        let mapped = restore.map_warm_start(&next, &warm);
        let red_sol = match solve_dual_with_options(&reduced, &mapped, &RevisedOptions::default()) {
            Ok(s) => s,
            // The honest fallbacks the epoch ladder also takes.
            Err(LpError::NotDualFeasible | LpError::SingularBasis) => {
                reduced.solve_warm(Some(&mapped)).expect("reduced model is feasible")
            }
            Err(e) => panic!("seed {seed}: unexpected dual error: {e}"),
        };
        let restored = restore.restore_solution(&next, &red_sol);

        prop_assert!(
            (restored.objective() - full.objective()).abs()
                <= TOL * (1.0 + full.objective().abs()),
            "seed {seed}: restored {} vs unreduced {}",
            restored.objective(),
            full.objective()
        );
        let cert = certify(&next, &restored).expect("restored duals present");
        prop_assert!(
            cert.is_optimal(),
            "seed {seed}: presolved dual re-solve failed certification:\n{cert}"
        );
    }
}
