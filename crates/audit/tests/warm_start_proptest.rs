//! Property test: warm starting is an optimization of the *path*, never of
//! the *answer*.
//!
//! Mirrors the epoch loop's lifecycle: solve a Fig-4-shaped base model
//! cold, capture its basis, then perturb the model the way epochs do —
//! jitter the costs, add a job's columns, drop a job's columns — and
//! re-solve seeded from the stale basis. The warm objective must match an
//! independent cold solve of the *same perturbed model* to tolerance, and
//! the warm solution must still pass full KKT certification.

#![allow(clippy::needless_range_loop)] // structured LP builders read clearer with indices

use lips_audit::certify;
use lips_lp::{Cmp, Model, VarId};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

const TOL: f64 = 1e-6;

/// A small epoch-LP lookalike: `jobs × machines` placement variables in
/// `[0, 1]` with named columns and rows, per-job coverage rows, and
/// per-machine capacity rows. `n_jobs` controls the add/remove-a-job
/// perturbation; names stay stable across job sets so the warm basis can
/// match what survives.
fn epoch_model(rng: &mut ChaCha8Rng, jobs: &[usize], machines: usize) -> Model {
    let mut m = Model::minimize();
    let mut x: Vec<Vec<VarId>> = Vec::new();
    for &job in jobs {
        let row: Vec<VarId> = (0..machines)
            .map(|l| m.add_var(format!("x_{job}_{l}"), 0.0, 1.0, rng.gen_range(0.1..2.0)))
            .collect();
        x.push(row);
    }
    for (k, &job) in jobs.iter().enumerate() {
        let c = m.add_constraint((0..machines).map(|l| (x[k][l], 1.0)), Cmp::Ge, 1.0);
        m.name_constraint(c, format!("cov_{job}"));
    }
    for l in 0..machines {
        let cap = rng.gen_range(0.6..1.5) * jobs.len() as f64 / machines as f64 + 0.5;
        let c = m.add_constraint((0..jobs.len()).map(|k| (x[k][l], 1.0)), Cmp::Le, cap);
        m.name_constraint(c, format!("cap_{l}"));
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Costs jittered, one job added, one job removed: the stale basis must
    /// repair (or cold-fall-back) into the same optimum a cold solve finds,
    /// and the result must certify.
    #[test]
    fn warm_solve_of_perturbed_model_matches_cold_and_certifies(seed in 0u64..10_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let machines = rng.gen_range(3usize..8);
        let n_jobs = rng.gen_range(3usize..9);
        let base_jobs: Vec<usize> = (0..n_jobs).collect();

        // Epoch e: cold solve, capture the basis.
        let base = epoch_model(&mut rng, &base_jobs, machines);
        let base_sol = base.solve().expect("base model is feasible");
        let warm = base_sol.warm_start().expect("revised solve records a basis").clone();

        // Epoch e+1: drop one job, add a fresh one, re-jitter every cost
        // (epoch_model redraws costs from the same rng stream).
        let mut next_jobs = base_jobs;
        let drop_at = rng.gen_range(0..next_jobs.len());
        next_jobs.remove(drop_at);
        next_jobs.push(n_jobs); // a job id the warm basis has never seen
        let next = epoch_model(&mut rng, &next_jobs, machines);

        let warm_sol = next.solve_warm(Some(&warm)).expect("perturbed model is feasible");
        let cold_sol = next.solve().expect("same model, cold");

        prop_assert!(
            (warm_sol.objective() - cold_sol.objective()).abs()
                <= TOL * (1.0 + cold_sol.objective().abs()),
            "seed {seed}: warm {} vs cold {}",
            warm_sol.objective(),
            cold_sol.objective()
        );
        let cert = certify(&next, &warm_sol).expect("duals present");
        prop_assert!(
            cert.is_optimal(),
            "seed {seed}: warm-started solution failed certification:\n{cert}"
        );
    }

    /// Unperturbed re-solve: the previous optimal basis is primal feasible
    /// as-is, so the warm solve must not run a single phase-1 iteration.
    #[test]
    fn warm_resolve_of_identical_model_skips_phase1(seed in 0u64..2_000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let machines = rng.gen_range(3usize..8);
        let jobs: Vec<usize> = (0..rng.gen_range(3usize..9)).collect();
        let m = epoch_model(&mut rng, &jobs, machines);
        let cold = m.solve().expect("feasible");
        let warm = cold.warm_start().expect("basis recorded").clone();
        let again = m.solve_warm(Some(&warm)).expect("feasible");
        prop_assert_eq!(again.stats().phase1_iterations, 0,
            "identical model re-solve ran phase 1");
        prop_assert!(
            (again.objective() - cold.objective()).abs()
                <= TOL * (1.0 + cold.objective().abs()),
            "seed {seed}: {} vs {}", again.objective(), cold.objective()
        );
    }
}
