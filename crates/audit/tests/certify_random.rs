//! Property test: the certificate verifier accepts every solver-optimal
//! solution on randomly generated feasible models.
//!
//! Feasibility by construction: draw a witness point inside the variable
//! boxes first, then only emit constraints the witness satisfies. The
//! boxes are finite, so the LP is bounded and the solver must succeed —
//! and an honest optimal solution must certify.

use lips_audit::certify;
use lips_lp::{Cmp, Model, Sense};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_feasible_model(seed: u64) -> Model {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sense = if rng.gen_bool(0.5) {
        Sense::Minimize
    } else {
        Sense::Maximize
    };
    let mut m = Model::new(sense);

    let n = rng.gen_range(2..7);
    let mut vars = Vec::new();
    let mut witness = Vec::new();
    for i in 0..n {
        let lo = rng.gen_range(-5.0..5.0);
        let hi = lo + rng.gen_range(0.0..6.0);
        vars.push(m.add_var(format!("x{i}"), lo, hi, rng.gen_range(-3.0..3.0)));
        witness.push(lo + (hi - lo) * rng.gen_range(0.0..1.0));
    }

    for _ in 0..rng.gen_range(1..6) {
        let mut terms = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            if rng.gen_bool(0.7) {
                terms.push((v, rng.gen_range(-2.0..2.0), i));
            }
        }
        if terms.is_empty() {
            continue;
        }
        let lhs_at_witness: f64 = terms.iter().map(|&(_, c, i)| c * witness[i]).sum();
        let slack = rng.gen_range(0.0..3.0);
        let (cmp, rhs) = match rng.gen_range(0..3) {
            0 => (Cmp::Le, lhs_at_witness + slack),
            1 => (Cmp::Ge, lhs_at_witness - slack),
            _ => (Cmp::Eq, lhs_at_witness),
        };
        let row: Vec<_> = terms.into_iter().map(|(v, c, _)| (v, c)).collect();
        m.add_constraint(row, cmp, rhs);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Soundness of the pipeline end to end: solver-optimal ⇒ certified.
    #[test]
    fn solver_optimal_solutions_always_certify(seed in 0u64..10_000) {
        let m = random_feasible_model(seed);
        let sol = m.solve().expect("feasible-by-construction model must solve");
        let cert = certify(&m, &sol).expect("revised simplex reports duals");
        prop_assert!(
            cert.is_optimal(),
            "seed {}: solver output failed certification:\n{}",
            seed,
            cert
        );
    }

    /// And the converse guard: corrupting the primal point breaks at least
    /// one of the certified conditions (except in the measure-zero case of
    /// a degenerate alternative optimum, which the slack nudging avoids).
    #[test]
    fn corrupted_primal_never_certifies_better_objective(seed in 0u64..2_000) {
        let m = random_feasible_model(seed);
        let sol = m.solve().expect("solvable");
        // Claim an objective strictly better than optimal; weak duality
        // makes this impossible to certify with any feasible duals.
        let improve = match m.sense() { Sense::Minimize => -1.0, Sense::Maximize => 1.0 };
        let cooked = lips_lp::Solution::from_parts(
            sol.objective() + improve,
            sol.values().to_vec(),
            sol.duals().to_vec(),
            sol.iterations(),
        );
        let cert = certify(&m, &cooked).expect("duals present");
        prop_assert!(!cert.is_optimal(), "seed {seed}: cooked objective certified");
    }
}
