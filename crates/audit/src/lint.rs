//! Model lint pass: structural diagnostics over a [`Model`] that the solver
//! itself would either tolerate silently (duplicate terms, unused columns,
//! bad scaling) or only discover the expensive way (bound-infeasible rows,
//! unbounded cost directions).

use std::collections::BTreeMap;

use lips_lp::{Cmp, Model, Sense};

/// Coefficient-magnitude spread beyond which a row is flagged as badly
/// scaled (condition risk for the LU factorization).
pub const SCALING_SPREAD_LIMIT: f64 = 1e8;

/// Agreement tolerance when comparing two `Eq` rows' right-hand sides.
const EQ_RHS_TOL: f64 = 1e-9;

/// Which lint fired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// A constraint row has no terms, or every coefficient is exactly zero.
    EmptyRow,
    /// A variable appears in no constraint row.
    UnusedVariable,
    /// The same variable appears more than once in one row (the solver sums
    /// duplicates, which is almost always a builder bug).
    DuplicateTerm,
    /// Two `Eq` rows have identical coefficient vectors but different
    /// right-hand sides — the model is infeasible by construction.
    ConflictingEq,
    /// A row no point in the variables' boxes can satisfy (interval
    /// arithmetic on the bounds alone).
    BoundInfeasibleRow,
    /// A variable's cost improves without limit toward an infinite bound —
    /// unboundedness risk unless some constraint caps it.
    UnboundedCost,
    /// Coefficient magnitudes in one row (or the objective) span more than
    /// [`SCALING_SPREAD_LIMIT`].
    BadScaling,
    /// A paper-structure invariant was violated (emitted by
    /// [`crate::audit_paper_invariants`], never by [`lint`]).
    PaperInvariant,
}

/// How bad a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but solvable.
    Warning,
    /// The model is broken: infeasible, unbounded, or structurally wrong.
    Error,
}

/// One diagnostic.
#[derive(Debug, Clone)]
pub struct Lint {
    pub rule: Rule,
    pub severity: Severity,
    /// Human-readable anchor: `"row 3"`, `"var xt_0_1_2"`, …
    pub location: String,
    pub detail: String,
}

impl std::fmt::Display for Lint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let sev = match self.severity {
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(
            f,
            "{sev}[{:?}] {}: {}",
            self.rule, self.location, self.detail
        )
    }
}

/// Run every lint rule over `model`, returning findings in row/column order.
pub fn lint(model: &Model) -> Vec<Lint> {
    let mut out = Vec::new();
    empty_rows(model, &mut out);
    unused_variables(model, &mut out);
    duplicate_terms(model, &mut out);
    conflicting_eq_rows(model, &mut out);
    bound_infeasible_rows(model, &mut out);
    unbounded_cost_directions(model, &mut out);
    bad_scaling(model, &mut out);
    out
}

fn row_location(model: &Model, c: lips_lp::ConstraintId) -> String {
    let _ = model;
    format!("row {}", c.index())
}

fn var_location(model: &Model, v: lips_lp::VarId) -> String {
    format!("var {}", model.var_name(v))
}

fn empty_rows(model: &Model, out: &mut Vec<Lint>) {
    for c in model.constraint_ids() {
        let mut any_term = false;
        let mut any_nonzero = false;
        for (_, coef) in model.constraint_terms(c) {
            any_term = true;
            if coef != 0.0 {
                any_nonzero = true;
            }
        }
        if any_nonzero {
            continue;
        }
        // An all-zero lhs is the constant 0; the row is then either vacuous
        // or unsatisfiable depending on cmp/rhs.
        let rhs = model.constraint_rhs(c);
        let satisfied = match model.constraint_cmp(c) {
            Cmp::Le => 0.0 <= rhs,
            Cmp::Ge => 0.0 >= rhs,
            Cmp::Eq => rhs == 0.0,
        };
        let (severity, what) = if satisfied {
            (Severity::Warning, "vacuous")
        } else {
            (Severity::Error, "unsatisfiable")
        };
        let kind = if any_term { "all-zero" } else { "empty" };
        out.push(Lint {
            rule: Rule::EmptyRow,
            severity,
            location: row_location(model, c),
            detail: format!("{kind} row is {what} (lhs is constant 0, rhs {rhs})"),
        });
    }
}

fn unused_variables(model: &Model, out: &mut Vec<Lint>) {
    let mut used = vec![false; model.num_vars()];
    for c in model.constraint_ids() {
        for (v, _) in model.constraint_terms(c) {
            used[v.index()] = true;
        }
    }
    for v in model.var_ids() {
        if !used[v.index()] {
            out.push(Lint {
                rule: Rule::UnusedVariable,
                severity: Severity::Warning,
                location: var_location(model, v),
                detail: "variable appears in no constraint; only its box bounds \
                         and objective coefficient act on it"
                    .into(),
            });
        }
    }
}

fn duplicate_terms(model: &Model, out: &mut Vec<Lint>) {
    for c in model.constraint_ids() {
        let mut seen: BTreeMap<usize, usize> = BTreeMap::new();
        for (v, _) in model.constraint_terms(c) {
            *seen.entry(v.index()).or_insert(0) += 1;
        }
        let mut dups: Vec<(usize, usize)> = seen.into_iter().filter(|&(_, n)| n > 1).collect();
        dups.sort_unstable();
        for (v, n) in dups {
            out.push(Lint {
                rule: Rule::DuplicateTerm,
                severity: Severity::Warning,
                location: row_location(model, c),
                detail: format!(
                    "variable {} appears {n} times in one row; the solver sums \
                     the coefficients",
                    model.var_name(lips_lp::VarId::from_index(v)),
                ),
            });
        }
    }
}

/// Canonical form of a row's lhs: duplicates summed, zeros dropped, sorted
/// by variable index.
fn canonical_terms(model: &Model, c: lips_lp::ConstraintId) -> Vec<(usize, f64)> {
    let mut sums: BTreeMap<usize, f64> = BTreeMap::new();
    for (v, coef) in model.constraint_terms(c) {
        *sums.entry(v.index()).or_insert(0.0) += coef;
    }
    let mut terms: Vec<(usize, f64)> = sums.into_iter().filter(|&(_, coef)| coef != 0.0).collect();
    terms.sort_unstable_by_key(|&(v, _)| v);
    terms
}

fn conflicting_eq_rows(model: &Model, out: &mut Vec<Lint>) {
    // Group Eq rows by their canonical lhs (bit-exact coefficient match;
    // near-parallel rows are a scaling question, not this rule's).
    let mut groups: BTreeMap<Vec<(usize, u64)>, Vec<lips_lp::ConstraintId>> = BTreeMap::new();
    for c in model.constraint_ids() {
        if model.constraint_cmp(c) != Cmp::Eq {
            continue;
        }
        let key: Vec<(usize, u64)> = canonical_terms(model, c)
            .into_iter()
            .map(|(v, coef)| (v, coef.to_bits()))
            .collect();
        groups.entry(key).or_default().push(c);
    }
    let mut findings: Vec<(usize, Lint)> = Vec::new();
    for rows in groups.values() {
        let first = rows[0];
        for &c in &rows[1..] {
            let (a, b) = (model.constraint_rhs(first), model.constraint_rhs(c));
            if (a - b).abs() > EQ_RHS_TOL * (1.0 + a.abs().max(b.abs())) {
                findings.push((
                    c.index(),
                    Lint {
                        rule: Rule::ConflictingEq,
                        severity: Severity::Error,
                        location: row_location(model, c),
                        detail: format!(
                            "Eq row duplicates row {}'s coefficients but asks \
                             for rhs {b} instead of {a}; no point satisfies both",
                            first.index()
                        ),
                    },
                ));
            }
        }
    }
    findings.sort_by_key(|&(i, _)| i);
    out.extend(findings.into_iter().map(|(_, l)| l));
}

fn bound_infeasible_rows(model: &Model, out: &mut Vec<Lint>) {
    'rows: for c in model.constraint_ids() {
        // Interval arithmetic over the canonical lhs: [lo, hi] of Σ coef·x
        // given each x's box. Empty boxes are validate()'s problem, skip.
        let mut lo = 0.0f64;
        let mut hi = 0.0f64;
        for (v, coef) in canonical_terms(model, c) {
            let (lb, ub) = model.var_bounds(lips_lp::VarId::from_index(v));
            if lb > ub {
                continue 'rows;
            }
            let (a, b) = (coef * lb, coef * ub);
            lo += a.min(b);
            hi += a.max(b);
        }
        if lo.is_nan() || hi.is_nan() {
            continue; // e.g. 0·∞ from an unbounded box; can't conclude
        }
        let rhs = model.constraint_rhs(c);
        let reason = match model.constraint_cmp(c) {
            Cmp::Le if lo > rhs => Some(format!("lhs ≥ {lo} but row asks ≤ {rhs}")),
            Cmp::Ge if hi < rhs => Some(format!("lhs ≤ {hi} but row asks ≥ {rhs}")),
            Cmp::Eq if lo > rhs || hi < rhs => {
                Some(format!("lhs ranges over [{lo}, {hi}] but row asks = {rhs}"))
            }
            _ => None,
        };
        if let Some(reason) = reason {
            out.push(Lint {
                rule: Rule::BoundInfeasibleRow,
                severity: Severity::Error,
                location: row_location(model, c),
                detail: format!("row is infeasible from variable bounds alone: {reason}"),
            });
        }
    }
}

fn unbounded_cost_directions(model: &Model, out: &mut Vec<Lint>) {
    let mut constrained = vec![false; model.num_vars()];
    for c in model.constraint_ids() {
        for (v, coef) in model.constraint_terms(c) {
            if coef != 0.0 {
                constrained[v.index()] = true;
            }
        }
    }
    for v in model.var_ids() {
        let obj = model.var_obj(v);
        if obj == 0.0 {
            continue;
        }
        let (lb, ub) = model.var_bounds(v);
        // In the model's own sense, which bound does the objective push
        // toward, and is that bound infinite?
        let improving = match model.sense() {
            Sense::Minimize => obj < 0.0,
            Sense::Maximize => obj > 0.0,
        };
        let escapes = if improving {
            ub == f64::INFINITY
        } else {
            lb == f64::NEG_INFINITY
        };
        if !escapes {
            continue;
        }
        // With no constraint touching the column the model is certainly
        // unbounded; otherwise a row may still cap the ray.
        let severity = if constrained[v.index()] {
            Severity::Warning
        } else {
            Severity::Error
        };
        out.push(Lint {
            rule: Rule::UnboundedCost,
            severity,
            location: var_location(model, v),
            detail: format!(
                "objective coefficient {obj} improves toward an infinite bound \
                 ({}); unboundedness risk",
                if constrained[v.index()] {
                    "only constraints can cap it"
                } else {
                    "and no constraint touches it: the LP is unbounded"
                }
            ),
        });
    }
}

fn spread_lint(location: String, what: &str, min: f64, max: f64, out: &mut Vec<Lint>) {
    if min > 0.0 && max / min > SCALING_SPREAD_LIMIT {
        out.push(Lint {
            rule: Rule::BadScaling,
            severity: Severity::Warning,
            location,
            detail: format!(
                "{what} coefficient magnitudes span [{min:e}, {max:e}] \
                 (spread {:.1e} > {SCALING_SPREAD_LIMIT:e}); expect numerical trouble",
                max / min
            ),
        });
    }
}

fn bad_scaling(model: &Model, out: &mut Vec<Lint>) {
    for c in model.constraint_ids() {
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for (_, coef) in model.constraint_terms(c) {
            let a = coef.abs();
            if a > 0.0 {
                min = min.min(a);
                max = max.max(a);
            }
        }
        spread_lint(row_location(model, c), "row", min, max, out);
    }
    let mut min = f64::INFINITY;
    let mut max = 0.0f64;
    for v in model.var_ids() {
        let a = model.var_obj(v).abs();
        if a > 0.0 {
            min = min.min(a);
            max = max.max(a);
        }
    }
    spread_lint("objective".into(), "objective", min, max, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_lp::Model;

    fn clean_model() -> Model {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 2.0);
        let y = m.add_var("y", 0.0, 1.0, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        m.add_constraint([(x, 2.0)], Cmp::Le, 1.5);
        m
    }

    fn rules(model: &Model) -> Vec<Rule> {
        lint(model).iter().map(|l| l.rule).collect()
    }

    #[test]
    fn clean_model_has_no_findings() {
        assert!(lint(&clean_model()).is_empty());
    }

    #[test]
    fn empty_row_flagged() {
        let mut m = clean_model();
        m.add_constraint([], Cmp::Le, 1.0); // vacuous: 0 <= 1
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::EmptyRow);
        assert_eq!(found[0].severity, Severity::Warning);

        // Unsatisfiable flavour: 0 >= 1.
        let mut m = clean_model();
        m.add_constraint([], Cmp::Ge, 1.0);
        let found = lint(&m);
        assert_eq!(found[0].rule, Rule::EmptyRow);
        assert_eq!(found[0].severity, Severity::Error);
    }

    #[test]
    fn all_zero_row_flagged_as_empty() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 0.0)], Cmp::Eq, 0.5);
        let found = lint(&m);
        assert!(found
            .iter()
            .any(|l| l.rule == Rule::EmptyRow && l.severity == Severity::Error));
    }

    #[test]
    fn unused_variable_flagged() {
        let mut m = clean_model();
        m.add_var("orphan", 0.0, 1.0, 1.0);
        assert_eq!(rules(&m), vec![Rule::UnusedVariable]);
    }

    #[test]
    fn duplicate_term_flagged() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (x, 1.0)], Cmp::Ge, 4.0);
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::DuplicateTerm);
        assert!(found[0].detail.contains("2 times"), "{}", found[0].detail);
    }

    #[test]
    fn conflicting_eq_rows_flagged() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 2.0)], Cmp::Eq, 3.0);
        m.add_constraint([(y, 2.0), (x, 1.0)], Cmp::Eq, 4.0); // same lhs, reordered
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::ConflictingEq);
        assert_eq!(found[0].severity, Severity::Error);

        // Same rhs is fine (merely redundant, not conflicting).
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint([(x, 1.0)], Cmp::Eq, 3.0);
        assert!(lint(&m).is_empty());
    }

    #[test]
    fn bound_infeasible_rows_flagged() {
        // x,y ∈ [0,1] can sum to at most 2 < 3.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 3.0);
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::BoundInfeasibleRow);

        // Negative coefficient direction: -x ∈ [-1, 0] can never be ≥ 0.5…
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, -1.0)], Cmp::Ge, 0.5);
        assert_eq!(rules(&m), vec![Rule::BoundInfeasibleRow]);

        // …while a satisfiable row stays silent.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        m.add_constraint([(x, -1.0)], Cmp::Ge, -0.5);
        assert!(lint(&m).is_empty());
    }

    #[test]
    fn unbounded_cost_flagged() {
        // Minimize with obj < 0 and ub = ∞, no constraints: certain
        // unboundedness.
        let mut m = Model::minimize();
        m.add_var("x", 0.0, f64::INFINITY, -1.0);
        let found = lint(&m);
        // The orphan column also trips UnusedVariable; the rule under test
        // must be the Error.
        let unb: Vec<&Lint> = found
            .iter()
            .filter(|l| l.rule == Rule::UnboundedCost)
            .collect();
        assert_eq!(unb.len(), 1);
        assert_eq!(unb[0].severity, Severity::Error);

        // Same column capped by a row: only a Warning.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, f64::INFINITY, -1.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 5.0);
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::UnboundedCost);
        assert_eq!(found[0].severity, Severity::Warning);

        // Maximize flips the improving direction.
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", f64::NEG_INFINITY, 0.0, 1.0);
        assert!(lint(&m).iter().all(|l| l.rule != Rule::UnboundedCost));
        let mut m = Model::new(Sense::Maximize);
        m.add_var("x", 0.0, f64::INFINITY, 1.0);
        assert!(lint(&m).iter().any(|l| l.rule == Rule::UnboundedCost));
    }

    #[test]
    fn bad_scaling_flagged() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1e-5), (y, 1e5)], Cmp::Le, 1.0); // spread 1e10
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::BadScaling);

        // Spread exactly at the limit is accepted.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1.0);
        let y = m.add_var("y", 0.0, 1.0, 1.0);
        m.add_constraint([(x, 1.0), (y, 1e8)], Cmp::Le, 1.0);
        assert!(lint(&m).is_empty());
    }

    #[test]
    fn objective_scaling_checked_too() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 1.0, 1e-6);
        let y = m.add_var("y", 0.0, 1.0, 1e6);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 1.0);
        let found = lint(&m);
        assert_eq!(found.len(), 1);
        assert_eq!(found[0].rule, Rule::BadScaling);
        assert_eq!(found[0].location, "objective");
    }

    #[test]
    fn display_is_readable() {
        let mut m = clean_model();
        m.add_var("orphan", 0.0, 1.0, 1.0);
        let s = lint(&m)[0].to_string();
        assert!(s.starts_with("warning[UnusedVariable] var orphan:"), "{s}");
    }
}
