//! # lips-audit — static analysis for the LiPS linear programs
//!
//! The reproduction's credibility rests on two things this crate checks
//! mechanically, without re-running the solver:
//!
//! * the *models* handed to the solver are well-formed and match the paper's
//!   Fig 2/3/4 structure ([`lint`], [`audit_paper_invariants`]);
//! * the *solutions* the solver returns are genuinely optimal, proven by an
//!   independently recomputed primal/dual certificate ([`certify`]).
//!
//! All three passes are pure functions over `lips_lp::Model` /
//! `lips_lp::Solution`; nothing here mutates or solves.
//!
//! ```
//! use lips_lp::{Cmp, Model};
//!
//! let mut m = Model::minimize();
//! let x = m.add_var("x", 0.0, 10.0, 2.0);
//! let y = m.add_var("y", 0.0, 10.0, 3.0);
//! m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
//!
//! assert!(lips_audit::lint(&m).is_empty());
//! let sol = m.solve().unwrap();
//! let cert = lips_audit::certify(&m, &sol).unwrap();
//! assert!(cert.is_optimal());
//! ```

pub mod certificate;
pub mod invariants;
pub mod lint;

pub use certificate::{
    certify, certify_restricted, certify_restricted_with, certify_with, Certificate, CertifyError,
    ExcludedColumn, RestrictedCertificate,
};
pub use invariants::{
    audit_paper_invariants, ModelAnnotations, PaperExpectations, RowKind, VarKind,
};
pub use lint::{lint, Lint, Rule, Severity};
