//! Paper-invariant audit: structural checks tying a generated LP back to
//! the Fig 2/3/4 formulations of the paper.
//!
//! The builder in `lips-core/src/lp_build.rs` annotates every row and
//! column it emits ([`RowKind`], [`VarKind`]); this pass re-derives the
//! paper's structure from those annotations and verifies:
//!
//! * every job has exactly one coverage row `Σ x^t + f_k ≥ 1` (eq. 20)
//!   spanning all of the job's assignment variables;
//! * every (job, store) pair with assignment variables has the linking
//!   row `Σ_l x^t_klm − Σ n_km ≤ avail_km` (eq. 24);
//! * capacity rows match the cluster matrices: CPU rows carry each job's
//!   work as the coefficient and the machine's ECU-second capacity as the
//!   rhs (eq. 23), transfer rows carry `Size/B` coefficients (eq. 21),
//!   store rows carry `Size` coefficients against free MB (eq. 22);
//! * the fake node's column has unbounded capacity — it appears in *no*
//!   capacity row, only in its coverage row — and its price strictly
//!   dominates every real assignment of the same job.
//!
//! Violations are reported as [`Lint`]s with [`Rule::PaperInvariant`].

use std::collections::BTreeMap;

use lips_cluster::{MachineId, StoreId};
use lips_lp::{Cmp, ConstraintId, Model, VarId};

use crate::lint::{Lint, Rule, Severity};

/// Relative tolerance when comparing annotated coefficients/rhs against
/// the values recomputed from the expectations.
const MATCH_RTOL: f64 = 1e-9;

/// What a constraint row encodes, in the paper's terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowKind {
    /// Eq. 20: job `job` must be fully assigned (fake node included).
    Coverage { job: usize },
    /// Eq. 24: job `job`'s reads from `store` are bounded by availability
    /// plus new copies.
    Linking { job: usize, store: StoreId },
    /// Eq. 23: CPU capacity of `machine`.
    CpuCap { machine: MachineId },
    /// Eq. 21: read-time budget of `machine`.
    TransferTime { machine: MachineId },
    /// Fair-share floor for scheduler pool `pool` (not in the paper's
    /// figures; see lp_build docs).
    PoolFloor { pool: usize },
    /// Eq. 22: free capacity of `store`.
    StoreCap { store: StoreId },
}

/// What a column (variable) encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarKind {
    /// `x^t_klm`: fraction of `job` run on `machine` reading from `store`
    /// (`None` for input-less work).
    Assign {
        job: usize,
        machine: MachineId,
        store: Option<StoreId>,
    },
    /// `n_km`: new fraction of `job`'s data copied to `dest`.
    NewCopy { job: usize, dest: StoreId },
    /// `f_k`: deferred fraction of `job` on the fake node.
    Fake { job: usize },
}

/// Row/column annotations the builder emits alongside its [`Model`].
#[derive(Debug, Clone, Default)]
pub struct ModelAnnotations {
    rows: Vec<(ConstraintId, RowKind)>,
    vars: Vec<(VarId, VarKind)>,
}

impl ModelAnnotations {
    pub fn annotate_row(&mut self, id: ConstraintId, kind: RowKind) {
        self.rows.push((id, kind));
    }

    pub fn annotate_var(&mut self, id: VarId, kind: VarKind) {
        self.vars.push((id, kind));
    }

    /// All annotated rows, in emission order.
    pub fn rows(&self) -> &[(ConstraintId, RowKind)] {
        &self.rows
    }

    /// All annotated columns, in emission order.
    pub fn vars(&self) -> &[(VarId, VarKind)] {
        &self.vars
    }

    /// Kind of one column, if annotated.
    pub fn var_kind(&self, v: VarId) -> Option<VarKind> {
        self.vars.iter().find(|&&(id, _)| id == v).map(|&(_, k)| k)
    }
}

/// Ground truth recomputed from the instance/cluster, against which the
/// generated model is checked. Built by `lips-core` next to the model.
#[derive(Debug, Clone, Default)]
pub struct PaperExpectations {
    /// Number of jobs in the instance.
    pub num_jobs: usize,
    /// `work_ecu()` per job — the expected CPU-row coefficient.
    pub job_work_ecu: Vec<f64>,
    /// `size_mb` per job — the expected store-row coefficient.
    pub job_size_mb: Vec<f64>,
    /// Expected rhs of each machine's CPU-capacity row
    /// (`TP_l · duration`).
    pub cpu_capacity: Vec<(MachineId, f64)>,
    /// Expected rhs of each machine's transfer-time row
    /// (`duration · slots`); empty when eq. 21 is disabled.
    pub transfer_budget: Vec<(MachineId, f64)>,
    /// Expected `(machine, store) → bandwidth MB/s` used by eq. 21
    /// coefficients.
    pub bandwidth: Vec<((MachineId, StoreId), f64)>,
    /// Expected rhs of each store's capacity row (free MB).
    pub store_free_mb: Vec<(StoreId, f64)>,
    /// Whether the fake node is enabled (Fig 4).
    pub fake_enabled: bool,
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= MATCH_RTOL * (1.0 + a.abs().max(b.abs()))
}

fn err(location: String, detail: String) -> Lint {
    Lint {
        rule: Rule::PaperInvariant,
        severity: Severity::Error,
        location,
        detail,
    }
}

/// Check the generated `model` against the paper's structure.
///
/// Returns one [`Lint`] per violated invariant; an empty vector means the
/// model is structurally exactly what Figs 2/3/4 prescribe.
pub fn audit_paper_invariants(
    model: &Model,
    ann: &ModelAnnotations,
    expect: &PaperExpectations,
) -> Vec<Lint> {
    let mut out = Vec::new();

    let var_kinds: BTreeMap<usize, VarKind> =
        ann.vars.iter().map(|&(v, k)| (v.index(), k)).collect();

    // Partition annotated variables by job.
    let mut assigns_of_job: BTreeMap<usize, Vec<VarId>> = BTreeMap::new();
    let mut copies_to: BTreeMap<(usize, StoreId), Vec<VarId>> = BTreeMap::new();
    let mut fake_of_job: BTreeMap<usize, VarId> = BTreeMap::new();
    let mut stores_of_job: BTreeMap<usize, Vec<StoreId>> = BTreeMap::new();
    for &(v, kind) in &ann.vars {
        match kind {
            VarKind::Assign { job, store, .. } => {
                assigns_of_job.entry(job).or_default().push(v);
                if let Some(s) = store {
                    let stores = stores_of_job.entry(job).or_default();
                    if !stores.contains(&s) {
                        stores.push(s);
                    }
                }
            }
            VarKind::NewCopy { job, dest } => {
                copies_to.entry((job, dest)).or_default().push(v);
            }
            VarKind::Fake { job } => {
                fake_of_job.insert(job, v);
            }
        }
    }

    // --- eq. 20: coverage ----------------------------------------------
    let mut coverage_of_job: BTreeMap<usize, ConstraintId> = BTreeMap::new();
    for &(c, kind) in &ann.rows {
        if let RowKind::Coverage { job } = kind {
            if coverage_of_job.insert(job, c).is_some() {
                out.push(err(
                    format!("row {}", c.index()),
                    format!("job {job} has more than one coverage row (eq. 20)"),
                ));
            }
        }
    }
    for job in 0..expect.num_jobs {
        let Some(&c) = coverage_of_job.get(&job) else {
            out.push(err(
                format!("job {job}"),
                "no coverage row: nothing forces the job to be scheduled (eq. 20)".into(),
            ));
            continue;
        };
        if model.constraint_cmp(c) != Cmp::Ge || !close(model.constraint_rhs(c), 1.0) {
            out.push(err(
                format!("row {}", c.index()),
                format!(
                    "coverage row must read `Σ x^t + f ≥ 1`, found {:?} {}",
                    model.constraint_cmp(c),
                    model.constraint_rhs(c)
                ),
            ));
        }
        // The row must span exactly the job's assignment vars (+ fake).
        let mut expected: Vec<usize> = assigns_of_job
            .get(&job)
            .map(|v| v.iter().map(|x| x.index()).collect())
            .unwrap_or_default();
        if let Some(&f) = fake_of_job.get(&job) {
            expected.push(f.index());
        }
        expected.sort_unstable();
        let mut actual: Vec<usize> = Vec::new();
        for (v, coef) in model.constraint_terms(c) {
            if !close(coef, 1.0) {
                out.push(err(
                    format!("row {}", c.index()),
                    format!(
                        "coverage coefficient of {} is {coef}, expected 1",
                        model.var_name(v)
                    ),
                ));
            }
            actual.push(v.index());
        }
        actual.sort_unstable();
        if actual != expected {
            out.push(err(
                format!("row {}", c.index()),
                format!(
                    "coverage row covers columns {actual:?} but job {job} owns \
                     {expected:?} (every x^t and f must appear exactly once)"
                ),
            ));
        }
    }

    // --- eq. 24: linking -----------------------------------------------
    let mut linking_of: BTreeMap<(usize, StoreId), ConstraintId> = BTreeMap::new();
    for &(c, kind) in &ann.rows {
        if let RowKind::Linking { job, store } = kind {
            linking_of.insert((job, store), c);
        }
    }
    let mut pairs: Vec<(usize, StoreId)> = stores_of_job
        .iter()
        .flat_map(|(&job, stores)| stores.iter().map(move |&s| (job, s)))
        .collect();
    pairs.sort_unstable_by_key(|&(job, s)| (job, s));
    for (job, store) in pairs {
        let Some(&c) = linking_of.get(&(job, store)) else {
            out.push(err(
                format!("job {job}"),
                format!(
                    "no linking row for store {store:?}: tasks could read data \
                     that is not there (eq. 24)"
                ),
            ));
            continue;
        };
        if model.constraint_cmp(c) != Cmp::Le {
            out.push(err(
                format!("row {}", c.index()),
                "linking row must be a ≤ constraint (eq. 24)".into(),
            ));
        }
        let rhs = model.constraint_rhs(c);
        if !(0.0..=1.0).contains(&rhs) {
            out.push(err(
                format!("row {}", c.index()),
                format!("linking rhs {rhs} is not an availability fraction in [0, 1]"),
            ));
        }
        for (v, coef) in model.constraint_terms(c) {
            let ok = match var_kinds.get(&v.index()) {
                Some(VarKind::Assign {
                    job: j, store: s, ..
                }) => *j == job && *s == Some(store) && close(coef, 1.0),
                Some(VarKind::NewCopy { job: j, dest }) => {
                    *j == job && *dest == store && close(coef, -1.0)
                }
                _ => false,
            };
            if !ok {
                out.push(err(
                    format!("row {}", c.index()),
                    format!(
                        "linking row for job {job}/store {store:?} contains \
                         foreign or mis-signed term {} ({coef})",
                        model.var_name(v)
                    ),
                ));
            }
        }
    }

    // --- eqs. 23/21/22: capacity rows match the cluster matrices ---------
    let cpu_rhs: BTreeMap<MachineId, f64> = expect.cpu_capacity.iter().copied().collect();
    let transfer_rhs: BTreeMap<MachineId, f64> = expect.transfer_budget.iter().copied().collect();
    let bw: BTreeMap<(MachineId, StoreId), f64> = expect.bandwidth.iter().copied().collect();
    let store_rhs: BTreeMap<StoreId, f64> = expect.store_free_mb.iter().copied().collect();

    for &(c, kind) in &ann.rows {
        match kind {
            RowKind::CpuCap { machine } => {
                match cpu_rhs.get(&machine) {
                    Some(&cap) if close(model.constraint_rhs(c), cap) => {}
                    Some(&cap) => out.push(err(
                        format!("row {}", c.index()),
                        format!(
                            "CPU capacity of {machine:?} is {} but the cluster \
                             matrix says {cap} (eq. 23)",
                            model.constraint_rhs(c)
                        ),
                    )),
                    None => out.push(err(
                        format!("row {}", c.index()),
                        format!("CPU row for {machine:?} not in the cluster's machine set"),
                    )),
                }
                for (v, coef) in model.constraint_terms(c) {
                    let ok = match var_kinds.get(&v.index()) {
                        Some(VarKind::Assign {
                            job, machine: m, ..
                        }) => {
                            *m == machine
                                && expect
                                    .job_work_ecu
                                    .get(*job)
                                    .is_some_and(|&w| close(coef, w))
                        }
                        _ => false,
                    };
                    if !ok {
                        out.push(err(
                            format!("row {}", c.index()),
                            format!(
                                "CPU row of {machine:?}: term {} ({coef}) does not \
                                 equal the job's work_ecu on this machine (eq. 23)",
                                model.var_name(v)
                            ),
                        ));
                    }
                }
            }
            RowKind::TransferTime { machine } => {
                match transfer_rhs.get(&machine) {
                    Some(&budget) if close(model.constraint_rhs(c), budget) => {}
                    _ => out.push(err(
                        format!("row {}", c.index()),
                        format!(
                            "transfer budget of {machine:?} is {} but expected \
                             duration·slots from the cluster (eq. 21)",
                            model.constraint_rhs(c)
                        ),
                    )),
                }
                for (v, coef) in model.constraint_terms(c) {
                    let ok = match var_kinds.get(&v.index()) {
                        Some(VarKind::Assign {
                            job,
                            machine: m,
                            store: Some(s),
                        }) => {
                            *m == machine
                                && bw.get(&(machine, *s)).is_some_and(|&b| {
                                    expect
                                        .job_size_mb
                                        .get(*job)
                                        .is_some_and(|&mb| close(coef, mb / b))
                                })
                        }
                        _ => false,
                    };
                    if !ok {
                        out.push(err(
                            format!("row {}", c.index()),
                            format!(
                                "transfer row of {machine:?}: term {} ({coef}) does \
                                 not equal Size/B from the bandwidth matrix (eq. 21)",
                                model.var_name(v)
                            ),
                        ));
                    }
                }
            }
            RowKind::StoreCap { store } => {
                match store_rhs.get(&store) {
                    Some(&free) if close(model.constraint_rhs(c), free) => {}
                    _ => out.push(err(
                        format!("row {}", c.index()),
                        format!(
                            "store capacity of {store:?} is {} but the cluster \
                             says otherwise (eq. 22)",
                            model.constraint_rhs(c)
                        ),
                    )),
                }
                for (v, coef) in model.constraint_terms(c) {
                    let ok = match var_kinds.get(&v.index()) {
                        Some(VarKind::NewCopy { job, dest }) => {
                            *dest == store
                                && expect
                                    .job_size_mb
                                    .get(*job)
                                    .is_some_and(|&mb| close(coef, mb))
                        }
                        _ => false,
                    };
                    if !ok {
                        out.push(err(
                            format!("row {}", c.index()),
                            format!(
                                "store row of {store:?}: term {} ({coef}) is not a \
                                 new-copy variable scaled by Size (eq. 22)",
                                model.var_name(v)
                            ),
                        ));
                    }
                }
            }
            RowKind::Coverage { .. } | RowKind::Linking { .. } | RowKind::PoolFloor { .. } => {}
        }
    }

    // --- fake node -------------------------------------------------------
    if expect.fake_enabled {
        // Column membership: which rows touch each fake var.
        let mut rows_touching: BTreeMap<usize, Vec<ConstraintId>> = BTreeMap::new();
        for c in model.constraint_ids() {
            for (v, coef) in model.constraint_terms(c) {
                if coef != 0.0 {
                    rows_touching.entry(v.index()).or_default().push(c);
                }
            }
        }
        for job in 0..expect.num_jobs {
            let Some(&f) = fake_of_job.get(&job) else {
                out.push(err(
                    format!("job {job}"),
                    "fake node enabled but the job has no fake column".into(),
                ));
                continue;
            };
            // Unbounded capacity: the fake column must appear in the
            // coverage row only — no capacity row may constrain it.
            let touching = rows_touching.get(&f.index()).cloned().unwrap_or_default();
            let coverage = coverage_of_job.get(&job).copied();
            if touching.len() != 1 || coverage != Some(touching[0]) {
                out.push(err(
                    format!("var {}", model.var_name(f)),
                    format!(
                        "fake column must appear only in job {job}'s coverage row \
                         (unbounded capacity), but touches rows {:?}",
                        touching.iter().map(|c| c.index()).collect::<Vec<_>>()
                    ),
                ));
            }
            // Price domination: deferring must never be cheaper than any
            // real assignment.
            let fake_price = model.var_obj(f);
            for &v in assigns_of_job.get(&job).map_or(&[][..], Vec::as_slice) {
                if fake_price <= model.var_obj(v) {
                    out.push(err(
                        format!("var {}", model.var_name(f)),
                        format!(
                            "fake price {fake_price} does not strictly dominate \
                             real assignment {} ({})",
                            model.var_name(v),
                            model.var_obj(v)
                        ),
                    ));
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_lp::Model;

    /// Hand-build a minimal, correct Fig-4-shaped model: one job, two
    /// machines (each with a co-located store), data on store 0, fake node
    /// enabled.
    struct Tiny {
        model: Model,
        ann: ModelAnnotations,
        expect: PaperExpectations,
    }

    fn tiny() -> Tiny {
        let mut model = Model::minimize();
        let mut ann = ModelAnnotations::default();
        let m0 = MachineId(0);
        let m1 = MachineId(1);
        let s0 = StoreId(0);
        let s1 = StoreId(1);
        let work = 100.0;
        let size = 64.0;

        // Assignment vars for every (machine, store) pair.
        let mut assigns = Vec::new();
        for (l, s) in [(m0, s0), (m0, s1), (m1, s0), (m1, s1)] {
            let v = model.add_var(format!("xt_0_{}_{}", l.0, s.0), 0.0, 1.0, 1.0 + l.0 as f64);
            ann.annotate_var(
                v,
                VarKind::Assign {
                    job: 0,
                    machine: l,
                    store: Some(s),
                },
            );
            assigns.push((l, s, v));
        }
        // One new-copy var to store 1.
        let nd = model.add_var("nd_0_1_0", 0.0, 1.0, 0.5);
        ann.annotate_var(nd, VarKind::NewCopy { job: 0, dest: s1 });
        // Fake var, priced above everything.
        let fake = model.add_var("fake_0", 0.0, 1.0, 1e6);
        ann.annotate_var(fake, VarKind::Fake { job: 0 });

        // (20) coverage.
        let mut cov: Vec<(VarId, f64)> = assigns.iter().map(|&(_, _, v)| (v, 1.0)).collect();
        cov.push((fake, 1.0));
        let c = model.add_constraint(cov, Cmp::Ge, 1.0);
        ann.annotate_row(c, RowKind::Coverage { job: 0 });

        // (24) linking per store.
        for (s, avail) in [(s0, 1.0), (s1, 0.0)] {
            let mut terms: Vec<(VarId, f64)> = assigns
                .iter()
                .filter(|&&(_, st, _)| st == s)
                .map(|&(_, _, v)| (v, 1.0))
                .collect();
            if s == s1 {
                terms.push((nd, -1.0));
            }
            let c = model.add_constraint(terms, Cmp::Le, avail);
            ann.annotate_row(c, RowKind::Linking { job: 0, store: s });
        }

        // (23) CPU capacity per machine.
        for l in [m0, m1] {
            let terms: Vec<(VarId, f64)> = assigns
                .iter()
                .filter(|&&(ml, _, _)| ml == l)
                .map(|&(_, _, v)| (v, work))
                .collect();
            let c = model.add_constraint(terms, Cmp::Le, 500.0);
            ann.annotate_row(c, RowKind::CpuCap { machine: l });
        }

        // (22) store capacity on the copy destination.
        let c = model.add_constraint([(nd, size)], Cmp::Le, 1000.0);
        ann.annotate_row(c, RowKind::StoreCap { store: s1 });

        let expect = PaperExpectations {
            num_jobs: 1,
            job_work_ecu: vec![work],
            job_size_mb: vec![size],
            cpu_capacity: vec![(m0, 500.0), (m1, 500.0)],
            transfer_budget: vec![],
            bandwidth: vec![],
            store_free_mb: vec![(s1, 1000.0)],
            fake_enabled: true,
        };
        Tiny { model, ann, expect }
    }

    fn details(t: &Tiny) -> Vec<String> {
        audit_paper_invariants(&t.model, &t.ann, &t.expect)
            .into_iter()
            .map(|l| l.detail)
            .collect()
    }

    #[test]
    fn correct_model_passes() {
        let t = tiny();
        assert_eq!(details(&t), Vec::<String>::new());
    }

    #[test]
    fn missing_coverage_row_is_caught() {
        let mut t = tiny();
        t.ann
            .rows
            .retain(|&(_, k)| !matches!(k, RowKind::Coverage { .. }));
        let d = details(&t);
        assert!(d.iter().any(|s| s.contains("no coverage row")), "{d:?}");
    }

    #[test]
    fn wrong_coverage_sense_is_caught() {
        let t = tiny();
        // Rebuild with Le instead of Ge by tampering: easiest is a fresh
        // model mirroring tiny() but flipping the row — instead, annotate a
        // different row as the coverage row, which also breaks the span.
        let mut ann = ModelAnnotations::default();
        for &(v, k) in t.ann.vars() {
            ann.annotate_var(v, k);
        }
        for &(c, k) in t.ann.rows() {
            match k {
                RowKind::Coverage { .. } => {
                    ann.annotate_row(ConstraintId::from_index(1), RowKind::Coverage { job: 0 });
                }
                other => ann.annotate_row(c, other),
            }
        }
        let found = audit_paper_invariants(&t.model, &ann, &t.expect);
        assert!(!found.is_empty());
        assert!(found.iter().all(|l| l.rule == Rule::PaperInvariant));
    }

    #[test]
    fn missing_linking_row_is_caught() {
        let mut t = tiny();
        t.ann.rows.retain(|&(_, k)| {
            !matches!(
                k,
                RowKind::Linking {
                    store: StoreId(1),
                    ..
                }
            )
        });
        let d = details(&t);
        assert!(d.iter().any(|s| s.contains("no linking row")), "{d:?}");
    }

    #[test]
    fn wrong_cpu_capacity_is_caught() {
        let mut t = tiny();
        t.expect.cpu_capacity[1].1 = 9999.0; // cluster says 9999, model has 500
        let d = details(&t);
        assert!(d.iter().any(|s| s.contains("eq. 23")), "{d:?}");
    }

    #[test]
    fn wrong_store_capacity_is_caught() {
        let mut t = tiny();
        t.expect.store_free_mb[0].1 = 1.0;
        let d = details(&t);
        assert!(d.iter().any(|s| s.contains("eq. 22")), "{d:?}");
    }

    #[test]
    fn fake_price_must_dominate() {
        let mut t = tiny();
        // Rebuild expectations only; tamper the model by giving the fake
        // column a bargain price via a fresh model is overkill — instead
        // check detection on a cheap fake built from scratch.
        let mut model = Model::minimize();
        let mut ann = ModelAnnotations::default();
        let v = model.add_var("xt_0_0_0", 0.0, 1.0, 10.0);
        ann.annotate_var(
            v,
            VarKind::Assign {
                job: 0,
                machine: MachineId(0),
                store: None,
            },
        );
        let f = model.add_var("fake_0", 0.0, 1.0, 1.0); // cheaper than real!
        ann.annotate_var(f, VarKind::Fake { job: 0 });
        let c = model.add_constraint([(v, 1.0), (f, 1.0)], Cmp::Ge, 1.0);
        ann.annotate_row(c, RowKind::Coverage { job: 0 });
        t.expect = PaperExpectations {
            num_jobs: 1,
            job_work_ecu: vec![1.0],
            job_size_mb: vec![0.0],
            cpu_capacity: vec![],
            transfer_budget: vec![],
            bandwidth: vec![],
            store_free_mb: vec![],
            fake_enabled: true,
        };
        let found = audit_paper_invariants(&model, &ann, &t.expect);
        assert!(
            found.iter().any(|l| l.detail.contains("strictly dominate")),
            "{found:?}"
        );
    }

    #[test]
    fn fake_in_capacity_row_is_caught() {
        let t = tiny();
        // Clone the model and add the fake column into a CPU row.
        let mut model = t.model.clone();
        let fake = t
            .ann
            .vars()
            .iter()
            .find_map(|&(v, k)| matches!(k, VarKind::Fake { .. }).then_some(v))
            .unwrap();
        let extra = model.add_constraint([(fake, 1.0)], Cmp::Le, 10.0);
        let mut ann = t.ann.clone();
        ann.annotate_row(
            extra,
            RowKind::CpuCap {
                machine: MachineId(0),
            },
        );
        let found = audit_paper_invariants(&model, &ann, &t.expect);
        assert!(
            found
                .iter()
                .any(|l| l.detail.contains("unbounded capacity")),
            "{found:?}"
        );
    }
}
