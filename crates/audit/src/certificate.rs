//! Optimality certificates: given a [`Model`] and a claimed-optimal
//! [`Solution`], independently recompute primal feasibility, dual
//! feasibility, complementary slackness, and the duality gap — the
//! textbook KKT conditions for a bounded-variable LP — without re-running
//! the solver.
//!
//! All dual arithmetic happens in the solver's *internal minimization
//! sense* (the convention of [`Solution::duals`]): a `Maximize` model's
//! costs are negated, exactly as `lips_lp::sensitivity` does. With
//! internal costs `c`, duals `y`, and reduced costs `d = c − yᵀA`:
//!
//! * dual feasibility: `y_i ≥ 0` on `Ge` rows, `y_i ≤ 0` on `Le` rows,
//!   free on `Eq`; `d_j ≥ 0` where `ub_j = ∞`, `d_j ≤ 0` where
//!   `lb_j = −∞`;
//! * the dual objective is `bᵀy + Σ_j ([d_j]⁺·lb_j + [d_j]⁻·ub_j)`;
//! * complementary slackness: `y_i·(a_iᵀx − b_i) = 0` per row,
//!   `[d_j]⁺·(x_j − lb_j) = 0` and `[d_j]⁻·(ub_j − x_j) = 0` per column.
//!
//! Weak duality makes the certificate sound: any dual-feasible `y` bounds
//! the optimum, so a feasible `x` whose gap to `bᵀy + …` is ~0 is optimal
//! regardless of how the solver found it.

use lips_lp::{Cmp, Model, Sense, Solution};

/// Relative tolerance for the duality gap and slackness tests
/// (acceptance: gap ≤ `GAP_RTOL · (1 + |objective|)`).
pub const GAP_RTOL: f64 = 1e-6;

/// Absolute tolerance for primal/dual feasibility residuals, scaled by
/// problem magnitudes.
pub const FEAS_RTOL: f64 = 1e-6;

/// Why a certificate could not be computed at all (as opposed to computed
/// and failed — that is a non-[`Certificate::is_optimal`] report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The solution carries no (or wrong-arity) dual values — e.g. the
    /// dense tableau oracle, which reports an empty dual vector.
    MissingDuals { expected: usize, got: usize },
    /// Primal value vector length does not match the model.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::MissingDuals { expected, got } => write!(
                f,
                "solution has {got} dual values but the model has {expected} rows; \
                 cannot certify (dense-solver solutions carry no duals)"
            ),
            CertifyError::DimensionMismatch { expected, got } => write!(
                f,
                "solution has {got} primal values but the model has {expected} variables"
            ),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Independent optimality report for one (model, solution) pair.
///
/// All `max_*` fields are violations normalized by the relevant problem
/// scale, so `is_optimal` compares each against a single relative
/// tolerance.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Objective recomputed from the primal values, in the model's own
    /// sense (matches [`Solution::objective`] when the solver is honest).
    pub primal_objective: f64,
    /// Dual objective in the model's own sense.
    pub dual_objective: f64,
    /// `|primal − dual|` in the internal minimization sense.
    pub duality_gap: f64,
    /// Worst primal constraint/bound violation (raw units).
    pub max_primal_violation: f64,
    /// Worst dual-sign violation, normalized by the largest |cost|.
    pub max_dual_violation: f64,
    /// Worst complementary-slackness product, normalized by
    /// `1 + |primal objective|`.
    pub max_slackness_violation: f64,
    /// `|sol.objective() − recomputed objective|`, a solver-honesty check.
    pub objective_mismatch: f64,
    /// Scale used for the primal feasibility test: `1 + max |rhs|`.
    pub primal_scale: f64,
    /// Scale used for the gap test: `1 + |primal objective|` (internal).
    pub gap_scale: f64,
}

impl Certificate {
    /// True when every KKT condition holds within tolerance: the solution
    /// is optimal (weak duality), not merely claimed so.
    pub fn is_optimal(&self) -> bool {
        self.max_primal_violation <= FEAS_RTOL * self.primal_scale
            && self.max_dual_violation <= FEAS_RTOL
            && self.max_slackness_violation <= GAP_RTOL
            && self.duality_gap <= GAP_RTOL * self.gap_scale
            && self.objective_mismatch <= GAP_RTOL * self.gap_scale
    }

    /// Human-readable list of every failed condition (empty iff
    /// [`Certificate::is_optimal`]).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.max_primal_violation > FEAS_RTOL * self.primal_scale {
            out.push(format!(
                "primal infeasible: violation {:.3e} > {:.3e}",
                self.max_primal_violation,
                FEAS_RTOL * self.primal_scale
            ));
        }
        if self.max_dual_violation > FEAS_RTOL {
            out.push(format!(
                "dual infeasible: normalized sign violation {:.3e} > {FEAS_RTOL:.3e}",
                self.max_dual_violation
            ));
        }
        if self.max_slackness_violation > GAP_RTOL {
            out.push(format!(
                "complementary slackness violated: normalized product {:.3e} > {GAP_RTOL:.3e}",
                self.max_slackness_violation
            ));
        }
        if self.duality_gap > GAP_RTOL * self.gap_scale {
            out.push(format!(
                "duality gap {:.3e} > {:.3e} (primal {:.6}, dual {:.6})",
                self.duality_gap,
                GAP_RTOL * self.gap_scale,
                self.primal_objective,
                self.dual_objective
            ));
        }
        if self.objective_mismatch > GAP_RTOL * self.gap_scale {
            out.push(format!(
                "reported objective disagrees with recomputation by {:.3e}",
                self.objective_mismatch
            ));
        }
        out
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_optimal() {
            write!(
                f,
                "OPTIMAL: objective {:.6}, duality gap {:.3e}, worst primal \
                 violation {:.3e}",
                self.primal_objective, self.duality_gap, self.max_primal_violation
            )
        } else {
            write!(f, "NOT CERTIFIED: {}", self.failures().join("; "))
        }
    }
}

/// Verify `sol` against `model`, recomputing everything from scratch.
///
/// Fails with [`CertifyError`] only when the inputs are structurally
/// unusable (no duals, wrong arity); a *wrong* solution yields an `Ok`
/// certificate whose [`Certificate::is_optimal`] is false and whose
/// [`Certificate::failures`] explain why.
pub fn certify(model: &Model, sol: &Solution) -> Result<Certificate, CertifyError> {
    let n = model.num_vars();
    let m = model.num_constraints();
    let x = sol.values();
    let y = sol.duals();
    if x.len() != n {
        return Err(CertifyError::DimensionMismatch {
            expected: n,
            got: x.len(),
        });
    }
    if y.len() != m {
        return Err(CertifyError::MissingDuals {
            expected: m,
            got: y.len(),
        });
    }

    // Internal minimization sense (the duals' convention).
    let sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    // --- primal side ----------------------------------------------------
    let max_primal_violation = model.max_violation(x);
    let primal_objective = model.objective_of(x);
    let p_int = sign * primal_objective;
    let objective_mismatch = (sol.objective() - primal_objective).abs();

    let mut max_rhs = 0.0f64;
    let mut max_cost = 0.0f64;
    for c in model.constraint_ids() {
        max_rhs = max_rhs.max(model.constraint_rhs(c).abs());
    }
    for v in model.var_ids() {
        max_cost = max_cost.max(model.var_obj(v).abs());
    }
    let primal_scale = 1.0 + max_rhs;
    let gap_scale = 1.0 + p_int.abs();
    let cost_scale = 1.0 + max_cost;

    // --- dual side ------------------------------------------------------
    // Reduced costs d = c_int − yᵀA, plus row slacks for the CS products.
    let mut reduced: Vec<f64> = model.var_ids().map(|v| sign * model.var_obj(v)).collect();
    let mut max_dual_violation = 0.0f64;
    let mut max_slackness_violation = 0.0f64;
    let mut dual_objective_int = 0.0f64;

    for (i, c) in model.constraint_ids().enumerate() {
        let yi = y[i];
        let mut lhs = 0.0;
        for (v, coef) in model.constraint_terms(c) {
            reduced[v.index()] -= yi * coef;
            lhs += coef * x[v.index()];
        }
        let rhs = model.constraint_rhs(c);
        // Sign condition per row type (internal minimize: Ge rows carry
        // y ≥ 0, Le rows y ≤ 0, Eq free).
        let sign_violation = match model.constraint_cmp(c) {
            Cmp::Ge => (-yi).max(0.0),
            Cmp::Le => yi.max(0.0),
            Cmp::Eq => 0.0,
        };
        max_dual_violation = max_dual_violation.max(sign_violation / cost_scale);
        // Row complementary slackness: y_i · (a_iᵀx − b_i) ≈ 0.
        max_slackness_violation = max_slackness_violation.max((yi * (lhs - rhs)).abs() / gap_scale);
        dual_objective_int += yi * rhs;
    }

    for v in model.var_ids() {
        let d = reduced[v.index()];
        let (lb, ub) = model.var_bounds(v);
        // Bound-side dual feasibility: a positive reduced cost needs a
        // finite lower bound to lean on, a negative one a finite upper.
        if lb == f64::NEG_INFINITY {
            max_dual_violation = max_dual_violation.max(d.max(0.0) / cost_scale);
        }
        if ub == f64::INFINITY {
            max_dual_violation = max_dual_violation.max((-d).max(0.0) / cost_scale);
        }
        // Column complementary slackness and the bound terms of the dual
        // objective. Products with an infinite bound are skipped: their
        // reduced-cost side is already charged as a dual violation above.
        let xv = x[v.index()];
        if d > 0.0 && lb.is_finite() {
            max_slackness_violation =
                max_slackness_violation.max((d * (xv - lb)).abs() / gap_scale);
            dual_objective_int += d * lb;
        }
        if d < 0.0 && ub.is_finite() {
            max_slackness_violation =
                max_slackness_violation.max((d * (ub - xv)).abs() / gap_scale);
            dual_objective_int += d * ub;
        }
    }

    Ok(Certificate {
        primal_objective,
        dual_objective: sign * dual_objective_int,
        duality_gap: (p_int - dual_objective_int).abs(),
        max_primal_violation,
        max_dual_violation,
        max_slackness_violation,
        objective_mismatch,
        primal_scale,
        gap_scale,
    })
}

/// One column of the full model that a restricted master excluded.
///
/// An excluded column is a variable held at value 0 (its lower bound): the
/// master simply never materialized it. `terms` are its coefficients in
/// the master's rows, by [`lips_lp::ConstraintId`]; rows it does not touch
/// contribute zero. `obj` is its objective coefficient in the model's own
/// sense.
#[derive(Debug, Clone)]
pub struct ExcludedColumn {
    /// Name of the would-be variable, for failure reporting only.
    pub name: String,
    pub obj: f64,
    pub terms: Vec<(lips_lp::ConstraintId, f64)>,
}

/// KKT certificate for a restricted master claimed optimal for its *full*
/// model: the master's own [`Certificate`] plus a pricing pass over every
/// excluded column.
///
/// Soundness: extend the master's optimal solution with zeros for the
/// excluded columns. Primal feasibility and complementary slackness carry
/// over unchanged (a zero column contributes nothing to any row and sits
/// on its lower bound), and the dual objective is unchanged (no `[d]⁺·lb`
/// term for `lb = 0`). The only new KKT condition is dual feasibility of
/// the excluded columns — reduced cost ≥ 0 within tolerance — which is
/// exactly what [`RestrictedCertificate::max_excluded_violation`] measures.
/// A master whose excluded columns were never priced to nonnegativity
/// therefore *cannot* pass [`RestrictedCertificate::is_optimal`].
#[derive(Debug, Clone)]
pub struct RestrictedCertificate {
    /// The master's own KKT report.
    pub master: Certificate,
    /// Worst negative reduced cost among excluded columns, normalized by
    /// `1 + max |cost|` over master and excluded columns (the same scale
    /// as the master's dual-feasibility test). 0 when nothing prices out.
    pub max_excluded_violation: f64,
    /// Name of the worst offending column (None when nothing prices out).
    pub worst_excluded: Option<String>,
    /// Number of excluded columns priced.
    pub excluded_priced: usize,
}

impl RestrictedCertificate {
    /// True when the master certifies *and* no excluded column prices out:
    /// the master's solution, zero-extended, is optimal for the full model.
    pub fn is_optimal(&self) -> bool {
        self.master.is_optimal() && self.max_excluded_violation <= FEAS_RTOL
    }

    /// Human-readable list of every failed condition.
    pub fn failures(&self) -> Vec<String> {
        let mut out = self.master.failures();
        if self.max_excluded_violation > FEAS_RTOL {
            out.push(format!(
                "excluded column {} prices out: normalized reduced cost -{:.3e} < -{FEAS_RTOL:.3e}",
                self.worst_excluded.as_deref().unwrap_or("?"),
                self.max_excluded_violation
            ));
        }
        out
    }
}

impl std::fmt::Display for RestrictedCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_optimal() {
            write!(
                f,
                "OPTIMAL (full model): {} excluded columns priced, worst reduced-cost \
                 violation {:.3e}; master {}",
                self.excluded_priced, self.max_excluded_violation, self.master
            )
        } else {
            write!(f, "NOT CERTIFIED: {}", self.failures().join("; "))
        }
    }
}

/// Verify a restricted master against its full model without ever building
/// the full model: certify the master's solution as usual, then price every
/// excluded column against the master's duals.
///
/// A *wrong* claim (master not optimal, or an excluded column with negative
/// reduced cost) yields an `Ok` certificate whose
/// [`RestrictedCertificate::is_optimal`] is false; `Err` is reserved for
/// structurally unusable inputs, as with [`certify`].
pub fn certify_restricted(
    master: &Model,
    sol: &Solution,
    excluded: &[ExcludedColumn],
) -> Result<RestrictedCertificate, CertifyError> {
    let cert = certify(master, sol)?;
    let y = sol.duals();
    let sign = match master.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    // Same normalization as the master's dual-feasibility test, but the
    // scale must cover the excluded costs too (an excluded column can be
    // the dearest in the full model).
    let mut max_cost = 0.0f64;
    for v in master.var_ids() {
        max_cost = max_cost.max(master.var_obj(v).abs());
    }
    for col in excluded {
        max_cost = max_cost.max(col.obj.abs());
    }
    let cost_scale = 1.0 + max_cost;

    let mut worst = 0.0f64;
    let mut worst_name = None;
    for col in excluded {
        let mut d = sign * col.obj;
        for &(c, coef) in &col.terms {
            let i = c.index();
            if i >= y.len() {
                return Err(CertifyError::DimensionMismatch {
                    expected: master.num_constraints(),
                    got: i + 1,
                });
            }
            d -= y[i] * coef;
        }
        let viol = (-d).max(0.0) / cost_scale;
        if viol > worst {
            worst = viol;
            worst_name = Some(col.name.clone());
        }
    }
    Ok(RestrictedCertificate {
        master: cert,
        max_excluded_violation: worst,
        worst_excluded: worst_name,
        excluded_priced: excluded.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_lp::Model;

    /// min 2x + 3y  s.t.  x + y ≥ 4,  x ≤ 3,  x,y ∈ [0,10] → x=3, y=1, obj 9.
    fn sample() -> Model {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        m
    }

    #[test]
    fn certifies_solver_output() {
        let m = sample();
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 9.0).abs() < 1e-9);
        assert!((cert.dual_objective - 9.0).abs() < 1e-6);
        assert!(cert.failures().is_empty());
    }

    #[test]
    fn certifies_maximization() {
        // max x + y  s.t.  2x + y ≤ 4,  x + 3y ≤ 6  → x=1.2, y=1.6, obj 2.8.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 2.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 2.8).abs() < 1e-6);
    }

    #[test]
    fn equality_rows_certify() {
        // min x + 2y  s.t.  x + y = 3,  y ≥ 1 → x=2, y=1, obj 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint([(y, 1.0)], Cmp::Ge, 1.0);
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_feasible_but_suboptimal_point() {
        let m = sample();
        let real = m.solve().unwrap();
        // Hand the verifier a feasible interior point (x=3, y=4, obj 18)
        // with the solver's duals: the gap must expose it.
        let fake = lips_lp::Solution::from_parts(18.0, vec![3.0, 4.0], real.duals().to_vec(), 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!(cert.duality_gap > 1.0);
        assert!(
            cert.failures().iter().any(|s| s.contains("duality gap")),
            "{cert}"
        );
    }

    #[test]
    fn rejects_infeasible_point() {
        let m = sample();
        let real = m.solve().unwrap();
        let fake = lips_lp::Solution::from_parts(0.0, vec![0.0, 0.0], real.duals().to_vec(), 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!(cert.max_primal_violation >= 4.0 - 1e-12);
    }

    #[test]
    fn rejects_sign_flipped_duals() {
        let m = sample();
        let real = m.solve().unwrap();
        let flipped: Vec<f64> = real.duals().iter().map(|d| -d).collect();
        let fake =
            lips_lp::Solution::from_parts(real.objective(), real.values().to_vec(), flipped, 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal(), "{cert}");
        assert!(cert.max_dual_violation > 0.0 || cert.duality_gap > 1e-6);
    }

    #[test]
    fn rejects_lying_objective() {
        let m = sample();
        let real = m.solve().unwrap();
        let fake = lips_lp::Solution::from_parts(
            real.objective() - 5.0,
            real.values().to_vec(),
            real.duals().to_vec(),
            0,
        );
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!((cert.objective_mismatch - 5.0).abs() < 1e-9);
    }

    #[test]
    fn missing_duals_is_an_error_not_a_pass() {
        let m = sample();
        let sol = m.solve_dense().unwrap(); // dense oracle: no duals
        match certify(&m, &sol) {
            Err(CertifyError::MissingDuals {
                expected: 2,
                got: 0,
            }) => {}
            other => panic!("expected MissingDuals, got {other:?}"),
        }
    }

    #[test]
    fn restricted_master_with_unpriced_improving_column_is_rejected() {
        // Master: min 2x s.t. x ≥ 4 → x=4, obj 8, y_demand = 2.
        // Excluded column z (cost 1, coefficient 1 in the demand row) has
        // reduced cost 1 − 2 = −1: the master is NOT optimal for the full
        // model and the certificate must say so, even though the master's
        // own KKT report is clean.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let demand = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "z".into(),
            obj: 1.0,
            terms: vec![(demand, 1.0)],
        }];
        let cert = certify_restricted(&m, &sol, &excluded).unwrap();
        assert!(cert.master.is_optimal(), "master alone certifies");
        assert!(!cert.is_optimal(), "{cert}");
        assert_eq!(cert.worst_excluded.as_deref(), Some("z"));
        assert_eq!(cert.excluded_priced, 1);
        assert!(
            cert.failures().iter().any(|s| s.contains("prices out")),
            "{cert}"
        );
    }

    #[test]
    fn restricted_master_with_dear_excluded_columns_certifies() {
        // Same master, but the excluded column costs more than the row's
        // marginal value (3 > 2): zero-extension is full-model optimal.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let demand = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "z".into(),
            obj: 3.0,
            terms: vec![(demand, 1.0)],
        }];
        let cert = certify_restricted(&m, &sol, &excluded).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert_eq!(cert.max_excluded_violation, 0.0);
        assert!(cert.worst_excluded.is_none());
        // And the full model agrees: appending z does not move the optimum.
        let mut full = m.clone();
        full.add_column("z", 0.0, 10.0, 3.0, [(demand, 1.0)]);
        assert!((full.solve().unwrap().objective() - sol.objective()).abs() < 1e-9);
    }

    #[test]
    fn restricted_rejects_out_of_range_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "bad".into(),
            obj: 1.0,
            terms: vec![(lips_lp::ConstraintId::from_index(7), 1.0)],
        }];
        assert!(matches!(
            certify_restricted(&m, &sol, &excluded),
            Err(CertifyError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_excluded_set_degrades_to_plain_certify() {
        let m = sample();
        let sol = m.solve().unwrap();
        let cert = certify_restricted(&m, &sol, &[]).unwrap();
        assert!(cert.is_optimal());
        assert_eq!(cert.excluded_priced, 0);
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let m = sample();
        let fake = lips_lp::Solution::from_parts(0.0, vec![1.0], vec![0.0, 0.0], 0);
        assert!(matches!(
            certify(&m, &fake),
            Err(CertifyError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }
}
