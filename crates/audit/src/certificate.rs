//! Optimality certificates: given a [`Model`] and a claimed-optimal
//! [`Solution`], independently recompute primal feasibility, dual
//! feasibility, complementary slackness, and the duality gap — the
//! textbook KKT conditions for a bounded-variable LP — without re-running
//! the solver.
//!
//! All dual arithmetic happens in the solver's *internal minimization
//! sense* (the convention of [`Solution::duals`]): a `Maximize` model's
//! costs are negated, exactly as `lips_lp::sensitivity` does. With
//! internal costs `c`, duals `y`, and reduced costs `d = c − yᵀA`:
//!
//! * dual feasibility: `y_i ≥ 0` on `Ge` rows, `y_i ≤ 0` on `Le` rows,
//!   free on `Eq`; `d_j ≥ 0` where `ub_j = ∞`, `d_j ≤ 0` where
//!   `lb_j = −∞`;
//! * the dual objective is `bᵀy + Σ_j ([d_j]⁺·lb_j + [d_j]⁻·ub_j)`;
//! * complementary slackness: `y_i·(a_iᵀx − b_i) = 0` per row,
//!   `[d_j]⁺·(x_j − lb_j) = 0` and `[d_j]⁻·(ub_j − x_j) = 0` per column.
//!
//! Weak duality makes the certificate sound: any dual-feasible `y` bounds
//! the optimum, so a feasible `x` whose gap to `bᵀy + …` is ~0 is optimal
//! regardless of how the solver found it.

use lips_lp::{Cmp, ConstraintId, Model, Sense, Solution, VarId};
use lips_par::Pool;

/// Rows per partial in the chunked KKT row pass. Chunk boundaries depend
/// only on this constant — never on the worker count — so every residual
/// and every floating-point sum below is bitwise identical at any pool
/// width (see [`Pool::par_chunk_fold`]).
const ROW_CHUNK: usize = 64;

/// Variables (or excluded columns) per partial in the column-side passes.
const COL_CHUNK: usize = 512;

/// Relative tolerance for the duality gap and slackness tests
/// (acceptance: gap ≤ `GAP_RTOL · (1 + |objective|)`).
pub const GAP_RTOL: f64 = 1e-6;

/// Absolute tolerance for primal/dual feasibility residuals, scaled by
/// problem magnitudes.
pub const FEAS_RTOL: f64 = 1e-6;

/// Why a certificate could not be computed at all (as opposed to computed
/// and failed — that is a non-[`Certificate::is_optimal`] report).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CertifyError {
    /// The solution carries no (or wrong-arity) dual values — e.g. the
    /// dense tableau oracle, which reports an empty dual vector.
    MissingDuals { expected: usize, got: usize },
    /// Primal value vector length does not match the model.
    DimensionMismatch { expected: usize, got: usize },
}

impl std::fmt::Display for CertifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertifyError::MissingDuals { expected, got } => write!(
                f,
                "solution has {got} dual values but the model has {expected} rows; \
                 cannot certify (dense-solver solutions carry no duals)"
            ),
            CertifyError::DimensionMismatch { expected, got } => write!(
                f,
                "solution has {got} primal values but the model has {expected} variables"
            ),
        }
    }
}

impl std::error::Error for CertifyError {}

/// Independent optimality report for one (model, solution) pair.
///
/// All `max_*` fields are violations normalized by the relevant problem
/// scale, so `is_optimal` compares each against a single relative
/// tolerance.
#[derive(Debug, Clone)]
pub struct Certificate {
    /// Objective recomputed from the primal values, in the model's own
    /// sense (matches [`Solution::objective`] when the solver is honest).
    pub primal_objective: f64,
    /// Dual objective in the model's own sense.
    pub dual_objective: f64,
    /// `|primal − dual|` in the internal minimization sense.
    pub duality_gap: f64,
    /// Worst primal constraint/bound violation (raw units).
    pub max_primal_violation: f64,
    /// Worst dual-sign violation, normalized by the largest |cost|.
    pub max_dual_violation: f64,
    /// Worst complementary-slackness product, normalized by
    /// `1 + |primal objective|`.
    pub max_slackness_violation: f64,
    /// `|sol.objective() − recomputed objective|`, a solver-honesty check.
    pub objective_mismatch: f64,
    /// Scale used for the primal feasibility test: `1 + max |rhs|`.
    pub primal_scale: f64,
    /// Scale used for the gap test: `1 + |primal objective|` (internal).
    pub gap_scale: f64,
}

impl Certificate {
    /// True when every KKT condition holds within tolerance: the solution
    /// is optimal (weak duality), not merely claimed so.
    pub fn is_optimal(&self) -> bool {
        self.max_primal_violation <= FEAS_RTOL * self.primal_scale
            && self.max_dual_violation <= FEAS_RTOL
            && self.max_slackness_violation <= GAP_RTOL
            && self.duality_gap <= GAP_RTOL * self.gap_scale
            && self.objective_mismatch <= GAP_RTOL * self.gap_scale
    }

    /// Human-readable list of every failed condition (empty iff
    /// [`Certificate::is_optimal`]).
    pub fn failures(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.max_primal_violation > FEAS_RTOL * self.primal_scale {
            out.push(format!(
                "primal infeasible: violation {:.3e} > {:.3e}",
                self.max_primal_violation,
                FEAS_RTOL * self.primal_scale
            ));
        }
        if self.max_dual_violation > FEAS_RTOL {
            out.push(format!(
                "dual infeasible: normalized sign violation {:.3e} > {FEAS_RTOL:.3e}",
                self.max_dual_violation
            ));
        }
        if self.max_slackness_violation > GAP_RTOL {
            out.push(format!(
                "complementary slackness violated: normalized product {:.3e} > {GAP_RTOL:.3e}",
                self.max_slackness_violation
            ));
        }
        if self.duality_gap > GAP_RTOL * self.gap_scale {
            out.push(format!(
                "duality gap {:.3e} > {:.3e} (primal {:.6}, dual {:.6})",
                self.duality_gap,
                GAP_RTOL * self.gap_scale,
                self.primal_objective,
                self.dual_objective
            ));
        }
        if self.objective_mismatch > GAP_RTOL * self.gap_scale {
            out.push(format!(
                "reported objective disagrees with recomputation by {:.3e}",
                self.objective_mismatch
            ));
        }
        out
    }
}

impl std::fmt::Display for Certificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_optimal() {
            write!(
                f,
                "OPTIMAL: objective {:.6}, duality gap {:.3e}, worst primal \
                 violation {:.3e}",
                self.primal_objective, self.duality_gap, self.max_primal_violation
            )
        } else {
            write!(f, "NOT CERTIFIED: {}", self.failures().join("; "))
        }
    }
}

/// Per-chunk partial of the KKT row pass. `contrib` carries the
/// `y_i·a_ij` products to subtract from the reduced costs, pushed in row
/// order within the chunk; merging chunks in order therefore subtracts
/// each variable's contributions in global row order — the exact
/// floating-point sequence of the serial loop this pass replaces.
struct RowPartial {
    contrib: Vec<(usize, f64)>,
    max_primal: f64,
    max_sign: f64,
    max_slack: f64,
    dual_obj: f64,
}

/// Per-chunk partial of the column-side pass (bound feasibility, column
/// slackness, bound terms of the dual objective).
struct ColPartial {
    max_primal: f64,
    max_sign: f64,
    max_slack: f64,
    dual_obj: f64,
}

/// Verify `sol` against `model`, recomputing everything from scratch.
///
/// Fails with [`CertifyError`] only when the inputs are structurally
/// unusable (no duals, wrong arity); a *wrong* solution yields an `Ok`
/// certificate whose [`Certificate::is_optimal`] is false and whose
/// [`Certificate::failures`] explain why.
///
/// Equivalent to [`certify_with`] on a single-worker pool.
pub fn certify(model: &Model, sol: &Solution) -> Result<Certificate, CertifyError> {
    certify_with(Pool::serial(), model, sol)
}

/// [`certify`] with the KKT residual passes split across `pool`'s workers.
///
/// Determinism contract: the row and column passes are chunked by the
/// fixed [`ROW_CHUNK`]/[`COL_CHUNK`] sizes and their partials folded in
/// chunk order, so the certificate — every residual, every sum — is
/// bitwise identical at any pool width, including [`Pool::serial`].
pub fn certify_with(
    pool: Pool,
    model: &Model,
    sol: &Solution,
) -> Result<Certificate, CertifyError> {
    let n = model.num_vars();
    let m = model.num_constraints();
    let x = sol.values();
    let y = sol.duals();
    if x.len() != n {
        return Err(CertifyError::DimensionMismatch {
            expected: n,
            got: x.len(),
        });
    }
    if y.len() != m {
        return Err(CertifyError::MissingDuals {
            expected: m,
            got: y.len(),
        });
    }

    // Internal minimization sense (the duals' convention).
    let sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };

    // --- scales (serial: two cheap O(m+n) scans) ------------------------
    let primal_objective = model.objective_of(x);
    let p_int = sign * primal_objective;
    let objective_mismatch = (sol.objective() - primal_objective).abs();

    let mut max_rhs = 0.0f64;
    let mut max_cost = 0.0f64;
    for c in model.constraint_ids() {
        max_rhs = max_rhs.max(model.constraint_rhs(c).abs());
    }
    for v in model.var_ids() {
        max_cost = max_cost.max(model.var_obj(v).abs());
    }
    let primal_scale = 1.0 + max_rhs;
    let gap_scale = 1.0 + p_int.abs();
    let cost_scale = 1.0 + max_cost;

    let rows: Vec<ConstraintId> = model.constraint_ids().collect();
    let vars: Vec<VarId> = model.var_ids().collect();

    // --- row pass -------------------------------------------------------
    // Per chunk: primal residuals, dual sign violations, row slackness
    // products, the `bᵀy` share of the dual objective, and the reduced-cost
    // contributions to merge afterwards. Violation maxima are kept raw and
    // normalized once at the end (same value: division by a positive scale
    // commutes with max).
    let mut reduced: Vec<f64> = model.var_ids().map(|v| sign * model.var_obj(v)).collect();
    let row_pass = |_chunk: usize, _off: usize, ids: &[ConstraintId]| -> RowPartial {
        let mut part = RowPartial {
            contrib: Vec::new(),
            max_primal: 0.0,
            max_sign: 0.0,
            max_slack: 0.0,
            dual_obj: 0.0,
        };
        for &c in ids {
            let yi = y[c.index()];
            let mut lhs = 0.0;
            for (v, coef) in model.constraint_terms(c) {
                part.contrib.push((v.index(), yi * coef));
                lhs += coef * x[v.index()];
            }
            let rhs = model.constraint_rhs(c);
            // Sign condition per row type (internal minimize: Ge rows carry
            // y ≥ 0, Le rows y ≤ 0, Eq free), and the primal residual of
            // the same row (the row half of `Model::max_violation`).
            let (sign_violation, primal_violation) = match model.constraint_cmp(c) {
                Cmp::Ge => ((-yi).max(0.0), rhs - lhs),
                Cmp::Le => (yi.max(0.0), lhs - rhs),
                Cmp::Eq => (0.0, (lhs - rhs).abs()),
            };
            part.max_primal = part.max_primal.max(primal_violation);
            part.max_sign = part.max_sign.max(sign_violation);
            // Row complementary slackness: y_i · (a_iᵀx − b_i) ≈ 0.
            part.max_slack = part.max_slack.max((yi * (lhs - rhs)).abs());
            part.dual_obj += yi * rhs;
        }
        part
    };
    let mut max_primal_violation = 0.0f64;
    let mut max_dual_raw = 0.0f64;
    let mut max_slack_raw = 0.0f64;
    let mut dual_objective_int = 0.0f64;
    pool.par_chunk_fold(&rows, ROW_CHUNK, row_pass, (), |(), part| {
        for (j, yc) in part.contrib {
            reduced[j] -= yc;
        }
        max_primal_violation = max_primal_violation.max(part.max_primal);
        max_dual_raw = max_dual_raw.max(part.max_sign);
        max_slack_raw = max_slack_raw.max(part.max_slack);
        dual_objective_int += part.dual_obj;
    });

    // --- column pass ----------------------------------------------------
    // Needs the fully merged reduced costs, so it runs strictly after the
    // row fold. `reduced` is read-only from here on.
    let reduced = &reduced;
    let col_pass = |_chunk: usize, _off: usize, ids: &[VarId]| -> ColPartial {
        let mut part = ColPartial {
            max_primal: 0.0,
            max_sign: 0.0,
            max_slack: 0.0,
            dual_obj: 0.0,
        };
        for &v in ids {
            let d = reduced[v.index()];
            let (lb, ub) = model.var_bounds(v);
            let xv = x[v.index()];
            // Bound half of `Model::max_violation`.
            if lb.is_finite() {
                part.max_primal = part.max_primal.max(lb - xv);
            }
            if ub.is_finite() {
                part.max_primal = part.max_primal.max(xv - ub);
            }
            // Bound-side dual feasibility: a positive reduced cost needs a
            // finite lower bound to lean on, a negative one a finite upper.
            if lb == f64::NEG_INFINITY {
                part.max_sign = part.max_sign.max(d.max(0.0));
            }
            if ub == f64::INFINITY {
                part.max_sign = part.max_sign.max((-d).max(0.0));
            }
            // Column complementary slackness and the bound terms of the
            // dual objective. Products with an infinite bound are skipped:
            // their reduced-cost side is already charged as a dual
            // violation above.
            if d > 0.0 && lb.is_finite() {
                part.max_slack = part.max_slack.max((d * (xv - lb)).abs());
                part.dual_obj += d * lb;
            }
            if d < 0.0 && ub.is_finite() {
                part.max_slack = part.max_slack.max((d * (ub - xv)).abs());
                part.dual_obj += d * ub;
            }
        }
        part
    };
    pool.par_chunk_fold(&vars, COL_CHUNK, col_pass, (), |(), part| {
        max_primal_violation = max_primal_violation.max(part.max_primal);
        max_dual_raw = max_dual_raw.max(part.max_sign);
        max_slack_raw = max_slack_raw.max(part.max_slack);
        dual_objective_int += part.dual_obj;
    });

    Ok(Certificate {
        primal_objective,
        dual_objective: sign * dual_objective_int,
        duality_gap: (p_int - dual_objective_int).abs(),
        max_primal_violation,
        max_dual_violation: max_dual_raw / cost_scale,
        max_slackness_violation: max_slack_raw / gap_scale,
        objective_mismatch,
        primal_scale,
        gap_scale,
    })
}

/// One column of the full model that a restricted master excluded.
///
/// An excluded column is a variable held at value 0 (its lower bound): the
/// master simply never materialized it. `terms` are its coefficients in
/// the master's rows, by [`lips_lp::ConstraintId`]; rows it does not touch
/// contribute zero. `obj` is its objective coefficient in the model's own
/// sense.
#[derive(Debug, Clone)]
pub struct ExcludedColumn {
    /// Name of the would-be variable, for failure reporting only.
    pub name: String,
    pub obj: f64,
    pub terms: Vec<(lips_lp::ConstraintId, f64)>,
}

/// KKT certificate for a restricted master claimed optimal for its *full*
/// model: the master's own [`Certificate`] plus a pricing pass over every
/// excluded column.
///
/// Soundness: extend the master's optimal solution with zeros for the
/// excluded columns. Primal feasibility and complementary slackness carry
/// over unchanged (a zero column contributes nothing to any row and sits
/// on its lower bound), and the dual objective is unchanged (no `[d]⁺·lb`
/// term for `lb = 0`). The only new KKT condition is dual feasibility of
/// the excluded columns — reduced cost ≥ 0 within tolerance — which is
/// exactly what [`RestrictedCertificate::max_excluded_violation`] measures.
/// A master whose excluded columns were never priced to nonnegativity
/// therefore *cannot* pass [`RestrictedCertificate::is_optimal`].
#[derive(Debug, Clone)]
pub struct RestrictedCertificate {
    /// The master's own KKT report.
    pub master: Certificate,
    /// Worst negative reduced cost among excluded columns, normalized by
    /// `1 + max |cost|` over master and excluded columns (the same scale
    /// as the master's dual-feasibility test). 0 when nothing prices out.
    pub max_excluded_violation: f64,
    /// Name of the worst offending column (None when nothing prices out).
    pub worst_excluded: Option<String>,
    /// Number of excluded columns priced.
    pub excluded_priced: usize,
}

impl RestrictedCertificate {
    /// True when the master certifies *and* no excluded column prices out:
    /// the master's solution, zero-extended, is optimal for the full model.
    pub fn is_optimal(&self) -> bool {
        self.master.is_optimal() && self.max_excluded_violation <= FEAS_RTOL
    }

    /// Human-readable list of every failed condition.
    pub fn failures(&self) -> Vec<String> {
        let mut out = self.master.failures();
        if self.max_excluded_violation > FEAS_RTOL {
            out.push(format!(
                "excluded column {} prices out: normalized reduced cost -{:.3e} < -{FEAS_RTOL:.3e}",
                self.worst_excluded.as_deref().unwrap_or("?"),
                self.max_excluded_violation
            ));
        }
        out
    }
}

impl std::fmt::Display for RestrictedCertificate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_optimal() {
            write!(
                f,
                "OPTIMAL (full model): {} excluded columns priced, worst reduced-cost \
                 violation {:.3e}; master {}",
                self.excluded_priced, self.max_excluded_violation, self.master
            )
        } else {
            write!(f, "NOT CERTIFIED: {}", self.failures().join("; "))
        }
    }
}

/// Verify a restricted master against its full model without ever building
/// the full model: certify the master's solution as usual, then price every
/// excluded column against the master's duals.
///
/// A *wrong* claim (master not optimal, or an excluded column with negative
/// reduced cost) yields an `Ok` certificate whose
/// [`RestrictedCertificate::is_optimal`] is false; `Err` is reserved for
/// structurally unusable inputs, as with [`certify`].
pub fn certify_restricted(
    master: &Model,
    sol: &Solution,
    excluded: &[ExcludedColumn],
) -> Result<RestrictedCertificate, CertifyError> {
    certify_restricted_with(Pool::serial(), master, sol, excluded)
}

/// Per chunk: the worst normalized reduced-cost violation and the global
/// index of the column attaining it (first of ties), or the dimension
/// error for an out-of-range row reference.
type PriceResult = Result<(f64, Option<usize>), CertifyError>;

/// [`certify_restricted`] with the master's KKT passes *and* the
/// excluded-column re-pricing split across `pool`'s workers.
///
/// The pricing pass is chunked by [`COL_CHUNK`] and its per-chunk worst
/// offenders folded in chunk order with a strictly-greater comparison, so
/// ties resolve to the earliest column — exactly the serial loop's
/// first-of-ties behavior — and the certificate is bitwise identical at
/// any pool width.
pub fn certify_restricted_with(
    pool: Pool,
    master: &Model,
    sol: &Solution,
    excluded: &[ExcludedColumn],
) -> Result<RestrictedCertificate, CertifyError> {
    let cert = certify_with(pool, master, sol)?;
    let y = sol.duals();
    let sign = match master.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    // Same normalization as the master's dual-feasibility test, but the
    // scale must cover the excluded costs too (an excluded column can be
    // the dearest in the full model).
    let mut max_cost = 0.0f64;
    for v in master.var_ids() {
        max_cost = max_cost.max(master.var_obj(v).abs());
    }
    for col in excluded {
        max_cost = max_cost.max(col.obj.abs());
    }
    let cost_scale = 1.0 + max_cost;

    let price_chunk = |_chunk: usize, off: usize, cols: &[ExcludedColumn]| -> PriceResult {
        let mut worst = 0.0f64;
        let mut worst_idx = None;
        for (k, col) in cols.iter().enumerate() {
            let mut d = sign * col.obj;
            for &(c, coef) in &col.terms {
                let i = c.index();
                if i >= y.len() {
                    return Err(CertifyError::DimensionMismatch {
                        expected: master.num_constraints(),
                        got: i + 1,
                    });
                }
                d -= y[i] * coef;
            }
            let viol = (-d).max(0.0) / cost_scale;
            if viol > worst {
                worst = viol;
                worst_idx = Some(off + k);
            }
        }
        Ok((worst, worst_idx))
    };
    let folded = pool.par_chunk_fold(
        excluded,
        COL_CHUNK,
        price_chunk,
        Ok((0.0f64, None)),
        |acc: PriceResult, part| {
            // The first error in chunk order wins, matching the serial
            // loop's stop-at-first-bad-column behavior.
            let (worst, worst_idx) = acc?;
            let (p_worst, p_idx) = part?;
            if p_worst > worst {
                Ok((p_worst, p_idx))
            } else {
                Ok((worst, worst_idx))
            }
        },
    );
    let (worst, worst_idx) = folded?;
    Ok(RestrictedCertificate {
        master: cert,
        max_excluded_violation: worst,
        worst_excluded: worst_idx.map(|i| excluded[i].name.clone()),
        excluded_priced: excluded.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_lp::Model;

    /// min 2x + 3y  s.t.  x + y ≥ 4,  x ≤ 3,  x,y ∈ [0,10] → x=3, y=1, obj 9.
    fn sample() -> Model {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let y = m.add_var("y", 0.0, 10.0, 3.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Ge, 4.0);
        m.add_constraint([(x, 1.0)], Cmp::Le, 3.0);
        m
    }

    #[test]
    fn certifies_solver_output() {
        let m = sample();
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 9.0).abs() < 1e-9);
        assert!((cert.dual_objective - 9.0).abs() < 1e-6);
        assert!(cert.failures().is_empty());
    }

    #[test]
    fn certifies_maximization() {
        // max x + y  s.t.  2x + y ≤ 4,  x + 3y ≤ 6  → x=1.2, y=1.6, obj 2.8.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", 0.0, f64::INFINITY, 1.0);
        let y = m.add_var("y", 0.0, f64::INFINITY, 1.0);
        m.add_constraint([(x, 2.0), (y, 1.0)], Cmp::Le, 4.0);
        m.add_constraint([(x, 1.0), (y, 3.0)], Cmp::Le, 6.0);
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 2.8).abs() < 1e-6);
    }

    #[test]
    fn equality_rows_certify() {
        // min x + 2y  s.t.  x + y = 3,  y ≥ 1 → x=2, y=1, obj 4.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 1.0);
        let y = m.add_var("y", 0.0, 10.0, 2.0);
        m.add_constraint([(x, 1.0), (y, 1.0)], Cmp::Eq, 3.0);
        m.add_constraint([(y, 1.0)], Cmp::Ge, 1.0);
        let sol = m.solve().unwrap();
        let cert = certify(&m, &sol).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert!((cert.primal_objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_feasible_but_suboptimal_point() {
        let m = sample();
        let real = m.solve().unwrap();
        // Hand the verifier a feasible interior point (x=3, y=4, obj 18)
        // with the solver's duals: the gap must expose it.
        let fake = lips_lp::Solution::from_parts(18.0, vec![3.0, 4.0], real.duals().to_vec(), 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!(cert.duality_gap > 1.0);
        assert!(
            cert.failures().iter().any(|s| s.contains("duality gap")),
            "{cert}"
        );
    }

    #[test]
    fn rejects_infeasible_point() {
        let m = sample();
        let real = m.solve().unwrap();
        let fake = lips_lp::Solution::from_parts(0.0, vec![0.0, 0.0], real.duals().to_vec(), 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!(cert.max_primal_violation >= 4.0 - 1e-12);
    }

    #[test]
    fn rejects_sign_flipped_duals() {
        let m = sample();
        let real = m.solve().unwrap();
        let flipped: Vec<f64> = real.duals().iter().map(|d| -d).collect();
        let fake =
            lips_lp::Solution::from_parts(real.objective(), real.values().to_vec(), flipped, 0);
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal(), "{cert}");
        assert!(cert.max_dual_violation > 0.0 || cert.duality_gap > 1e-6);
    }

    #[test]
    fn rejects_lying_objective() {
        let m = sample();
        let real = m.solve().unwrap();
        let fake = lips_lp::Solution::from_parts(
            real.objective() - 5.0,
            real.values().to_vec(),
            real.duals().to_vec(),
            0,
        );
        let cert = certify(&m, &fake).unwrap();
        assert!(!cert.is_optimal());
        assert!((cert.objective_mismatch - 5.0).abs() < 1e-9);
    }

    #[test]
    fn missing_duals_is_an_error_not_a_pass() {
        let m = sample();
        let sol = m.solve_dense().unwrap(); // dense oracle: no duals
        match certify(&m, &sol) {
            Err(CertifyError::MissingDuals {
                expected: 2,
                got: 0,
            }) => {}
            other => panic!("expected MissingDuals, got {other:?}"),
        }
    }

    #[test]
    fn restricted_master_with_unpriced_improving_column_is_rejected() {
        // Master: min 2x s.t. x ≥ 4 → x=4, obj 8, y_demand = 2.
        // Excluded column z (cost 1, coefficient 1 in the demand row) has
        // reduced cost 1 − 2 = −1: the master is NOT optimal for the full
        // model and the certificate must say so, even though the master's
        // own KKT report is clean.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let demand = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "z".into(),
            obj: 1.0,
            terms: vec![(demand, 1.0)],
        }];
        let cert = certify_restricted(&m, &sol, &excluded).unwrap();
        assert!(cert.master.is_optimal(), "master alone certifies");
        assert!(!cert.is_optimal(), "{cert}");
        assert_eq!(cert.worst_excluded.as_deref(), Some("z"));
        assert_eq!(cert.excluded_priced, 1);
        assert!(
            cert.failures().iter().any(|s| s.contains("prices out")),
            "{cert}"
        );
    }

    #[test]
    fn restricted_master_with_dear_excluded_columns_certifies() {
        // Same master, but the excluded column costs more than the row's
        // marginal value (3 > 2): zero-extension is full-model optimal.
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        let demand = m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "z".into(),
            obj: 3.0,
            terms: vec![(demand, 1.0)],
        }];
        let cert = certify_restricted(&m, &sol, &excluded).unwrap();
        assert!(cert.is_optimal(), "{cert}");
        assert_eq!(cert.max_excluded_violation, 0.0);
        assert!(cert.worst_excluded.is_none());
        // And the full model agrees: appending z does not move the optimum.
        let mut full = m.clone();
        full.add_column("z", 0.0, 10.0, 3.0, [(demand, 1.0)]);
        assert!((full.solve().unwrap().objective() - sol.objective()).abs() < 1e-9);
    }

    #[test]
    fn restricted_rejects_out_of_range_rows() {
        let mut m = Model::minimize();
        let x = m.add_var("x", 0.0, 10.0, 2.0);
        m.add_constraint([(x, 1.0)], Cmp::Ge, 4.0);
        let sol = m.solve().unwrap();
        let excluded = vec![ExcludedColumn {
            name: "bad".into(),
            obj: 1.0,
            terms: vec![(lips_lp::ConstraintId::from_index(7), 1.0)],
        }];
        assert!(matches!(
            certify_restricted(&m, &sol, &excluded),
            Err(CertifyError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn empty_excluded_set_degrades_to_plain_certify() {
        let m = sample();
        let sol = m.solve().unwrap();
        let cert = certify_restricted(&m, &sol, &[]).unwrap();
        assert!(cert.is_optimal());
        assert_eq!(cert.excluded_priced, 0);
    }

    /// A master big enough to span several row/column chunks: `k` coupled
    /// covering rows over `3k` variables, solved to optimality.
    fn chunky_master(k: usize) -> (Model, Vec<ConstraintId>) {
        let mut m = Model::minimize();
        let vars: Vec<_> = (0..3 * k)
            .map(|j| {
                #[allow(clippy::cast_precision_loss)]
                let cost = 1.0 + (j % 17) as f64 * 0.25;
                m.add_var(format!("v{j}"), 0.0, 8.0, cost)
            })
            .collect();
        let rows: Vec<_> = (0..k)
            .map(|i| {
                let terms = [
                    (vars[3 * i], 1.0),
                    (vars[3 * i + 1], 1.0),
                    (vars[(3 * i + 5) % (3 * k)], 0.5),
                ];
                m.add_constraint(terms, Cmp::Ge, 2.0 + (i % 5) as f64)
            })
            .collect();
        (m, rows)
    }

    #[test]
    fn certificates_are_bitwise_identical_at_any_width() {
        // Enough rows/vars to split into several ROW_CHUNK/COL_CHUNK chunks,
        // so the parallel fold paths genuinely engage.
        let (m, rows) = chunky_master(200);
        let sol = m.solve().unwrap();
        let base = certify_with(Pool::serial(), &m, &sol).unwrap();
        assert!(base.is_optimal(), "{base}");
        // Excluded columns spanning several chunks, with a deliberate tie:
        // columns 100 and 700 have identical violations, so first-of-ties
        // selection is exercised across a chunk boundary.
        let excluded: Vec<ExcludedColumn> = (0..1200)
            .map(|i| ExcludedColumn {
                name: format!("x{i}"),
                obj: if i == 100 || i == 700 { 0.01 } else { 2.5 },
                terms: vec![(rows[i % rows.len()], 1.0)],
            })
            .collect();
        let rbase = certify_restricted_with(Pool::serial(), &m, &sol, &excluded).unwrap();
        for threads in [2, 3, 8] {
            let pool = Pool::new(threads);
            let cert = certify_with(pool, &m, &sol).unwrap();
            for (a, b) in [
                (base.primal_objective, cert.primal_objective),
                (base.dual_objective, cert.dual_objective),
                (base.duality_gap, cert.duality_gap),
                (base.max_primal_violation, cert.max_primal_violation),
                (base.max_dual_violation, cert.max_dual_violation),
                (base.max_slackness_violation, cert.max_slackness_violation),
                (base.objective_mismatch, cert.objective_mismatch),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
            }
            let rcert = certify_restricted_with(pool, &m, &sol, &excluded).unwrap();
            assert_eq!(
                rbase.max_excluded_violation.to_bits(),
                rcert.max_excluded_violation.to_bits(),
                "threads={threads}"
            );
            assert_eq!(
                rbase.worst_excluded, rcert.worst_excluded,
                "threads={threads}"
            );
        }
        // The tie resolved to the earlier column at every width.
        if rbase.max_excluded_violation > 0.0 {
            assert_eq!(rbase.worst_excluded.as_deref(), Some("x100"));
        }
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let m = sample();
        let fake = lips_lp::Solution::from_parts(0.0, vec![1.0], vec![0.0, 0.0], 0);
        assert!(matches!(
            certify(&m, &fake),
            Err(CertifyError::DimensionMismatch {
                expected: 2,
                got: 1
            })
        ));
    }
}
