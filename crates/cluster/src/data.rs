//! Data objects — the paper's set `D` (job input files, split into 64 MB
//! blocks on the distributed file system).

use serde::{Deserialize, Serialize};

use crate::store::StoreId;
use crate::BLOCK_MB;

/// Index of a data object within a cluster's data catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataId(pub usize);

/// A data object: a named blob with an original location `O_i`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataObject {
    pub id: DataId,
    pub name: String,
    /// `Size(D)` in MB.
    pub size_mb: f64,
    /// `O_i`: the store holding the object before any scheduling decision.
    pub origin: StoreId,
}

impl DataObject {
    pub fn new(id: usize, name: impl Into<String>, size_mb: f64, origin: StoreId) -> Self {
        assert!(size_mb >= 0.0, "data size must be nonnegative");
        DataObject {
            id: DataId(id),
            name: name.into(),
            size_mb,
            origin,
        }
    }

    /// Number of 64 MB blocks (rounded up; zero-sized objects have none).
    pub fn blocks(&self) -> u64 {
        (self.size_mb / BLOCK_MB).ceil() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_count_rounds_up() {
        assert_eq!(DataObject::new(0, "d", 0.0, StoreId(0)).blocks(), 0);
        assert_eq!(DataObject::new(0, "d", 64.0, StoreId(0)).blocks(), 1);
        assert_eq!(DataObject::new(0, "d", 65.0, StoreId(0)).blocks(), 2);
        assert_eq!(DataObject::new(0, "d", 10_240.0, StoreId(0)).blocks(), 160);
    }

    #[test]
    #[should_panic]
    fn negative_size_rejected() {
        DataObject::new(0, "d", -1.0, StoreId(0));
    }
}
