//! Explicit Table II matrices: `JD`, `JM`, `MS`, `SS`, `B` materialized as
//! arrays for inspection, export, and analytic tooling.
//!
//! The scheduler itself queries these quantities through [`Cluster`]
//! methods (never materializing `|M|·|S|` arrays on the hot path); this
//! module is the *presentation* of Table II: "determining matrices such as
//! M, S, and MS is a purely infrastructure issue and it is populated once
//! when the scheduler is setup."

use serde::{Deserialize, Serialize};

use crate::cluster::Cluster;
use crate::machine::MachineId;
use crate::store::StoreId;

/// Job-side inputs needed to derive the job-dependent matrices.
#[derive(Debug, Clone, Copy)]
pub struct MatrixJob {
    /// `CPU(J)` in ECU-seconds.
    pub cpu_ecu_sec: f64,
    /// Index of the data object the job accesses (`JD` row), if any.
    pub data: Option<usize>,
}

/// The materialized Table II matrices.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchedulingMatrices {
    /// `JD[k][i]` ∈ {0,1}: job `k` accesses data object `i`.
    pub jd: Vec<Vec<f64>>,
    /// `JM[k][l]` = `CPU(J_k) · CPU_Cost(M_l)` (dollars).
    pub jm: Vec<Vec<f64>>,
    /// `MS[l][m]`: dollars per MB between machine `l` and store `m`.
    pub ms: Vec<Vec<f64>>,
    /// `SS[i][j]`: dollars per MB between stores `i` and `j`.
    pub ss: Vec<Vec<f64>>,
    /// `B[l][m]`: MB/s between machine `l` and store `m`.
    pub b: Vec<Vec<f64>>,
}

impl SchedulingMatrices {
    /// Materialize all matrices for `cluster` and `jobs`. `n_data` sizes
    /// the `JD` columns (number of data objects).
    pub fn build(cluster: &Cluster, jobs: &[MatrixJob], n_data: usize) -> Self {
        let m = cluster.num_machines();
        let s = cluster.num_stores();
        let jd = jobs
            .iter()
            .map(|j| {
                let mut row = vec![0.0; n_data];
                if let Some(d) = j.data {
                    row[d] = 1.0;
                }
                row
            })
            .collect();
        let jm = jobs
            .iter()
            .map(|j| {
                (0..m)
                    .map(|l| j.cpu_ecu_sec * cluster.machine(MachineId(l)).cpu_cost)
                    .collect()
            })
            .collect();
        let ms = (0..m)
            .map(|l| {
                (0..s)
                    .map(|st| cluster.ms_cost(MachineId(l), StoreId(st)))
                    .collect()
            })
            .collect();
        let ss = (0..s)
            .map(|i| {
                (0..s)
                    .map(|j| cluster.ss_cost(StoreId(i), StoreId(j)))
                    .collect()
            })
            .collect();
        let b = (0..m)
            .map(|l| {
                (0..s)
                    .map(|st| cluster.bandwidth_machine_store(MachineId(l), StoreId(st)))
                    .collect()
            })
            .collect();
        SchedulingMatrices { jd, jm, ms, ss, b }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ec2_20_node;

    fn jobs() -> Vec<MatrixJob> {
        vec![
            MatrixJob {
                cpu_ecu_sec: 100.0,
                data: Some(0),
            },
            MatrixJob {
                cpu_ecu_sec: 50.0,
                data: None,
            },
        ]
    }

    #[test]
    fn shapes_match_cluster() {
        let c = ec2_20_node(0.5, 3600.0);
        let m = SchedulingMatrices::build(&c, &jobs(), 3);
        assert_eq!(m.jd.len(), 2);
        assert_eq!(m.jd[0].len(), 3);
        assert_eq!(m.jm.len(), 2);
        assert_eq!(m.jm[0].len(), 20);
        assert_eq!(m.ms.len(), 20);
        assert_eq!(m.ms[0].len(), 20);
        assert_eq!(m.ss.len(), 20);
        assert_eq!(m.b.len(), 20);
    }

    #[test]
    fn entries_agree_with_cluster_methods() {
        let c = ec2_20_node(0.5, 3600.0);
        let m = SchedulingMatrices::build(&c, &jobs(), 3);
        for l in 0..20 {
            for s in 0..20 {
                assert_eq!(m.ms[l][s], c.ms_cost(MachineId(l), StoreId(s)));
                assert_eq!(
                    m.b[l][s],
                    c.bandwidth_machine_store(MachineId(l), StoreId(s))
                );
            }
            assert_eq!(m.jm[0][l], 100.0 * c.machine(MachineId(l)).cpu_cost);
        }
        // JD marks exactly the accessed object.
        assert_eq!(m.jd[0], vec![1.0, 0.0, 0.0]);
        assert_eq!(m.jd[1], vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn ss_diagonal_zero_and_symmetric() {
        let c = ec2_20_node(0.25, 3600.0);
        let m = SchedulingMatrices::build(&c, &jobs(), 1);
        for i in 0..20 {
            assert_eq!(m.ss[i][i], 0.0);
            for j in 0..20 {
                assert_eq!(m.ss[i][j], m.ss[j][i]);
            }
        }
    }

    #[test]
    fn serializes_for_export() {
        let c = ec2_20_node(0.0, 3600.0);
        let m = SchedulingMatrices::build(&c, &jobs(), 2);
        let json = serde_json::to_string(&m).unwrap();
        assert!(json.contains("\"jm\""));
        let back: SchedulingMatrices = serde_json::from_str(&json).unwrap();
        assert_eq!(back.ms.len(), m.ms.len());
    }
}
