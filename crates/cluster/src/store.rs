//! Data stores — the paper's set `S` (HDFS DataNodes or remote stores).

use serde::{Deserialize, Serialize};

use crate::machine::MachineId;
use crate::zone::ZoneId;

/// Index of a data store within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct StoreId(pub usize);

/// A data store. Most stores are co-located with a machine (a DataNode on
/// the same VM); a store may also stand alone (an S3/EBS-like remote store).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Store {
    pub id: StoreId,
    pub name: String,
    pub zone: ZoneId,
    /// `Cap(S)`: capacity in MB.
    pub capacity_mb: f64,
    /// Machine this store shares a node with, if any. Reads from a
    /// co-located machine are "data-local" in Hadoop terms.
    pub colocated: Option<MachineId>,
}

impl Store {
    pub fn new(
        id: usize,
        name: impl Into<String>,
        zone: ZoneId,
        capacity_mb: f64,
        colocated: Option<MachineId>,
    ) -> Self {
        Store {
            id: StoreId(id),
            name: name.into(),
            zone,
            capacity_mb,
            colocated,
        }
    }

    /// Whether a read from `machine` is node-local.
    pub fn is_local_to(&self, machine: MachineId) -> bool {
        self.colocated == Some(machine)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn locality_check() {
        let s = Store::new(0, "dn0", ZoneId(0), 1000.0, Some(MachineId(3)));
        assert!(s.is_local_to(MachineId(3)));
        assert!(!s.is_local_to(MachineId(4)));
        let remote = Store::new(1, "s3", ZoneId(0), 1e9, None);
        assert!(!remote.is_local_to(MachineId(3)));
    }
}
