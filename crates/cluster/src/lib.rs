//! # lips-cluster — the heterogeneous cloud model
//!
//! Everything the LiPS scheduler needs to know about the world: computation
//! nodes `M`, data stores `S`, data objects `D`, availability zones, and the
//! price/bandwidth matrices of Table II of the paper (`JM`, `MS`, `SS`,
//! `B`).
//!
//! ## Units
//!
//! The crate uses a single consistent unit system, matching how the paper
//! breaks Amazon's pricing down:
//!
//! * **data**: megabytes (`f64`); the HDFS block size is
//!   [`BLOCK_MB`] = 64 MB.
//! * **compute**: EC2-Compute-Unit-seconds ("ECU-seconds"). A machine's
//!   throughput `TP(M)` is in ECUs (ECU-seconds per wall-clock second);
//!   a job's intensity `TCP` is in ECU-seconds per MB of input.
//! * **money**: dollars (`f64`); 1 millicent = [`MILLICENT`] dollars. CPU
//!   prices are dollars per ECU-second, transfer prices dollars per MB.
//! * **time**: seconds (`f64`).
//!
//! ```
//! use lips_cluster::{ec2_20_node, MachineId, StoreId};
//!
//! let cluster = ec2_20_node(0.5, 3600.0); // 20 nodes, half c1.medium
//! assert_eq!(cluster.num_machines(), 20);
//! // Node-local reads are free; cross-zone reads pay $0.01/GB.
//! assert_eq!(cluster.ms_cost(MachineId(0), StoreId(0)), 0.0);
//! assert!(cluster.min_cpu_cost() < cluster.max_cpu_cost());
//! ```

pub mod builder;
pub mod cluster;
pub mod data;
pub mod instance;
pub mod machine;
pub mod matrices;
pub mod store;
pub mod zone;

pub use builder::{
    ec2_100_node, ec2_20_node, ec2_mixed_cluster, random_cluster, ClusterBuilder, RandomClusterCfg,
};
pub use cluster::Cluster;
pub use cluster::CostOverrides;
pub use data::{DataId, DataObject};
pub use instance::InstanceType;
pub use machine::{Machine, MachineId};
pub use matrices::{MatrixJob, SchedulingMatrices};
pub use store::{Store, StoreId};
pub use zone::{NetworkPolicy, Zone, ZoneId};

/// HDFS block size in MB (Hadoop 0.20 default used throughout the paper).
pub const BLOCK_MB: f64 = 64.0;

/// One millicent in dollars ($0.00001).
pub const MILLICENT: f64 = 1e-5;

/// Dollars per MB for data crossing availability zones: the paper's
/// "$0.01 per GB (62.5 millicent per 64 MB block)".
pub const CROSS_ZONE_DOLLARS_PER_MB: f64 = 0.01 / 1024.0;

/// Intra-zone bandwidth in MB/s (500 Mbps).
pub const INTRA_ZONE_MBPS: f64 = 500.0 / 8.0;

/// Cross-zone bandwidth in MB/s (250 Mbps).
pub const CROSS_ZONE_MBPS: f64 = 250.0 / 8.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_zone_price_matches_paper_block_figure() {
        // Paper: 62.5 millicents per 64 MB block.
        let per_block = CROSS_ZONE_DOLLARS_PER_MB * BLOCK_MB;
        assert!((per_block - 62.5 * MILLICENT).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_constants_are_mbytes() {
        assert!((INTRA_ZONE_MBPS - 62.5).abs() < 1e-12);
        assert!((CROSS_ZONE_MBPS - 31.25).abs() < 1e-12);
    }
}
