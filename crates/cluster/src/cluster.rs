//! The assembled cluster: machines + stores + zones + data catalog, and the
//! derived cost/bandwidth matrices of Table II.

use serde::{Deserialize, Serialize};

use crate::data::{DataId, DataObject};
use crate::machine::{Machine, MachineId};
use crate::store::{Store, StoreId};
use crate::zone::{NetworkPolicy, Zone};

/// Explicit per-pair transfer prices that override the zone-based network
/// policy. The Fig 5 simulations draw "data transfer cost between two
/// nodes" uniformly at random, which no zone policy can express.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CostOverrides {
    /// Dollars per MB between machine `l` and store `m` (`|M| × |S|`).
    pub ms_dollars_per_mb: Vec<Vec<f64>>,
    /// Dollars per MB between stores `i` and `j` (`|S| × |S|`).
    pub ss_dollars_per_mb: Vec<Vec<f64>>,
}

/// A fully described cluster. Construction goes through
/// [`crate::builder::ClusterBuilder`]; this type is read-only afterwards —
/// runtime state (where blocks currently live, what is running) belongs to
/// the simulator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cluster {
    pub zones: Vec<Zone>,
    pub machines: Vec<Machine>,
    pub stores: Vec<Store>,
    pub data: Vec<DataObject>,
    pub network: NetworkPolicy,
    /// When set, transfer prices come from these matrices instead of the
    /// zone policy (bandwidths stay zone-based).
    pub overrides: Option<CostOverrides>,
}

impl Cluster {
    pub fn machine(&self, id: MachineId) -> &Machine {
        &self.machines[id.0]
    }

    pub fn store(&self, id: StoreId) -> &Store {
        &self.stores[id.0]
    }

    pub fn data_object(&self, id: DataId) -> &DataObject {
        &self.data[id.0]
    }

    pub fn num_machines(&self) -> usize {
        self.machines.len()
    }

    pub fn num_stores(&self) -> usize {
        self.stores.len()
    }

    pub fn num_data(&self) -> usize {
        self.data.len()
    }

    /// `MS_lm`: dollars per MB moved between machine `l` and store `m`
    /// during execution. Node-local and intra-zone reads are free in the
    /// EC2 model; cross-zone reads pay the provider's transfer price.
    pub fn ms_cost(&self, l: MachineId, m: StoreId) -> f64 {
        if let Some(ov) = &self.overrides {
            return ov.ms_dollars_per_mb[l.0][m.0];
        }
        let store = self.store(m);
        if store.is_local_to(l) {
            return 0.0;
        }
        self.network
            .dollars_per_mb(self.machine(l).zone, store.zone)
    }

    /// `SS_ij`: dollars per MB moved between two stores (data placement).
    pub fn ss_cost(&self, i: StoreId, j: StoreId) -> f64 {
        if i == j {
            return 0.0;
        }
        if let Some(ov) = &self.overrides {
            return ov.ss_dollars_per_mb[i.0][j.0];
        }
        self.network
            .dollars_per_mb(self.store(i).zone, self.store(j).zone)
    }

    /// `B_lm` variant for execution reads: MB/s between machine `l` and
    /// store `m`.
    pub fn bandwidth_machine_store(&self, l: MachineId, m: StoreId) -> f64 {
        let store = self.store(m);
        if store.is_local_to(l) {
            return self.network.local_mbps;
        }
        self.network.bandwidth(self.machine(l).zone, store.zone)
    }

    /// `B_ij` variant for placement moves: MB/s between two stores.
    pub fn bandwidth_store_store(&self, i: StoreId, j: StoreId) -> f64 {
        if i == j {
            return self.network.local_mbps;
        }
        self.network
            .bandwidth(self.store(i).zone, self.store(j).zone)
    }

    /// Hadoop locality level of a (machine, store) pair, used by the greedy
    /// baselines: 0 = node-local, 1 = zone-local ("rack"), 2 = remote.
    pub fn locality_level(&self, l: MachineId, m: StoreId) -> u8 {
        let store = self.store(m);
        if store.is_local_to(l) {
            0
        } else if store.zone == self.machine(l).zone {
            1
        } else {
            2
        }
    }

    /// The store co-located with a machine, if any.
    pub fn store_of_machine(&self, l: MachineId) -> Option<StoreId> {
        self.stores
            .iter()
            .find(|s| s.colocated == Some(l))
            .map(|s| s.id)
    }

    /// Total cluster CPU throughput in ECU.
    pub fn total_ecu(&self) -> f64 {
        self.machines.iter().map(|m| m.tp_ecu).sum()
    }

    /// Cheapest CPU price across machines (dollars per ECU-second).
    pub fn min_cpu_cost(&self) -> f64 {
        self.machines
            .iter()
            .map(|m| m.cpu_cost)
            .fold(f64::INFINITY, f64::min)
    }

    /// Most expensive CPU price across machines.
    pub fn max_cpu_cost(&self) -> f64 {
        self.machines.iter().map(|m| m.cpu_cost).fold(0.0, f64::max)
    }

    /// Structural sanity checks (ids consecutive, references valid); used
    /// by builders and property tests.
    pub fn validate(&self) -> Result<(), String> {
        for (i, m) in self.machines.iter().enumerate() {
            if m.id.0 != i {
                return Err(format!("machine {i} has id {:?}", m.id));
            }
            if m.zone.0 >= self.zones.len() {
                return Err(format!("machine {i} references zone {:?}", m.zone));
            }
            if m.tp_ecu <= 0.0 || m.slots == 0 {
                return Err(format!("machine {i} has no capacity"));
            }
            if m.cpu_cost < 0.0 {
                return Err(format!("machine {i} has negative price"));
            }
        }
        for (i, s) in self.stores.iter().enumerate() {
            if s.id.0 != i {
                return Err(format!("store {i} has id {:?}", s.id));
            }
            if s.zone.0 >= self.zones.len() {
                return Err(format!("store {i} references zone {:?}", s.zone));
            }
            if let Some(mid) = s.colocated {
                if mid.0 >= self.machines.len() {
                    return Err(format!("store {i} colocated with missing machine"));
                }
                if self.machines[mid.0].zone != s.zone {
                    return Err(format!("store {i} zone differs from its machine"));
                }
            }
            if s.capacity_mb < 0.0 {
                return Err(format!("store {i} has negative capacity"));
            }
        }
        for (i, d) in self.data.iter().enumerate() {
            if d.id.0 != i {
                return Err(format!("data {i} has id {:?}", d.id));
            }
            if d.origin.0 >= self.stores.len() {
                return Err(format!("data {i} originates at missing store"));
            }
        }
        if let Some(ov) = &self.overrides {
            let (m, s) = (self.machines.len(), self.stores.len());
            if ov.ms_dollars_per_mb.len() != m || ov.ms_dollars_per_mb.iter().any(|r| r.len() != s)
            {
                return Err("override MS matrix has wrong shape".into());
            }
            if ov.ss_dollars_per_mb.len() != s || ov.ss_dollars_per_mb.iter().any(|r| r.len() != s)
            {
                return Err("override SS matrix has wrong shape".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::InstanceType;
    use crate::zone::ZoneId;

    fn tiny() -> Cluster {
        // 2 zones, 2 machines (one per zone) each with a co-located store,
        // plus one standalone store in zone 0; one data object.
        let zones = vec![Zone::new(0, "a"), Zone::new(1, "b")];
        let machines = vec![
            Machine::from_instance(0, "m0", ZoneId(0), InstanceType::M1_MEDIUM, 0.5, 3600.0),
            Machine::from_instance(1, "m1", ZoneId(1), InstanceType::C1_MEDIUM, 0.5, 3600.0),
        ];
        let stores = vec![
            Store::new(0, "s0", ZoneId(0), 1e6, Some(MachineId(0))),
            Store::new(1, "s1", ZoneId(1), 1e6, Some(MachineId(1))),
            Store::new(2, "s2", ZoneId(0), 1e6, None),
        ];
        let data = vec![DataObject::new(0, "d0", 640.0, StoreId(0))];
        Cluster {
            zones,
            machines,
            stores,
            data,
            network: Default::default(),
            overrides: None,
        }
    }

    #[test]
    fn validates() {
        tiny().validate().unwrap();
    }

    #[test]
    fn ms_cost_free_local_and_intra_zone_paid_cross_zone() {
        let c = tiny();
        assert_eq!(c.ms_cost(MachineId(0), StoreId(0)), 0.0); // node-local
        assert_eq!(c.ms_cost(MachineId(0), StoreId(2)), 0.0); // intra-zone
        assert!(c.ms_cost(MachineId(0), StoreId(1)) > 0.0); // cross-zone
    }

    #[test]
    fn ss_cost_symmetric_zero_on_diagonal() {
        let c = tiny();
        assert_eq!(c.ss_cost(StoreId(0), StoreId(0)), 0.0);
        assert_eq!(
            c.ss_cost(StoreId(0), StoreId(1)),
            c.ss_cost(StoreId(1), StoreId(0))
        );
        assert_eq!(c.ss_cost(StoreId(0), StoreId(2)), 0.0); // same zone
    }

    #[test]
    fn bandwidth_tiers() {
        let c = tiny();
        let local = c.bandwidth_machine_store(MachineId(0), StoreId(0));
        let zone = c.bandwidth_machine_store(MachineId(0), StoreId(2));
        let cross = c.bandwidth_machine_store(MachineId(0), StoreId(1));
        assert!(local > zone, "{local} {zone}");
        assert!(zone > cross, "{zone} {cross}");
    }

    #[test]
    fn locality_levels() {
        let c = tiny();
        assert_eq!(c.locality_level(MachineId(0), StoreId(0)), 0);
        assert_eq!(c.locality_level(MachineId(0), StoreId(2)), 1);
        assert_eq!(c.locality_level(MachineId(0), StoreId(1)), 2);
    }

    #[test]
    fn store_of_machine_roundtrip() {
        let c = tiny();
        assert_eq!(c.store_of_machine(MachineId(0)), Some(StoreId(0)));
        assert_eq!(c.store_of_machine(MachineId(1)), Some(StoreId(1)));
    }

    #[test]
    fn aggregates() {
        let c = tiny();
        assert!((c.total_ecu() - 7.0).abs() < 1e-12); // 2 + 5
        assert!(c.min_cpu_cost() < c.max_cpu_cost());
    }

    #[test]
    fn validate_rejects_cross_zone_colocation() {
        let mut c = tiny();
        c.stores[0].zone = ZoneId(1); // machine 0 is in zone 0
        assert!(c.validate().is_err());
    }
}
