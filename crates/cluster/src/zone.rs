//! Availability zones and the inter-zone network policy.

use serde::{Deserialize, Serialize};

use crate::{CROSS_ZONE_DOLLARS_PER_MB, CROSS_ZONE_MBPS, INTRA_ZONE_MBPS};

/// Index of an availability zone within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ZoneId(pub usize);

/// An availability zone (e.g. `us-east-1a`).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    pub id: ZoneId,
    pub name: String,
}

impl Zone {
    pub fn new(id: usize, name: impl Into<String>) -> Self {
        Zone {
            id: ZoneId(id),
            name: name.into(),
        }
    }
}

/// Network policy between zones: bandwidth and per-MB transfer price.
///
/// Default models the paper's EC2 setup: 500 Mbps within a zone at no
/// charge, 250 Mbps across zones at $0.01/GB.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NetworkPolicy {
    /// MB/s between endpoints in the same zone.
    pub intra_zone_mbps: f64,
    /// MB/s between endpoints in different zones.
    pub cross_zone_mbps: f64,
    /// Dollars per MB within a zone.
    pub intra_zone_dollars_per_mb: f64,
    /// Dollars per MB across zones.
    pub cross_zone_dollars_per_mb: f64,
    /// Bandwidth between two co-located endpoints (same physical node):
    /// effectively local-disk speed.
    pub local_mbps: f64,
}

impl Default for NetworkPolicy {
    fn default() -> Self {
        NetworkPolicy {
            intra_zone_mbps: INTRA_ZONE_MBPS,
            cross_zone_mbps: CROSS_ZONE_MBPS,
            intra_zone_dollars_per_mb: 0.0,
            cross_zone_dollars_per_mb: CROSS_ZONE_DOLLARS_PER_MB,
            local_mbps: 400.0,
        }
    }
}

impl NetworkPolicy {
    /// Bandwidth in MB/s between two zones (`local` when the endpoints are
    /// the same physical node — handled by the cluster, not here).
    pub fn bandwidth(&self, a: ZoneId, b: ZoneId) -> f64 {
        if a == b {
            self.intra_zone_mbps
        } else {
            self.cross_zone_mbps
        }
    }

    /// Transfer price in dollars per MB between two zones.
    pub fn dollars_per_mb(&self, a: ZoneId, b: ZoneId) -> f64 {
        if a == b {
            self.intra_zone_dollars_per_mb
        } else {
            self.cross_zone_dollars_per_mb
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_matches_paper() {
        let p = NetworkPolicy::default();
        let (a, b) = (ZoneId(0), ZoneId(1));
        assert_eq!(p.bandwidth(a, a), INTRA_ZONE_MBPS);
        assert_eq!(p.bandwidth(a, b), CROSS_ZONE_MBPS);
        assert_eq!(p.dollars_per_mb(a, a), 0.0);
        assert!(p.dollars_per_mb(a, b) > 0.0);
    }

    #[test]
    fn zone_construction() {
        let z = Zone::new(2, "us-east-1c");
        assert_eq!(z.id, ZoneId(2));
        assert_eq!(z.name, "us-east-1c");
    }
}
