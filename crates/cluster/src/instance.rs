//! Amazon EC2 instance catalog — Table III of the paper.
//!
//! The paper prices CPU by the *EC2-Compute-Unit-second* ("one ECU provides
//! the equivalent CPU capacity of a 1.0–1.2 GHz 2007 Opteron"), breaking
//! Amazon's per-hour charges down so heterogeneous nodes can be compared.
//! The derived millicent-per-ECU-second figures below are Table III's own
//! numbers; the headline ratio — c1.medium is 4–5× *cheaper* per ECU-second
//! than m1.medium while being 2.5× faster — is what creates LiPS's savings
//! opportunity.

use serde::{Deserialize, Error, Serialize, Value};

use crate::MILLICENT;

/// An EC2 instance type as modeled by Table III.
///
/// Values are always catalog entries, so serde encodes an instance by its
/// Amazon name and looks the catalog back up on deserialization.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstanceType {
    /// Amazon name, e.g. `"c1.medium"`.
    pub name: &'static str,
    /// Virtual CPU count.
    pub vcpus: u32,
    /// EC2 compute units: total CPU throughput in ECU (ECU-seconds of work
    /// per wall-clock second).
    pub ecu: f64,
    /// Memory in GB (modeled for completeness; the LP does not use it).
    pub mem_gb: f64,
    /// Local storage in GB; becomes the co-located data store's capacity.
    pub storage_gb: f64,
    /// Hourly price range in dollars (low, high).
    pub price_per_hour: (f64, f64),
    /// Price range in millicents per ECU-second, as derived in Table III.
    pub millicent_per_ecu_sec: (f64, f64),
    /// Concurrent map slots a TaskTracker on this instance runs.
    pub map_slots: u32,
}

impl InstanceType {
    /// `m1.small`: 1 vCPU / 1 ECU, $0.08–0.12 per hour.
    pub const M1_SMALL: InstanceType = InstanceType {
        name: "m1.small",
        vcpus: 1,
        ecu: 1.0,
        mem_gb: 1.7,
        storage_gb: 160.0,
        price_per_hour: (0.08, 0.12),
        millicent_per_ecu_sec: (2.22, 3.33),
        map_slots: 1,
    };

    /// `m1.medium`: 1 vCPU / 2 ECU, $0.13–0.23 per hour. Table III derives
    /// 4.44–6.39 millicent per ECU-second — the expensive-cycles node.
    pub const M1_MEDIUM: InstanceType = InstanceType {
        name: "m1.medium",
        vcpus: 1,
        ecu: 2.0,
        mem_gb: 3.75,
        storage_gb: 410.0,
        price_per_hour: (0.13, 0.23),
        millicent_per_ecu_sec: (4.44, 6.39),
        map_slots: 1,
    };

    /// `c1.medium`: 2 vCPU / 5 ECU, $0.17–0.23 per hour; 0.92–1.28
    /// millicent per ECU-second — 4–5× cheaper cycles than m1.medium.
    pub const C1_MEDIUM: InstanceType = InstanceType {
        name: "c1.medium",
        vcpus: 2,
        ecu: 5.0,
        mem_gb: 1.7,
        storage_gb: 350.0,
        price_per_hour: (0.17, 0.23),
        millicent_per_ecu_sec: (0.92, 1.28),
        map_slots: 2,
    };

    /// All catalog entries, in Table III order.
    pub const CATALOG: [InstanceType; 3] = [Self::M1_SMALL, Self::M1_MEDIUM, Self::C1_MEDIUM];

    /// Midpoint CPU price in dollars per ECU-second (`CPU_Cost(M)` in the
    /// paper's notation).
    pub fn cpu_cost_dollars(&self) -> f64 {
        let (lo, hi) = self.millicent_per_ecu_sec;
        (lo + hi) / 2.0 * MILLICENT
    }

    /// CPU price at a point within the published range; `t` in \[0,1\] picks
    /// between the low and high figure (used to model spot-like diversity).
    pub fn cpu_cost_dollars_at(&self, t: f64) -> f64 {
        let (lo, hi) = self.millicent_per_ecu_sec;
        (lo + t.clamp(0.0, 1.0) * (hi - lo)) * MILLICENT
    }

    /// Find a catalog entry by name.
    pub fn by_name(name: &str) -> Option<InstanceType> {
        Self::CATALOG.into_iter().find(|i| i.name == name)
    }
}

impl Serialize for InstanceType {
    fn to_value(&self) -> Value {
        Value::Str(self.name.to_string())
    }
}

impl Deserialize for InstanceType {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let name = String::from_value(value)?;
        InstanceType::by_name(&name)
            .ok_or_else(|| Error::custom(format!("unknown instance type {name:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_lookup() {
        assert_eq!(
            InstanceType::by_name("c1.medium"),
            Some(InstanceType::C1_MEDIUM)
        );
        assert_eq!(InstanceType::by_name("x9.metal"), None);
    }

    #[test]
    fn c1_medium_is_4_to_5x_cheaper_per_ecu_sec_than_m1_medium() {
        // The central Table III observation.
        let ratio =
            InstanceType::M1_MEDIUM.cpu_cost_dollars() / InstanceType::C1_MEDIUM.cpu_cost_dollars();
        assert!((4.0..=5.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn c1_medium_has_2_5x_cpu_of_m1_medium() {
        assert!((InstanceType::C1_MEDIUM.ecu / InstanceType::M1_MEDIUM.ecu - 2.5).abs() < 1e-12);
    }

    #[test]
    fn derived_prices_are_inside_hourly_range_for_c1() {
        // Sanity of Table III's own derivation for c1.medium:
        // $0.17/hr ÷ 5 ECU ÷ 3600 s ≈ 0.94 millicent/ECU-s.
        let i = InstanceType::C1_MEDIUM;
        let derived_low = i.price_per_hour.0 / i.ecu / 3600.0 / MILLICENT;
        assert!((derived_low - i.millicent_per_ecu_sec.0).abs() < 0.05);
    }

    #[test]
    fn cost_at_interpolates_and_clamps() {
        let i = InstanceType::M1_SMALL;
        assert!((i.cpu_cost_dollars_at(0.0) - 2.22 * MILLICENT).abs() < 1e-12);
        assert!((i.cpu_cost_dollars_at(1.0) - 3.33 * MILLICENT).abs() < 1e-12);
        assert_eq!(i.cpu_cost_dollars_at(-3.0), i.cpu_cost_dollars_at(0.0));
        assert_eq!(i.cpu_cost_dollars_at(9.0), i.cpu_cost_dollars_at(1.0));
        let mid = i.cpu_cost_dollars();
        assert!((i.cpu_cost_dollars_at(0.5) - mid).abs() < 1e-15);
    }
}
