//! Cluster construction: a general builder plus the paper's testbeds.
//!
//! * [`ec2_20_node`] — the Figure 6/7/8 testbed: 20 nodes across three
//!   zones, a tunable fraction of them c1.medium (the rest m1.medium).
//! * [`ec2_100_node`] — the Figure 9/10 testbed: 100 nodes, three zones,
//!   three instance types.
//! * [`random_cluster`] — the Figure 5 simulation world with uniformly
//!   random CPU prices and per-pair transfer prices.

#![allow(clippy::needless_range_loop)] // symmetric-matrix fill

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::cluster::{Cluster, CostOverrides};
use crate::data::DataObject;
use crate::instance::InstanceType;
use crate::machine::{Machine, MachineId};
use crate::store::{Store, StoreId};
use crate::zone::{NetworkPolicy, Zone, ZoneId};
use crate::MILLICENT;

/// Incremental cluster builder. Machines added through
/// [`ClusterBuilder::add_machine`] automatically get a co-located data
/// store sized from the instance's local storage.
#[derive(Debug, Default)]
pub struct ClusterBuilder {
    zones: Vec<Zone>,
    machines: Vec<Machine>,
    stores: Vec<Store>,
    data: Vec<DataObject>,
    network: NetworkPolicy,
    overrides: Option<CostOverrides>,
}

impl ClusterBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an availability zone; returns its id.
    pub fn add_zone(&mut self, name: impl Into<String>) -> ZoneId {
        let id = ZoneId(self.zones.len());
        self.zones.push(Zone::new(id.0, name));
        id
    }

    /// Add a machine of `instance` type in `zone` with a co-located store.
    /// `price_t` in \[0,1\] positions the node inside the instance's published
    /// price range (models the hourly price diversity the paper observed).
    pub fn add_machine(
        &mut self,
        zone: ZoneId,
        instance: InstanceType,
        price_t: f64,
        uptime: f64,
    ) -> MachineId {
        let mid = MachineId(self.machines.len());
        let name = format!("{}-{}", instance.name, mid.0);
        self.machines.push(Machine::from_instance(
            mid.0, name, zone, instance, price_t, uptime,
        ));
        let sid = StoreId(self.stores.len());
        self.stores.push(Store::new(
            sid.0,
            format!("dn-{}", mid.0),
            zone,
            instance.storage_gb * 1024.0,
            Some(mid),
        ));
        mid
    }

    /// Add a standalone (not co-located) store.
    pub fn add_store(&mut self, zone: ZoneId, capacity_mb: f64) -> StoreId {
        let sid = StoreId(self.stores.len());
        self.stores.push(Store::new(
            sid.0,
            format!("store-{}", sid.0),
            zone,
            capacity_mb,
            None,
        ));
        sid
    }

    /// Register a data object originating at `origin`.
    pub fn add_data(
        &mut self,
        name: impl Into<String>,
        size_mb: f64,
        origin: StoreId,
    ) -> DataObject {
        let d = DataObject::new(self.data.len(), name, size_mb, origin);
        self.data.push(d.clone());
        d
    }

    /// Replace the network policy (defaults to the paper's EC2 model).
    pub fn network(&mut self, network: NetworkPolicy) -> &mut Self {
        self.network = network;
        self
    }

    /// Install explicit transfer-price matrices.
    pub fn overrides(&mut self, overrides: CostOverrides) -> &mut Self {
        self.overrides = Some(overrides);
        self
    }

    /// Finalize; panics if the assembled cluster is structurally invalid
    /// (builder misuse is a programming error, not an input error).
    pub fn build(self) -> Cluster {
        let c = Cluster {
            zones: self.zones,
            machines: self.machines,
            stores: self.stores,
            data: self.data,
            network: self.network,
            overrides: self.overrides,
        };
        c.validate().expect("builder produced invalid cluster");
        c
    }
}

/// The three-zone layout every EC2 testbed in the paper uses.
fn three_zones(b: &mut ClusterBuilder) -> [ZoneId; 3] {
    [
        b.add_zone("us-east-1a"),
        b.add_zone("us-east-1b"),
        b.add_zone("us-east-1c"),
    ]
}

/// The 20-node Figure 6 testbed. `c1_fraction` of the nodes are c1.medium
/// (cheap fast cycles), the rest m1.medium; nodes round-robin across three
/// zones. `uptime` bounds the offline model's capacity per node.
///
/// Setting (i) of Fig 6 is `c1_fraction = 0.0`, setting (ii) ≈ `0.25`,
/// setting (iii) = `0.5`.
pub fn ec2_20_node(c1_fraction: f64, uptime: f64) -> Cluster {
    ec2_mixed_cluster(20, c1_fraction, uptime, 7)
}

/// A generalized Fig 6-style cluster of `n` nodes.
pub fn ec2_mixed_cluster(n: usize, c1_fraction: f64, uptime: f64, seed: u64) -> Cluster {
    let mut b = ClusterBuilder::new();
    let zones = three_zones(&mut b);
    let n_c1 = (n as f64 * c1_fraction).round() as usize;
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..n {
        let inst = if i < n_c1 {
            InstanceType::C1_MEDIUM
        } else {
            InstanceType::M1_MEDIUM
        };
        // Price diversity within the published hourly range.
        let t = rng.gen_range(0.0..1.0);
        b.add_machine(zones[i % 3], inst, t, uptime);
    }
    b.build()
}

/// The 100-node Figure 9 testbed: three zones, one third each of m1.small,
/// m1.medium and c1.medium.
pub fn ec2_100_node(uptime: f64, seed: u64) -> Cluster {
    let mut b = ClusterBuilder::new();
    let zones = three_zones(&mut b);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for i in 0..100 {
        let inst = match i % 3 {
            0 => InstanceType::M1_SMALL,
            1 => InstanceType::M1_MEDIUM,
            _ => InstanceType::C1_MEDIUM,
        };
        let t = rng.gen_range(0.0..1.0);
        b.add_machine(zones[i % 3], inst, t, uptime);
    }
    b.build()
}

/// Parameters for [`random_cluster`], defaulting to the Figure 5 ranges:
/// "CPU second cost range: 0–5 millicent; range of data transfer cost
/// between two nodes: 0–60 millicent per 64 MB".
#[derive(Debug, Clone)]
pub struct RandomClusterCfg {
    pub machines: usize,
    pub stores: usize,
    /// CPU price range in millicents per ECU-second.
    pub cpu_millicent: (f64, f64),
    /// Transfer price range in millicents per 64 MB block.
    pub transfer_millicent_per_block: (f64, f64),
    /// Machine throughput range in ECU.
    pub tp_ecu: (f64, f64),
    pub uptime: f64,
}

impl Default for RandomClusterCfg {
    fn default() -> Self {
        RandomClusterCfg {
            machines: 10,
            stores: 10,
            cpu_millicent: (0.0, 5.0),
            transfer_millicent_per_block: (0.0, 60.0),
            tp_ecu: (1.0, 5.0),
            uptime: 3600.0,
        }
    }
}

/// A fully random cluster per the Figure 5 simulation: every machine gets a
/// co-located store (extra standalone stores are added if `stores >
/// machines`), CPU prices and pairwise transfer prices drawn uniformly.
pub fn random_cluster(cfg: &RandomClusterCfg, seed: u64) -> Cluster {
    assert!(
        cfg.stores >= cfg.machines,
        "need at least one store per machine"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut b = ClusterBuilder::new();
    let zone = b.add_zone("sim");
    for i in 0..cfg.machines {
        let mid = b.add_machine(zone, InstanceType::M1_SMALL, 0.0, cfg.uptime);
        debug_assert_eq!(mid.0, i);
    }
    for _ in cfg.machines..cfg.stores {
        b.add_store(zone, 1e9);
    }
    // Randomize the machine hardware beyond the placeholder instance type.
    for m in &mut b.machines {
        m.tp_ecu = rng.gen_range(cfg.tp_ecu.0..=cfg.tp_ecu.1);
        m.cpu_cost = rng.gen_range(cfg.cpu_millicent.0..=cfg.cpu_millicent.1) * MILLICENT;
    }
    // Pairwise transfer prices (symmetric, zero diagonal for stores).
    let per_mb = |rng: &mut ChaCha8Rng| {
        rng.gen_range(cfg.transfer_millicent_per_block.0..=cfg.transfer_millicent_per_block.1)
            * MILLICENT
            / crate::BLOCK_MB
    };
    let s = cfg.stores;
    let mut ss = vec![vec![0.0; s]; s];
    for i in 0..s {
        for j in (i + 1)..s {
            let v = per_mb(&mut rng);
            ss[i][j] = v;
            ss[j][i] = v;
        }
    }
    let mut ms = vec![vec![0.0; s]; cfg.machines];
    for (l, row) in ms.iter_mut().enumerate() {
        for (m, cell) in row.iter_mut().enumerate() {
            // Reading from the co-located store is free; otherwise reuse the
            // store-store price between the machine's store and the source,
            // so "near" stores stay consistently near.
            *cell = if m == l { 0.0 } else { ss[l][m] };
        }
    }
    b.overrides(CostOverrides {
        ms_dollars_per_mb: ms,
        ss_dollars_per_mb: ss,
    });
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_20_node_settings() {
        let c = ec2_20_node(0.0, 3600.0);
        assert_eq!(c.num_machines(), 20);
        assert!(c.machines.iter().all(|m| m.instance.name == "m1.medium"));
        assert_eq!(c.zones.len(), 3);

        let c = ec2_20_node(0.5, 3600.0);
        let n_c1 = c
            .machines
            .iter()
            .filter(|m| m.instance.name == "c1.medium")
            .count();
        assert_eq!(n_c1, 10);
        c.validate().unwrap();
    }

    #[test]
    fn ec2_20_node_has_price_diversity() {
        let c = ec2_20_node(0.0, 3600.0);
        assert!(c.min_cpu_cost() < c.max_cpu_cost());
    }

    #[test]
    fn ec2_100_node_mix() {
        let c = ec2_100_node(3600.0, 1);
        assert_eq!(c.num_machines(), 100);
        assert_eq!(c.num_stores(), 100);
        for name in ["m1.small", "m1.medium", "c1.medium"] {
            let n = c
                .machines
                .iter()
                .filter(|m| m.instance.name == name)
                .count();
            assert!((33..=34).contains(&n), "{name}: {n}");
        }
        c.validate().unwrap();
    }

    #[test]
    fn machines_spread_across_zones() {
        let c = ec2_100_node(3600.0, 1);
        for z in 0..3 {
            let n = c.machines.iter().filter(|m| m.zone == ZoneId(z)).count();
            assert!((33..=34).contains(&n));
        }
    }

    #[test]
    fn random_cluster_shapes_and_ranges() {
        let cfg = RandomClusterCfg {
            machines: 5,
            stores: 8,
            ..Default::default()
        };
        let c = random_cluster(&cfg, 99);
        assert_eq!(c.num_machines(), 5);
        assert_eq!(c.num_stores(), 8);
        c.validate().unwrap();
        for m in &c.machines {
            assert!(m.cpu_cost <= 5.0 * MILLICENT + 1e-15);
            assert!((1.0..=5.0).contains(&m.tp_ecu));
        }
        // Transfer prices live in the override matrices and are symmetric.
        let ov = c.overrides.as_ref().unwrap();
        for i in 0..8 {
            assert_eq!(ov.ss_dollars_per_mb[i][i], 0.0);
            for j in 0..8 {
                assert_eq!(ov.ss_dollars_per_mb[i][j], ov.ss_dollars_per_mb[j][i]);
            }
        }
    }

    #[test]
    fn random_cluster_is_seed_deterministic() {
        let cfg = RandomClusterCfg::default();
        let a = random_cluster(&cfg, 5);
        let b = random_cluster(&cfg, 5);
        let c = random_cluster(&cfg, 6);
        assert_eq!(a.machines[0].cpu_cost, b.machines[0].cpu_cost);
        assert_ne!(a.machines[0].cpu_cost, c.machines[0].cpu_cost);
    }

    #[test]
    fn builder_colocates_store_per_machine() {
        let mut b = ClusterBuilder::new();
        let z = b.add_zone("z");
        let m = b.add_machine(z, InstanceType::M1_SMALL, 0.5, 100.0);
        let c = b.build();
        assert_eq!(c.store_of_machine(m), Some(StoreId(0)));
        assert!((c.stores[0].capacity_mb - 160.0 * 1024.0).abs() < 1e-9);
    }

    #[test]
    fn builder_data_registration() {
        let mut b = ClusterBuilder::new();
        let z = b.add_zone("z");
        b.add_machine(z, InstanceType::M1_SMALL, 0.5, 100.0);
        let d = b.add_data("input", 640.0, StoreId(0));
        let c = b.build();
        assert_eq!(c.num_data(), 1);
        assert_eq!(c.data_object(d.id).origin, StoreId(0));
    }
}
