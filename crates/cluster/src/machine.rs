//! Computation nodes — the paper's set `M` (Hadoop TaskTrackers).

use serde::{Deserialize, Serialize};

use crate::instance::InstanceType;
use crate::zone::ZoneId;

/// Index of a machine within a cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct MachineId(pub usize);

/// A computation node.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Machine {
    pub id: MachineId,
    pub name: String,
    pub zone: ZoneId,
    /// The EC2 instance type this node runs on.
    pub instance: InstanceType,
    /// `TP(M)`: CPU throughput in ECU (ECU-seconds of work per second).
    pub tp_ecu: f64,
    /// `CPU_Cost(M)`: dollars per ECU-second on this node.
    pub cpu_cost: f64,
    /// Concurrent map slots (tasks that can run in parallel).
    pub slots: u32,
    /// `uptime(M)`: seconds the node is available in the offline model.
    pub uptime: f64,
}

impl Machine {
    /// Build a machine from an instance type with the catalog midpoint
    /// price; `price_t` in \[0,1\] picks within the published price range.
    pub fn from_instance(
        id: usize,
        name: impl Into<String>,
        zone: ZoneId,
        instance: InstanceType,
        price_t: f64,
        uptime: f64,
    ) -> Self {
        Machine {
            id: MachineId(id),
            name: name.into(),
            zone,
            instance,
            tp_ecu: instance.ecu,
            cpu_cost: instance.cpu_cost_dollars_at(price_t),
            slots: instance.map_slots,
            uptime,
        }
    }

    /// Dollars charged for `ecu_seconds` of work on this node.
    pub fn cpu_dollars(&self, ecu_seconds: f64) -> f64 {
        self.cpu_cost * ecu_seconds
    }

    /// Wall-clock seconds one slot takes to execute `ecu_seconds` of work.
    ///
    /// Each slot delivers an equal share of the node's ECU throughput, so a
    /// 5-ECU, 2-slot c1.medium runs a task at 2.5 ECU.
    pub fn slot_seconds_for(&self, ecu_seconds: f64) -> f64 {
        let per_slot = self.tp_ecu / f64::from(self.slots.max(1));
        ecu_seconds / per_slot
    }

    /// Total ECU-seconds available over `duration` wall-clock seconds
    /// (the capacity term `TP(M_l) · uptime(M_l)` / `TP(M_l) · e`).
    pub fn capacity_ecu_seconds(&self, duration: f64) -> f64 {
        self.tp_ecu * duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c1(price_t: f64) -> Machine {
        Machine::from_instance(
            0,
            "node0",
            ZoneId(0),
            InstanceType::C1_MEDIUM,
            price_t,
            3600.0,
        )
    }

    #[test]
    fn from_instance_copies_catalog_figures() {
        let m = c1(0.5);
        assert_eq!(m.tp_ecu, 5.0);
        assert_eq!(m.slots, 2);
        assert!((m.cpu_cost - InstanceType::C1_MEDIUM.cpu_cost_dollars()).abs() < 1e-15);
    }

    #[test]
    fn billing_is_linear_in_work() {
        let m = c1(0.0);
        assert!((m.cpu_dollars(100.0) - 100.0 * m.cpu_cost).abs() < 1e-15);
        assert_eq!(m.cpu_dollars(0.0), 0.0);
    }

    #[test]
    fn slot_share_divides_throughput() {
        let m = c1(0.0);
        // 5 ECU / 2 slots = 2.5 ECU per slot; 25 ECU-s of work -> 10 s.
        assert!((m.slot_seconds_for(25.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_scales_with_duration() {
        let m = c1(0.0);
        assert!((m.capacity_ecu_seconds(400.0) - 2000.0).abs() < 1e-12);
    }
}
