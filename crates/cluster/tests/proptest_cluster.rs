//! Cluster-model property tests: every generated cluster is structurally
//! valid, its cost/bandwidth matrices satisfy the Table II axioms, and
//! serde round-trips exactly.

use lips_cluster::{
    ec2_100_node, ec2_mixed_cluster, random_cluster, Cluster, MachineId, RandomClusterCfg, StoreId,
};
use proptest::prelude::*;

fn axioms(c: &Cluster) {
    c.validate().unwrap();
    let s = c.num_stores();
    for i in 0..s {
        // SS: zero diagonal, symmetric (zone prices are symmetric and the
        // random generator mirrors its matrix), nonnegative.
        assert_eq!(c.ss_cost(StoreId(i), StoreId(i)), 0.0);
        for j in 0..s {
            let a = c.ss_cost(StoreId(i), StoreId(j));
            let b = c.ss_cost(StoreId(j), StoreId(i));
            assert!(a >= 0.0);
            assert!((a - b).abs() < 1e-15, "SS not symmetric at ({i},{j})");
        }
    }
    for l in 0..c.num_machines() {
        for m in 0..s {
            let ms = c.ms_cost(MachineId(l), StoreId(m));
            assert!(ms >= 0.0 && ms.is_finite());
            let bw = c.bandwidth_machine_store(MachineId(l), StoreId(m));
            assert!(bw > 0.0 && bw.is_finite());
            // Node-local reads are free and fastest.
            if c.store(StoreId(m)).is_local_to(MachineId(l)) {
                assert_eq!(ms, 0.0);
                assert_eq!(c.locality_level(MachineId(l), StoreId(m)), 0);
            }
        }
    }
    assert!(c.min_cpu_cost() <= c.max_cpu_cost());
    assert!(c.total_ecu() > 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mixed_clusters_satisfy_axioms(
        n in 1usize..60,
        c1 in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let c = ec2_mixed_cluster(n, c1, 3600.0, seed);
        prop_assert_eq!(c.num_machines(), n);
        axioms(&c);
        // Every machine has a co-located store and vice versa.
        for m in &c.machines {
            prop_assert!(c.store_of_machine(m.id).is_some());
        }
    }

    #[test]
    fn random_clusters_satisfy_axioms(
        machines in 1usize..30,
        extra_stores in 0usize..10,
        seed in 0u64..10_000,
    ) {
        let cfg = RandomClusterCfg {
            machines,
            stores: machines + extra_stores,
            ..Default::default()
        };
        let c = random_cluster(&cfg, seed);
        prop_assert_eq!(c.num_stores(), machines + extra_stores);
        axioms(&c);
    }

    #[test]
    fn serde_roundtrip_random(seed in 0u64..1000) {
        let cfg = RandomClusterCfg { machines: 6, stores: 8, ..Default::default() };
        let c = random_cluster(&cfg, seed);
        let json = serde_json::to_string(&c).unwrap();
        let back: Cluster = serde_json::from_str(&json).unwrap();
        back.validate().unwrap();
        // Costs survive the round trip to within 1 ULP (serde_json's
        // default float parser is not exactly round-tripping; enabling its
        // `float_roundtrip` feature would make this bit-exact).
        for l in 0..c.num_machines() {
            for m in 0..c.num_stores() {
                let a = c.ms_cost(MachineId(l), StoreId(m));
                let b = back.ms_cost(MachineId(l), StoreId(m));
                prop_assert!((a - b).abs() <= a.abs() * 1e-15, "{a} vs {b}");
            }
        }
    }
}

#[test]
fn hundred_node_testbed_axioms() {
    let c = ec2_100_node(3600.0, 42);
    axioms(&c);
    // Three instance types, three zones, one third each.
    let kinds: std::collections::HashSet<&str> =
        c.machines.iter().map(|m| m.instance.name).collect();
    assert_eq!(kinds.len(), 3);
}
