//! Self-check: the committed workspace passes its own lint gate.
//!
//! These tests are the teeth of the ratchet — they run in plain
//! `cargo test`, so a change that introduces new hash-iteration, raw
//! solver timing, or extra panic surface fails the ordinary test suite,
//! not just the dedicated CI job.

use std::path::{Path, PathBuf};

use lips_analyze::{analyze_workspace, lints, load_baseline};

fn workspace_root() -> PathBuf {
    // crates/analyzer -> crates -> root
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root exists")
        .to_path_buf()
}

#[test]
fn committed_tree_passes_ratchet() {
    let root = workspace_root();
    let report = analyze_workspace(&root).expect("workspace sweep");
    assert!(report.files_scanned > 50, "sweep saw the whole workspace");

    assert!(
        report.malformed_allows.is_empty(),
        "malformed lips-allow comments: {:?}",
        report.malformed_allows
    );
    assert!(
        report.unused_allows.is_empty(),
        "stale lips-allow comments: {:?}",
        report.unused_allows
    );

    let baseline = load_baseline(&root).expect("analyze-baseline.json parses");
    let (regressions, _improvements) = baseline.compare(&report.findings);
    assert!(
        regressions.is_empty(),
        "ratchet broken — new findings beyond the committed baseline:\n{}",
        regressions
            .iter()
            .map(|r| format!(
                "  [{}] {}: {} (baseline {})",
                r.lint, r.file, r.current, r.baseline
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn hard_lints_are_clean() {
    // Two lints are held at zero, not merely ratcheted: every iteration
    // over a hash-ordered collection and every raw solver clock read has
    // been fixed or carries a reviewed lips-allow.
    let report = analyze_workspace(&workspace_root()).expect("workspace sweep");
    let counts = report.counts_by_lint();
    assert_eq!(
        counts[lints::UNORDERED_ITERATION],
        0,
        "unordered iteration crept back in: {:?}",
        report
            .findings
            .iter()
            .filter(|f| f.lint == lints::UNORDERED_ITERATION)
            .collect::<Vec<_>>()
    );
    assert_eq!(
        counts[lints::WALL_CLOCK_IN_SOLVER],
        0,
        "raw wall-clock read on a solver path: {:?}",
        report
            .findings
            .iter()
            .filter(|f| f.lint == lints::WALL_CLOCK_IN_SOLVER)
            .collect::<Vec<_>>()
    );
}

#[test]
fn baseline_totals_match_catalog() {
    // The committed baseline only names lints that exist in the catalog
    // (a typo in a hand-edited baseline would silently ratchet nothing).
    let baseline = load_baseline(&workspace_root()).expect("baseline parses");
    for lint in baseline.counts.keys() {
        assert!(
            lints::lint_by_name(lint).is_some(),
            "baseline names unknown lint {lint:?}"
        );
    }
}
