//! The lint catalog: every rule `lips-analyze` enforces, with its scope.
//!
//! Each lint guards a repo invariant that the dynamic test suite can only
//! sample. The determinism proptests compare 1-vs-4-thread runs on a
//! handful of generated instances; these lints close the gap by rejecting
//! the *syntactic shapes* that reintroduce nondeterminism or a panic
//! surface, across every path in the workspace.

/// Crate-kind classification used by lint scopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrateKind {
    /// A library crate whose results must be reproducible and panic-free
    /// (`lips-lp`, `lips-core`, `lips-sim`, …, and the root `lips` crate).
    Library,
    /// The benchmark/reporting harness (`lips-bench`): binaries that time
    /// things and may panic on bad CLI input.
    Bench,
    /// The worker-pool crate (`lips-par`): the one place allowed to ask
    /// for thread width and to define ordered folds.
    Par,
}

/// Classify a workspace crate by name (the directory under `crates/`, or
/// `lips` for the root `src/`).
pub fn crate_kind(name: &str) -> CrateKind {
    match name {
        "bench" => CrateKind::Bench,
        "par" => CrateKind::Par,
        _ => CrateKind::Library,
    }
}

/// One lint rule.
#[derive(Debug, Clone, Copy)]
pub struct LintDef {
    /// Stable name used in findings, baselines, and `lips-allow` comments.
    pub name: &'static str,
    /// One-line description for `lips-analyze lints`.
    pub summary: &'static str,
    /// Why the rule exists (printed by `lips-analyze lints`).
    pub rationale: &'static str,
    /// Whether the lint applies to files of this crate kind at all
    /// (test code inside an in-scope crate is always exempt).
    pub in_scope: fn(CrateKind) -> bool,
}

/// Iterating a `HashMap`/`HashSet` where the visit order can reach floats,
/// emitted output, or scheduling tie-breaks.
pub const UNORDERED_ITERATION: &str = "unordered-iteration";
/// `Instant::now()` / `SystemTime::now()` on a solver path.
pub const WALL_CLOCK_IN_SOLVER: &str = "wall-clock-in-solver";
/// `+=` on a float accumulator inside a loop.
pub const FLOAT_ACCUM_IN_LOOP: &str = "float-accum-in-loop";
/// `available_parallelism` outside `lips-par`.
pub const THREAD_WIDTH_DEPENDENCE: &str = "thread-width-dependence";
/// `unwrap` / `expect` / `panic!` in library code.
pub const PANIC_SURFACE: &str = "panic-surface";

/// The full catalog, in reporting order.
pub const LINTS: &[LintDef] = &[
    LintDef {
        name: UNORDERED_ITERATION,
        summary: "iteration over a hash-ordered collection in library code",
        rationale: "HashMap/HashSet visit order varies per process (SipHash keying), so any \
                    float accumulation, emitted sequence, or tie-break it feeds differs run to \
                    run. Use BTreeMap/BTreeSet or sort before iterating; point lookups are fine.",
        in_scope: |k| k == CrateKind::Library || k == CrateKind::Par,
    },
    LintDef {
        name: WALL_CLOCK_IN_SOLVER,
        summary: "wall-clock read (Instant::now / SystemTime::now) on a solver path",
        rationale: "Solver results must be a pure function of their inputs so epochs replay \
                    bitwise. Timing belongs behind lips_lp::clock::Stopwatch, which deterministic \
                    callers can zero out, or in the lips-bench harness.",
        in_scope: |k| k == CrateKind::Library || k == CrateKind::Par,
    },
    LintDef {
        name: FLOAT_ACCUM_IN_LOOP,
        summary: "`+=` on a float accumulator inside a loop",
        rationale: "Float addition is non-associative: the same terms in a different order give \
                    different bits. Accumulation is only reproducible when the iteration order \
                    is fixed — over sorted keys or through lips-par's ordered chunk folds. \
                    Existing serial accumulations are tracked as ratcheted debt.",
        in_scope: |k| k == CrateKind::Library,
    },
    LintDef {
        name: THREAD_WIDTH_DEPENDENCE,
        summary: "thread-width query (available_parallelism) outside lips-par",
        rationale: "Results must not depend on how many cores the host has. lips-par owns the \
                    width decision and keeps results bitwise identical at any width; everyone \
                    else must stay width-blind.",
        in_scope: |k| k != CrateKind::Par,
    },
    LintDef {
        name: PANIC_SURFACE,
        summary: "unwrap / expect / panic! in library code",
        rationale: "Library crates feed a long-running scheduler; a panic tears down the whole \
                    epoch loop. Fallible paths should return typed errors. Existing debt is \
                    ratcheted downward release by release.",
        in_scope: |k| k == CrateKind::Library || k == CrateKind::Par,
    },
];

/// Look up a lint by name.
pub fn lint_by_name(name: &str) -> Option<&'static LintDef> {
    LINTS.iter().find(|l| l.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        for (i, l) in LINTS.iter().enumerate() {
            assert!(lint_by_name(l.name).is_some());
            assert!(!LINTS[i + 1..].iter().any(|o| o.name == l.name));
        }
    }

    #[test]
    fn scopes_match_the_contract() {
        let find = |n| lint_by_name(n).expect("known lint");
        // Bench may time and panic, but must stay width-blind.
        assert!(!(find(WALL_CLOCK_IN_SOLVER).in_scope)(CrateKind::Bench));
        assert!(!(find(PANIC_SURFACE).in_scope)(CrateKind::Bench));
        assert!((find(THREAD_WIDTH_DEPENDENCE).in_scope)(CrateKind::Bench));
        // lips-par owns width and ordered folds.
        assert!(!(find(THREAD_WIDTH_DEPENDENCE).in_scope)(CrateKind::Par));
        assert!(!(find(FLOAT_ACCUM_IN_LOOP).in_scope)(CrateKind::Par));
        assert!((find(UNORDERED_ITERATION).in_scope)(CrateKind::Par));
        // Libraries get everything.
        for l in LINTS {
            assert!((l.in_scope)(CrateKind::Library), "{}", l.name);
        }
    }
}
