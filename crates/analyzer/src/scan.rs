//! Per-file analysis: token-stream matchers for every lint in the catalog.
//!
//! The matchers are deliberately *syntactic*. There is no type inference —
//! instead the scanner builds small symbol tables from declaration
//! patterns it can see (`ident: HashMap<…>`, `let mut x = HashMap::new()`,
//! `ident: f64`) and matches use sites against them. Locally declared
//! names always shadow the workspace-wide field table, so a local
//! `let rows: Vec<_>` is never confused with a `rows: HashMap<…>` field
//! declared in another file. The residual false-positive rate is handled
//! the same way real findings are: a reviewed `lips-allow` comment.

use std::collections::BTreeSet;

use crate::lexer::{lex, Tok, TokKind};
use crate::lints::{self, crate_kind};

/// One lint hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub lint: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    pub line: u32,
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Result of analyzing one file.
#[derive(Debug, Default)]
pub struct FileAnalysis {
    /// Unsuppressed findings (what the gate counts).
    pub findings: Vec<Finding>,
    /// Findings silenced by a valid `lips-allow` comment.
    pub suppressed: Vec<Finding>,
    /// `lips-allow` comments that are unparseable, name an unknown lint,
    /// or carry no reason. They suppress nothing.
    pub malformed_allows: Vec<(u32, String)>,
    /// Valid `lips-allow` comments that matched no finding (stale debt).
    pub unused_allows: Vec<(u32, String)>,
}

/// Workspace-wide declaration table, built by a first pass over every
/// file so cross-file field accesses (`report.metrics.ecu_sec_by_machine`)
/// resolve to their declared types.
#[derive(Debug, Default, Clone)]
pub struct FieldTable {
    /// Field names declared with a `HashMap`/`HashSet` type.
    pub hash: BTreeSet<String>,
    /// Field names declared `f64`/`f32`.
    pub float: BTreeSet<String>,
    /// Hash-typed fields whose *value* type is a float
    /// (`HashMap<K, f64>` — `*m.entry(k).or_default() += x` hazards).
    pub float_hash: BTreeSet<String>,
    /// Field names declared with some other type anywhere in the
    /// workspace. A name in both `hash` and `other` is ambiguous — two
    /// structs disagree — and must not be matched at use sites.
    pub other: BTreeSet<String>,
}

impl FieldTable {
    /// Drop every name whose declarations disagree across the workspace:
    /// matching an ambiguous name would produce false findings on the
    /// innocently-typed struct's accesses. (The cost is a false *negative*
    /// on the hash-typed one — the lint is a heuristic net, not a proof.)
    pub fn resolve_conflicts(&mut self) {
        let mut ambiguous = self.other.clone();
        for n in self.hash.intersection(&self.float) {
            ambiguous.insert(n.clone());
        }
        self.hash.retain(|n| !ambiguous.contains(n));
        self.float.retain(|n| !ambiguous.contains(n));
        let hash = self.hash.clone();
        self.float_hash.retain(|n| hash.contains(n));
    }
}

/// Methods whose call on a hash-ordered collection observes its order.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Collect *struct/enum field* declarations from one file into the
/// workspace table. Only field declarations participate: they are what a
/// cross-file `x.name` access can resolve to. Call
/// [`FieldTable::resolve_conflicts`] once every file is collected.
pub fn collect_fields(src: &str, table: &mut FieldTable) {
    let code: Vec<Tok> = lex(src)
        .into_iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    for (name, decl, in_struct) in colon_decls(&code) {
        if !in_struct {
            continue;
        }
        match decl {
            ColonDecl::Hash { float_value } => {
                table.hash.insert(name.clone());
                if float_value {
                    table.float_hash.insert(name.clone());
                }
            }
            ColonDecl::Float => {
                table.float.insert(name.clone());
            }
            ColonDecl::Other => {
                table.other.insert(name.clone());
            }
        }
    }
}

/// What a `name: Type` declaration resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ColonDecl {
    Hash { float_value: bool },
    Float,
    Other,
}

/// All `ident : Type` declarations in the token stream (struct fields, fn
/// params, typed lets), each tagged with whether it sits inside a
/// `struct`/`enum` body (a *field* declaration). Struct-literal fields
/// like `Foo { x: HashMap::new() }` don't match because the matcher
/// requires the *type head* followed by `<`.
fn colon_decls(code: &[Tok]) -> Vec<(String, ColonDecl, bool)> {
    let struct_spans = struct_bodies(code);
    let in_struct = |idx: usize| struct_spans.iter().any(|&(a, b)| idx > a && idx < b);
    let mut out = Vec::new();
    for i in 0..code.len() {
        if code[i].kind != TokKind::Ident || !code.get(i + 1).is_some_and(|t| t.is_punct(":")) {
            continue;
        }
        // Walk the type expression: path segments, references, lifetimes.
        let mut j = i + 2;
        let mut decl = ColonDecl::Other;
        let mut steps = 0;
        while let Some(t) = code.get(j) {
            steps += 1;
            if steps > 12 {
                break;
            }
            match t.kind {
                TokKind::Punct if t.text == "::" || t.text == "&" => j += 1,
                TokKind::Lifetime => j += 1,
                TokKind::Ident if t.text == "mut" || t.text == "dyn" => j += 1,
                TokKind::Ident if t.text == "f64" || t.text == "f32" => {
                    decl = ColonDecl::Float;
                    break;
                }
                TokKind::Ident if t.text == "HashMap" || t.text == "HashSet" => {
                    if code.get(j + 1).is_some_and(|n| n.is_punct("<")) {
                        decl = ColonDecl::Hash {
                            float_value: generic_args_have_float(code, j + 1),
                        };
                    }
                    break;
                }
                TokKind::Ident => {
                    // Some other type head (Vec, BTreeMap, u64, …): keep
                    // walking only through path separators; a bare ident
                    // followed by anything but `::` ends the type.
                    if code.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                        j += 1;
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        out.push((code[i].text.clone(), decl, in_struct(i)));
    }
    out
}

/// Body spans of `struct` / `enum` definitions (where colon declarations
/// are *fields*, not bindings).
fn struct_bodies(code: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..code.len() {
        if !(code[i].is_ident("struct") || code[i].is_ident("enum")) {
            continue;
        }
        // `struct Name { … }` / `struct Name<T: Bound> { … }`. Tuple and
        // unit structs hit `;`/`(` first and are skipped.
        if let Some(open) = find_body_open(code, i + 1) {
            if let Some(close) = matching_brace(code, open) {
                spans.push((open, close));
            }
        }
    }
    spans
}

/// Does the `<…>` starting at `open` (index of `<`) mention `f64`/`f32`
/// at any depth?
fn generic_args_have_float(code: &[Tok], open: usize) -> bool {
    let mut depth = 0usize;
    for t in code.iter().skip(open) {
        match t.kind {
            TokKind::Punct if t.text == "<" => depth += 1,
            TokKind::Punct if t.text == ">" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return false;
                }
            }
            TokKind::Ident if t.text == "f64" || t.text == "f32" => return true,
            // A `(` opening a fn type or a `;` means we ran off the rails.
            TokKind::Punct if t.text == ";" => return false,
            _ => {}
        }
    }
    false
}

/// Analyze one file. `rel_path` is workspace-relative (used in findings),
/// `crate_name` the directory under `crates/` (or `lips` for the root
/// crate), `global` the workspace-wide field table from
/// [`collect_fields`].
pub fn analyze_source(
    crate_name: &str,
    rel_path: &str,
    src: &str,
    global: &FieldTable,
) -> FileAnalysis {
    let kind = crate_kind(crate_name);
    let all = lex(src);
    let code: Vec<Tok> = all
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .cloned()
        .collect();

    let mut out = FileAnalysis::default();
    let suppressions = parse_suppressions(&all, &code, &mut out.malformed_allows);
    let test_spans = find_test_spans(&code);
    let in_test = |idx: usize| test_spans.iter().any(|&(a, b)| idx >= a && idx <= b);

    // --- symbol tables -------------------------------------------------
    // Two disjoint namespaces: a *field access* (`recv.name`, previous
    // token `.`) resolves against the workspace-wide struct-field table;
    // a *bare identifier* resolves against this file's local bindings.
    // Each table has already subtracted its ambiguous names, so a local
    // `let avail: HashMap<…>` never taints a `job.avail` Vec field and a
    // `vars: HashMap<…>` field in one struct never taints `model.vars`
    // on another.
    let local = local_decls(&code);
    let hash_here = |idx_of_ident: usize| -> bool {
        let name = &code[idx_of_ident].text;
        if idx_of_ident > 0 && code[idx_of_ident - 1].is_punct(".") {
            global.hash.contains(name)
        } else {
            local.hash.contains(name)
        }
    };
    let float_at = |idx_of_ident: usize| -> bool {
        let name = &code[idx_of_ident].text;
        if idx_of_ident > 0 && code[idx_of_ident - 1].is_punct(".") {
            global.float.contains(name)
        } else {
            local.float.contains(name)
        }
    };
    // Accumulator bases from `*x.entry(k).or_default() += …` chains lose
    // their receiver context, so consult both tables.
    let float_hash_name = |name: &str| -> bool {
        local.float_hash.contains(name) || global.float_hash.contains(name)
    };

    let loops = loop_bodies(&code);
    let in_loop = |idx: usize| loops.iter().any(|&(a, b)| idx > a && idx < b);

    let mut raw: Vec<Finding> = Vec::new();
    let mut push = |lint: &'static str, line: u32, message: String| {
        raw.push(Finding {
            lint,
            file: rel_path.to_string(),
            line,
            message,
        });
    };
    let scoped = |name: &str| lints::lint_by_name(name).is_some_and(|l| (l.in_scope)(kind));

    // --- unordered-iteration -------------------------------------------
    if scoped(lints::UNORDERED_ITERATION) {
        for i in 0..code.len() {
            // `recv.iter()` / `recv.values()` / …
            if code[i].is_punct(".")
                && code.get(i + 1).is_some_and(|t| {
                    t.kind == TokKind::Ident && ITER_METHODS.contains(&t.text.as_str())
                })
                && code.get(i + 2).is_some_and(|t| t.is_punct("("))
                && i > 0
                && code[i - 1].kind == TokKind::Ident
                && hash_here(i - 1)
                && !in_test(i)
            {
                push(
                    lints::UNORDERED_ITERATION,
                    code[i + 1].line,
                    format!(
                        "`{}.{}()` visits a hash-ordered collection in nondeterministic order",
                        code[i - 1].text,
                        code[i + 1].text
                    ),
                );
            }
        }
        // `for pat in &some.hash_field {` — iterating the collection
        // itself (no method call; IntoIterator does the work).
        for &(_, in_idx, open_idx) in &for_loops(&code) {
            if open_idx > in_idx + 1 {
                let last = open_idx - 1;
                if code[last].kind == TokKind::Ident && hash_here(last) && !in_test(in_idx) {
                    push(
                        lints::UNORDERED_ITERATION,
                        code[in_idx].line,
                        format!(
                            "`for … in {}` visits a hash-ordered collection in nondeterministic order",
                            code[last].text
                        ),
                    );
                }
            }
        }
    }

    // --- wall-clock-in-solver ------------------------------------------
    if scoped(lints::WALL_CLOCK_IN_SOLVER) {
        for i in 0..code.len() {
            if code[i].kind == TokKind::Ident
                && (code[i].text == "Instant" || code[i].text == "SystemTime")
                && code.get(i + 1).is_some_and(|t| t.is_punct("::"))
                && code.get(i + 2).is_some_and(|t| t.is_ident("now"))
                && !in_test(i)
            {
                push(
                    lints::WALL_CLOCK_IN_SOLVER,
                    code[i].line,
                    format!(
                        "`{}::now()` on a solver path — route timing through lips_lp::clock",
                        code[i].text
                    ),
                );
            }
        }
    }

    // --- float-accum-in-loop -------------------------------------------
    if scoped(lints::FLOAT_ACCUM_IN_LOOP) {
        for i in 0..code.len() {
            if !code[i].is_punct("+=") || !in_loop(i) || in_test(i) {
                continue;
            }
            let lhs_is_float = i > 0 && code[i - 1].kind == TokKind::Ident && float_at(i - 1);
            let chain = accum_chain_names(&code, i);
            let entry_target = chain.iter().find(|n| float_hash_name(n));
            let rhs_is_float = rhs_has_float_evidence(&code, i, &float_at);
            if lhs_is_float || entry_target.is_some() || rhs_is_float {
                let what = if lhs_is_float {
                    code[i - 1].text.clone()
                } else {
                    entry_target
                        .cloned()
                        .or_else(|| chain.first().cloned())
                        .unwrap_or_else(|| "accumulator".to_string())
                };
                push(
                    lints::FLOAT_ACCUM_IN_LOOP,
                    code[i].line,
                    format!("float `+=` on `{what}` inside a loop — order-sensitive accumulation"),
                );
            }
        }
    }

    // --- thread-width-dependence ---------------------------------------
    if scoped(lints::THREAD_WIDTH_DEPENDENCE) {
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("available_parallelism") && !in_test(i) {
                push(
                    lints::THREAD_WIDTH_DEPENDENCE,
                    t.line,
                    "`available_parallelism` outside lips-par makes results depend on host width"
                        .to_string(),
                );
            }
        }
    }

    // --- panic-surface --------------------------------------------------
    if scoped(lints::PANIC_SURFACE) {
        for i in 0..code.len() {
            if code[i].is_punct(".")
                && code
                    .get(i + 1)
                    .is_some_and(|t| t.is_ident("unwrap") || t.is_ident("expect"))
                && code.get(i + 2).is_some_and(|t| t.is_punct("("))
                && !in_test(i)
            {
                push(
                    lints::PANIC_SURFACE,
                    code[i + 1].line,
                    format!(
                        "`.{}()` in library code — return a typed error",
                        code[i + 1].text
                    ),
                );
            }
            if code[i].is_ident("panic")
                && code.get(i + 1).is_some_and(|t| t.is_punct("!"))
                && !in_test(i)
            {
                push(
                    lints::PANIC_SURFACE,
                    code[i].line,
                    "`panic!` in library code — return a typed error".to_string(),
                );
            }
        }
    }

    // --- apply suppressions --------------------------------------------
    let mut used = vec![false; suppressions.len()];
    for f in raw {
        let hit = suppressions
            .iter()
            .position(|s| s.lint == f.lint && s.lines.contains(&f.line));
        match hit {
            Some(s) => {
                used[s] = true;
                out.suppressed.push(f);
            }
            None => out.findings.push(f),
        }
    }
    for (s, u) in suppressions.iter().zip(&used) {
        if !u {
            out.unused_allows.push((s.comment_line, s.lint.to_string()));
        }
    }
    out
}

/// Local binding tables for one file: fn params, typed lets, and
/// initializer-classified untyped lets. Struct fields are *not* local
/// bindings — they live in the workspace [`FieldTable`] and are matched
/// only through `.field` accesses.
#[derive(Debug, Default)]
struct LocalDecls {
    hash: BTreeSet<String>,
    float: BTreeSet<String>,
    float_hash: BTreeSet<String>,
    /// Names with a non-hash, non-float local declaration.
    other: BTreeSet<String>,
}

impl LocalDecls {
    /// A name declared inconsistently within the file is ambiguous; treat
    /// it as unknown rather than risk a false finding.
    fn resolve_conflicts(&mut self) {
        let mut ambiguous: BTreeSet<String> = self.other.clone();
        for n in self.hash.intersection(&self.float) {
            ambiguous.insert(n.clone());
        }
        self.hash.retain(|n| !ambiguous.contains(n));
        self.float.retain(|n| !ambiguous.contains(n));
        let hash = self.hash.clone();
        self.float_hash.retain(|n| hash.contains(n));
    }
}

fn local_decls(code: &[Tok]) -> LocalDecls {
    let mut d = LocalDecls::default();
    for (name, decl, in_struct) in colon_decls(code) {
        if in_struct {
            continue;
        }
        match decl {
            ColonDecl::Hash { float_value } => {
                d.hash.insert(name.clone());
                if float_value {
                    d.float_hash.insert(name);
                }
            }
            ColonDecl::Float => {
                d.float.insert(name);
            }
            ColonDecl::Other => {
                d.other.insert(name);
            }
        }
    }
    // `let [mut] name = <init>;` — untyped lets classified by the shape
    // of the initializer only (a `HashMap` mention deep inside a closure
    // body must not classify the binding).
    let mut i = 0;
    while i < code.len() {
        if !code[i].is_ident("let") {
            i += 1;
            continue;
        }
        let mut k = i + 1;
        if code.get(k).is_some_and(|t| t.is_ident("mut")) {
            k += 1;
        }
        let Some(name_tok) = code.get(k).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let name = name_tok.text.clone();
        if code.get(k + 1).is_some_and(|t| t.is_punct("=")) {
            let mut v = k + 2;
            if code.get(v).is_some_and(|t| t.is_punct("-")) {
                v += 1;
            }
            // Float literal initializer: `= 0.0`, `= -1.5e3`, `= 0f64`.
            if code.get(v).is_some_and(|t| {
                t.kind == TokKind::Num
                    && (t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32"))
            }) {
                d.float.insert(name.clone());
            }
            // Constructor path initializer: `= HashMap::new()`,
            // `= std::collections::HashSet::with_capacity(n)`.
            let mut j = k + 2;
            while let Some(t) = code.get(j) {
                match t.kind {
                    TokKind::Ident if t.text == "HashMap" || t.text == "HashSet" => {
                        d.hash.insert(name.clone());
                        if code.get(j + 1).is_some_and(|n| n.is_punct("<"))
                            && generic_args_have_float(code, j + 1)
                        {
                            d.float_hash.insert(name.clone());
                        }
                        break;
                    }
                    TokKind::Ident => {
                        if code.get(j + 1).is_some_and(|n| n.is_punct("::")) {
                            j += 2;
                        } else {
                            break;
                        }
                    }
                    _ => break,
                }
            }
        }
        i = k + 1;
    }
    d.resolve_conflicts();
    d
}

/// For `*map.entry(k).or_default() += x` shapes: walk left from the `+=`
/// over `)…(`-balanced groups and `.`-joined segments, collecting every
/// identifier in the receiver chain (nearest first). Entry-API method
/// names and `self` are skipped — the caller wants candidate collection
/// names like `totals` in `*m.totals.entry(k).or_default() += x`.
fn accum_chain_names(code: &[Tok], plus_eq: usize) -> Vec<String> {
    const METHODS: &[&str] = &["entry", "or_default", "or_insert", "or_insert_with", "self"];
    let mut i = plus_eq;
    let mut names = Vec::new();
    while i > 0 {
        i -= 1;
        let t = &code[i];
        match t.kind {
            TokKind::Punct if t.text == ")" || t.text == "]" => {
                // Skip the balanced group.
                let close = t.text.clone();
                let open = if close == ")" { "(" } else { "[" };
                let mut depth = 1;
                while i > 0 && depth > 0 {
                    i -= 1;
                    if code[i].is_punct(&close) {
                        depth += 1;
                    } else if code[i].is_punct(open) {
                        depth -= 1;
                    }
                }
            }
            TokKind::Ident if !METHODS.contains(&t.text.as_str()) => {
                names.push(t.text.clone());
            }
            TokKind::Ident => {}
            TokKind::Punct if t.text == "." || t.text == "*" || t.text == "::" => {}
            _ => break,
        }
    }
    names
}

/// Does the right side of the `+=` (up to `;` at depth 0) contain a float
/// literal or a known-float identifier? `float_at` receives the token
/// index so field accesses and bare locals resolve against the right
/// table.
fn rhs_has_float_evidence(code: &[Tok], plus_eq: usize, float_at: &dyn Fn(usize) -> bool) -> bool {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(plus_eq + 1).take(80) {
        match t.kind {
            TokKind::Punct => match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                ";" if depth == 0 => return false,
                _ => {}
            },
            TokKind::Num
                if t.text.contains('.') || t.text.ends_with("f64") || t.text.ends_with("f32") =>
            {
                return true;
            }
            // An `as f64` cast (or any bare float-type mention) is float
            // arithmetic regardless of what the tables know.
            TokKind::Ident if t.text == "f64" || t.text == "f32" => return true,
            TokKind::Ident if float_at(j) => return true,
            _ => {}
        }
    }
    false
}

/// Body spans `(open_idx, close_idx)` of every `for`/`while`/`loop`.
fn loop_bodies(code: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    for i in 0..code.len() {
        let t = &code[i];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "for" | "while" | "loop") {
            continue;
        }
        // `for<'a>` in higher-ranked bounds is not a loop.
        if code.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            continue;
        }
        if let Some(open) = find_body_open(code, i + 1) {
            if let Some(close) = matching_brace(code, open) {
                spans.push((open, close));
            }
        }
    }
    spans
}

/// `(for_idx, in_idx, body_open_idx)` of every `for … in … {` loop.
fn for_loops(code: &[Tok]) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for i in 0..code.len() {
        if !code[i].is_ident("for") || code.get(i + 1).is_some_and(|n| n.is_punct("<")) {
            continue;
        }
        let Some(open) = find_body_open(code, i + 1) else {
            continue;
        };
        // Find `in` at paren/bracket depth 0 between the pattern and body.
        let mut depth = 0i32;
        for (j, t) in code.iter().enumerate().take(open).skip(i + 1) {
            if t.kind == TokKind::Punct {
                match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    _ => {}
                }
            } else if t.is_ident("in") && depth == 0 {
                out.push((i, j, open));
                break;
            }
        }
    }
    out
}

/// First `{` at paren/bracket depth 0 scanning from `start`; a `;` first
/// means the construct had no body here.
fn find_body_open(code: &[Tok], start: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(start) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "(" | "[" => depth += 1,
            ")" | "]" => depth -= 1,
            "{" if depth == 0 => return Some(j),
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// Matching `}` for the `{` at `open`.
fn matching_brace(code: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (j, t) in code.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// Token-index spans of test code: bodies under `#[cfg(test)]` /
/// `#[test]` attributes. `#[cfg(not(test))]` is production code and is
/// not marked.
fn find_test_spans(code: &[Tok]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut pending = false;
    let mut i = 0;
    while i < code.len() {
        let t = &code[i];
        if t.is_punct("#") && code.get(i + 1).is_some_and(|n| n.is_punct("[")) {
            // Outer attribute: classify and skip.
            let mut depth = 0i32;
            let mut j = i + 1;
            let mut saw_test = false;
            let mut saw_not = false;
            while j < code.len() {
                let a = &code[j];
                if a.is_punct("[") {
                    depth += 1;
                } else if a.is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.is_ident("test") {
                    saw_test = true;
                } else if a.is_ident("not") {
                    saw_not = true;
                }
                j += 1;
            }
            if saw_test && !saw_not {
                pending = true;
            }
            i = j + 1;
            continue;
        }
        if t.is_punct("#") && code.get(i + 1).is_some_and(|n| n.is_punct("!")) {
            // Inner attribute `#![…]`: skip without classifying.
            let mut depth = 0i32;
            let mut j = i + 2;
            while j < code.len() {
                if code[j].is_punct("[") {
                    depth += 1;
                } else if code[j].is_punct("]") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        if pending {
            if t.is_punct(";") {
                // `#[cfg(test)] use …;` — no body to mark.
                pending = false;
            } else if t.is_punct("{") {
                if let Some(close) = matching_brace(code, i) {
                    spans.push((i, close));
                }
                pending = false;
            }
        }
        i += 1;
    }
    spans
}

/// A parsed `// lips-allow(<lint>): <reason>` comment.
#[derive(Debug)]
struct Suppression {
    lint: &'static str,
    /// Source lines this allow covers: its own line (trailing comments)
    /// and the next code line below it.
    lines: Vec<u32>,
    comment_line: u32,
}

fn parse_suppressions(
    all: &[Tok],
    code: &[Tok],
    malformed: &mut Vec<(u32, String)>,
) -> Vec<Suppression> {
    let mut out = Vec::new();
    for t in all {
        if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
            continue;
        }
        // Strip exactly one comment marker. A suppression is a comment
        // whose payload *starts* with `lips-allow` — quoted examples in
        // docs (`//! // lips-allow(…)`, backticked mentions) don't count.
        let payload = t
            .text
            .strip_prefix("//!")
            .or_else(|| t.text.strip_prefix("///"))
            .or_else(|| t.text.strip_prefix("//"))
            .or_else(|| t.text.strip_prefix("/*"))
            .unwrap_or(&t.text)
            .trim_start();
        let Some(rest) = payload.strip_prefix("lips-allow") else {
            continue;
        };
        let parsed = (|| -> Result<&'static str, String> {
            let rest = rest
                .strip_prefix('(')
                .ok_or_else(|| "expected `lips-allow(<lint>): <reason>`".to_string())?;
            let close = rest
                .find(')')
                .ok_or_else(|| "unclosed `(` in lips-allow".to_string())?;
            let name = rest[..close].trim();
            let lint = crate::lints::lint_by_name(name)
                .ok_or_else(|| format!("unknown lint `{name}` in lips-allow"))?;
            let after = rest[close + 1..].trim_start();
            let reason = after.strip_prefix(':').map_or("", str::trim);
            if reason.is_empty() {
                return Err(format!(
                    "lips-allow({name}) needs a reason: `lips-allow({name}): <why>`"
                ));
            }
            Ok(lint.name)
        })();
        match parsed {
            Ok(lint) => {
                let next_code_line = code
                    .iter()
                    .map(|c| c.line)
                    .find(|&l| l > t.line)
                    .unwrap_or(t.line);
                out.push(Suppression {
                    lint,
                    lines: vec![t.line, next_code_line],
                    comment_line: t.line,
                });
            }
            Err(msg) => malformed.push((t.line, msg)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(src: &str) -> FileAnalysis {
        analyze_source("core", "crates/core/src/x.rs", src, &FieldTable::default())
    }

    #[test]
    fn flags_hash_iteration_and_respects_btree() {
        let src = r"
            use std::collections::{BTreeMap, HashMap};
            fn f() {
                let mut m: HashMap<u32, f64> = HashMap::new();
                let b: BTreeMap<u32, f64> = BTreeMap::new();
                for (k, v) in &m { let _ = (k, v); }
                let s: f64 = m.values().sum();
                let t: f64 = b.values().sum();
                let _ = (s, t);
            }
        ";
        let a = run(src);
        let iter_hits: Vec<_> = a
            .findings
            .iter()
            .filter(|f| f.lint == lints::UNORDERED_ITERATION)
            .collect();
        assert_eq!(iter_hits.len(), 2, "{:?}", a.findings);
    }

    #[test]
    fn point_lookups_are_fine() {
        let a = run(r"
            use std::collections::HashMap;
            fn f(m: &HashMap<u32, u32>) -> Option<u32> {
                m.get(&3).copied()
            }
        ");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn test_code_is_exempt() {
        let a = run(r"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { let x: Option<u32> = None; x.unwrap(); }
            }
        ");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn cfg_not_test_is_production() {
        let a = run(r"
            #[cfg(not(test))]
            mod prod {
                pub fn f(x: Option<u32>) -> u32 { x.unwrap() }
            }
        ");
        assert_eq!(a.findings.len(), 1);
        assert_eq!(a.findings[0].lint, lints::PANIC_SURFACE);
    }

    #[test]
    fn unwrap_or_is_not_unwrap() {
        let a = run("fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }");
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn suppression_needs_reason_and_matching_lint() {
        let src = r"
            fn f(x: Option<u32>) -> u32 {
                // lips-allow(panic-surface): caller guarantees Some by construction
                x.unwrap()
            }
        ";
        let a = run(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
        assert_eq!(a.suppressed.len(), 1);

        let bad = run(r"
            fn f(x: Option<u32>) -> u32 {
                // lips-allow(panic-surface)
                x.unwrap()
            }
        ");
        assert_eq!(bad.findings.len(), 1, "reason-less allow must not suppress");
        assert_eq!(bad.malformed_allows.len(), 1);
    }

    #[test]
    fn unused_allow_is_reported() {
        let a = run(r"
            // lips-allow(panic-surface): stale
            fn f() {}
        ");
        assert_eq!(a.unused_allows.len(), 1);
    }

    #[test]
    fn float_accum_in_loop_flags_hash_entry_accum() {
        let src = r"
            use std::collections::HashMap;
            fn f(xs: &[(u32, f64)]) -> HashMap<u32, f64> {
                let mut m: HashMap<u32, f64> = HashMap::new();
                for &(k, v) in xs {
                    *m.entry(k).or_default() += v;
                }
                m
            }
        ";
        let a = run(src);
        assert!(
            a.findings
                .iter()
                .any(|f| f.lint == lints::FLOAT_ACCUM_IN_LOOP),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn integer_accum_is_fine() {
        let src = r"
            fn f(xs: &[u32]) -> u32 {
                let mut n = 0;
                for &x in xs { n += x; }
                n
            }
        ";
        let a = run(src);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn wall_clock_and_width() {
        let src = r"
            fn f() -> f64 {
                let t = std::time::Instant::now();
                let _w = std::thread::available_parallelism();
                t.elapsed().as_secs_f64()
            }
        ";
        let a = run(src);
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == lints::WALL_CLOCK_IN_SOLVER));
        assert!(a
            .findings
            .iter()
            .any(|f| f.lint == lints::THREAD_WIDTH_DEPENDENCE));
    }

    #[test]
    fn bench_crate_may_time_but_not_query_width() {
        let src = r"
            fn f() {
                let t = std::time::Instant::now();
                let _w = std::thread::available_parallelism();
                let _ = t;
            }
        ";
        let a = analyze_source(
            "bench",
            "crates/bench/src/x.rs",
            src,
            &FieldTable::default(),
        );
        assert!(a
            .findings
            .iter()
            .all(|f| f.lint == lints::THREAD_WIDTH_DEPENDENCE));
        assert_eq!(a.findings.len(), 1);
    }

    #[test]
    fn par_crate_may_query_width_and_accumulate() {
        // lips-par owns the ordered-fold machinery: width queries and
        // float accumulation are its job, the other lints still apply.
        let src = r"
            fn f(xs: &[f64]) -> f64 {
                let _w = std::thread::available_parallelism();
                let mut acc = 0.0;
                for &x in xs { acc += x; }
                let o: Option<u32> = None;
                o.unwrap();
                acc
            }
        ";
        let a = analyze_source("par", "crates/par/src/x.rs", src, &FieldTable::default());
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].lint, lints::PANIC_SURFACE);
    }

    #[test]
    fn cross_file_float_hash_field_accum_is_flagged() {
        // Field declared `HashMap<K, f64>` in another file; this file
        // accumulates into it inside a loop.
        let mut global = FieldTable::default();
        global.hash.insert("totals".to_string());
        global.float_hash.insert("totals".to_string());
        let src = r"
            fn f(m: &mut Ledger, xs: &[(u32, u32)]) {
                for &(k, v) in xs {
                    *m.totals.entry(k).or_default() += v as f64;
                }
            }
        ";
        let a = analyze_source("core", "x.rs", src, &global);
        assert!(
            a.findings
                .iter()
                .any(|f| f.lint == lints::FLOAT_ACCUM_IN_LOOP),
            "{:?}",
            a.findings
        );
        // `entry()` is a point operation, not an ordered visit.
        assert!(
            a.findings
                .iter()
                .all(|f| f.lint != lints::UNORDERED_ITERATION),
            "{:?}",
            a.findings
        );
    }

    #[test]
    fn local_vec_shadows_global_hash_field() {
        let mut global = FieldTable::default();
        global.hash.insert("rows".to_string());
        let src = r"
            fn f() {
                let rows: Vec<u32> = vec![1, 2];
                for r in rows.iter() { let _ = r; }
            }
        ";
        let a = analyze_source("core", "x.rs", src, &global);
        assert!(a.findings.is_empty(), "{:?}", a.findings);
    }

    #[test]
    fn global_field_access_is_flagged() {
        let mut global = FieldTable::default();
        global.hash.insert("by_machine".to_string());
        let src = r"
            fn f(m: &Metrics) -> f64 {
                m.by_machine.values().sum()
            }
        ";
        let a = analyze_source("core", "x.rs", src, &global);
        assert_eq!(a.findings.len(), 1, "{:?}", a.findings);
        assert_eq!(a.findings[0].lint, lints::UNORDERED_ITERATION);
    }
}
