//! CLI for the workspace lint engine.
//!
//! ```text
//! lips-analyze check                # strict: any unsuppressed finding fails
//! lips-analyze check --ratchet      # fail only on findings beyond the baseline
//! lips-analyze baseline             # rewrite analyze-baseline.json from HEAD
//! lips-analyze lints                # print the lint catalog
//! ```
//!
//! Exit codes: 0 clean / ratchet holds, 1 findings / ratchet broken,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lips_analyze::{analyze_workspace, find_root, lints, load_baseline, Baseline, BASELINE_FILE};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd: Option<&str> = None;
    let mut ratchet = false;
    let mut root_arg: Option<PathBuf> = None;
    let mut quiet = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "check" | "baseline" | "lints" if cmd.is_none() => cmd = Some(a.as_str()),
            "--ratchet" => ratchet = true,
            "--quiet" => quiet = true,
            "--root" => match it.next() {
                Some(p) => root_arg = Some(PathBuf::from(p)),
                None => return usage("--root needs a path"),
            },
            other => return usage(&format!("unrecognized argument `{other}`")),
        }
    }

    let Some(cmd) = cmd else {
        return usage("expected a command: check | baseline | lints");
    };

    if cmd == "lints" {
        print_catalog();
        return ExitCode::SUCCESS;
    }

    let root = match locate_root(root_arg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lips-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lips-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    match cmd {
        "baseline" => {
            let base = Baseline::from_findings(&report.findings);
            let path = root.join(BASELINE_FILE);
            if let Err(e) = std::fs::write(&path, base.to_json()) {
                eprintln!("lips-analyze: {}: {e}", path.display());
                return ExitCode::from(2);
            }
            println!(
                "wrote {} ({} findings across {} files scanned)",
                path.display(),
                report.findings.len(),
                report.files_scanned
            );
            summarize(&report, quiet);
            ExitCode::SUCCESS
        }
        "check" => run_check(&root, &report, ratchet, quiet),
        _ => usage("unreachable command"),
    }
}

fn run_check(root: &Path, report: &lips_analyze::Report, ratchet: bool, quiet: bool) -> ExitCode {
    let mut failed = false;

    // Malformed allows always fail: a suppression must parse to count.
    for (file, line, msg) in &report.malformed_allows {
        eprintln!("{file}:{line}: [malformed-allow] {msg}");
        failed = true;
    }

    if ratchet {
        let base = match load_baseline(root) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("lips-analyze: {e} (run `lips-analyze baseline` to create it)");
                return ExitCode::from(2);
            }
        };
        let (regressions, improvements) = base.compare(&report.findings);
        for r in &regressions {
            failed = true;
            eprintln!(
                "ratchet broken: [{}] {} has {} findings (baseline {})",
                r.lint, r.file, r.current, r.baseline
            );
            // Show the offending lines to make the failure actionable.
            for f in report
                .findings
                .iter()
                .filter(|f| f.lint == r.lint && f.file == r.file)
            {
                eprintln!("  {f}");
            }
        }
        if !quiet && !improvements.is_empty() {
            let saved: usize = improvements.iter().map(|i| i.baseline - i.current).sum();
            println!(
                "{saved} finding(s) below baseline across {} file(s) — `lips-analyze baseline` to re-tighten",
                improvements.len()
            );
        }
    } else {
        for f in &report.findings {
            eprintln!("{f}");
            failed = true;
        }
    }

    summarize(report, quiet);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn summarize(report: &lips_analyze::Report, quiet: bool) {
    if quiet {
        return;
    }
    println!(
        "scanned {} files: {} finding(s), {} suppressed by lips-allow",
        report.files_scanned,
        report.findings.len(),
        report.suppressed.len()
    );
    for (lint, count) in report.counts_by_lint() {
        let suppressed = report.suppressed.iter().filter(|f| f.lint == lint).count();
        println!("  {lint:<24} {count:>4} open  {suppressed:>4} allowed");
    }
    for (file, line, lint) in &report.unused_allows {
        println!("note: {file}:{line}: unused lips-allow({lint}) — remove it");
    }
}

fn print_catalog() {
    println!("lint catalog ({} rules):\n", lints::LINTS.len());
    for l in lints::LINTS {
        println!("{}\n  {}\n  why: {}\n", l.name, l.summary, l.rationale);
    }
    println!("suppress with: // lips-allow(<lint>): <reason>");
}

fn locate_root(arg: Option<PathBuf>) -> Result<PathBuf, lips_analyze::AnalyzeError> {
    if let Some(r) = arg {
        return Ok(r);
    }
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    find_root(&cwd).or_else(|e| {
        // Under `cargo run -p lips-analyze` the manifest dir is
        // crates/analyzer; its workspace root is two levels up.
        match std::env::var("CARGO_MANIFEST_DIR") {
            Ok(m) => find_root(Path::new(&m)),
            Err(_) => Err(e),
        }
    })
}

fn usage(problem: &str) -> ExitCode {
    eprintln!(
        "lips-analyze: {problem}\n\n\
         usage: lips-analyze <check [--ratchet] | baseline | lints> [--root <dir>] [--quiet]"
    );
    ExitCode::from(2)
}
