//! The ratchet: a committed per-file finding-count baseline.
//!
//! `analyze-baseline.json` records, for every lint, how many unsuppressed
//! findings each file carried when the baseline was last written. The
//! ratchet check (`lips-analyze check --ratchet`) fails only when some
//! `(lint, file)` pair *exceeds* its recorded count — existing debt
//! stands, new debt is rejected, and shrinking debt is reported so the
//! baseline can be re-tightened with `lips-analyze baseline`.
//!
//! The format is a two-level JSON object with sorted keys, written and
//! parsed by the tiny subset codec below (the analyzer takes no
//! dependencies, vendored or otherwise).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::scan::Finding;

/// `lint name → (file → count)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

/// One way the current tree is worse than the baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regression {
    pub lint: String,
    pub file: String,
    pub baseline: usize,
    pub current: usize,
}

/// One way the current tree is better (candidate for re-tightening).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Improvement {
    pub lint: String,
    pub file: String,
    pub baseline: usize,
    pub current: usize,
}

impl Baseline {
    /// Build a baseline from a finding set.
    pub fn from_findings<'a>(findings: impl IntoIterator<Item = &'a Finding>) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for f in findings {
            *counts
                .entry(f.lint.to_string())
                .or_default()
                .entry(f.file.clone())
                .or_default() += 1;
        }
        Baseline { counts }
    }

    /// Total recorded findings for one lint.
    pub fn total(&self, lint: &str) -> usize {
        self.counts
            .get(lint)
            .map_or(0, |files| files.values().sum())
    }

    /// Compare current findings against this baseline.
    pub fn compare<'a>(
        &self,
        findings: impl IntoIterator<Item = &'a Finding>,
    ) -> (Vec<Regression>, Vec<Improvement>) {
        let current = Baseline::from_findings(findings);
        let mut regressions = Vec::new();
        let mut improvements = Vec::new();
        // Every (lint, file) present now or then.
        let mut keys: Vec<(&String, &String)> = Vec::new();
        for (l, files) in current.counts.iter().chain(self.counts.iter()) {
            for f in files.keys() {
                keys.push((l, f));
            }
        }
        keys.sort();
        keys.dedup();
        for (lint, file) in keys {
            let base = self
                .counts
                .get(lint)
                .and_then(|m| m.get(file))
                .copied()
                .unwrap_or(0);
            let cur = current
                .counts
                .get(lint)
                .and_then(|m| m.get(file))
                .copied()
                .unwrap_or(0);
            if cur > base {
                regressions.push(Regression {
                    lint: lint.clone(),
                    file: file.clone(),
                    baseline: base,
                    current: cur,
                });
            } else if cur < base {
                improvements.push(Improvement {
                    lint: lint.clone(),
                    file: file.clone(),
                    baseline: base,
                    current: cur,
                });
            }
        }
        (regressions, improvements)
    }

    /// Serialize with stable ordering and 2-space indentation.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"lints\": {");
        let mut first_lint = true;
        for (lint, files) in &self.counts {
            if !first_lint {
                s.push(',');
            }
            first_lint = false;
            let _ = write!(s, "\n    {}: {{", quote(lint));
            let mut first_file = true;
            for (file, count) in files {
                if !first_file {
                    s.push(',');
                }
                first_file = false;
                let _ = write!(s, "\n      {}: {count}", quote(file));
            }
            s.push_str("\n    }");
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Parse the baseline format. Tolerant of whitespace, strict about
    /// structure.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        let root = p.value()?;
        let JsonValue::Object(root) = root else {
            return Err("baseline root must be an object".to_string());
        };
        let lints = root
            .iter()
            .find(|(k, _)| k == "lints")
            .map(|(_, v)| v)
            .ok_or("baseline missing \"lints\" key")?;
        let JsonValue::Object(lints) = lints else {
            return Err("\"lints\" must be an object".to_string());
        };
        let mut counts = BTreeMap::new();
        for (lint, files) in lints {
            let JsonValue::Object(files) = files else {
                return Err(format!("lint {lint:?} must map files to counts"));
            };
            let mut by_file = BTreeMap::new();
            for (file, n) in files {
                let JsonValue::Number(n) = n else {
                    return Err(format!("count for {file:?} must be a number"));
                };
                by_file.insert(file.clone(), *n);
            }
            counts.insert(lint.clone(), by_file);
        }
        Ok(Baseline { counts })
    }
}

fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Just enough JSON: objects, strings, and non-negative integers.
enum JsonValue {
    Object(Vec<(String, JsonValue)>),
    Number(usize),
}

struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{c}` at offset {}, found {:?}",
                self.pos,
                self.chars.get(self.pos)
            ))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some('{') => self.object(),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.consume('{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.chars.get(self.pos) == Some(&'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            let key = self.string()?;
            self.consume(':')?;
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.chars.get(self.pos) {
                Some(',') => self.pos += 1,
                Some('}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                other => return Err(format!("expected `,` or `}}`, found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume('"')?;
        let mut out = String::new();
        while let Some(&c) = self.chars.get(self.pos) {
            self.pos += 1;
            match c {
                '"' => return Ok(out),
                '\\' => {
                    if let Some(&e) = self.chars.get(self.pos) {
                        self.pos += 1;
                        out.push(e);
                    }
                }
                c => out.push(c),
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let mut n = 0usize;
        let mut any = false;
        while let Some(c) = self.chars.get(self.pos).and_then(|c| c.to_digit(10)) {
            n = n.saturating_mul(10).saturating_add(c as usize);
            self.pos += 1;
            any = true;
        }
        if any {
            Ok(JsonValue::Number(n))
        } else {
            Err(format!("expected number at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(lint: &'static str, file: &str, line: u32) -> Finding {
        Finding {
            lint,
            file: file.to_string(),
            line,
            message: String::new(),
        }
    }

    #[test]
    fn roundtrip() {
        let fs = vec![
            finding("panic-surface", "a.rs", 1),
            finding("panic-surface", "a.rs", 2),
            finding("unordered-iteration", "b.rs", 3),
        ];
        let b = Baseline::from_findings(&fs);
        let parsed = Baseline::parse(&b.to_json()).expect("roundtrip parse");
        assert_eq!(b, parsed);
        assert_eq!(parsed.total("panic-surface"), 2);
        assert_eq!(parsed.total("unordered-iteration"), 1);
        assert_eq!(parsed.total("missing"), 0);
    }

    #[test]
    fn ratchet_accepts_old_rejects_new() {
        let old = vec![
            finding("panic-surface", "a.rs", 1),
            finding("panic-surface", "a.rs", 2),
        ];
        let base = Baseline::from_findings(&old);
        // Same debt: clean.
        let (reg, imp) = base.compare(&old);
        assert!(reg.is_empty() && imp.is_empty());
        // One fewer: improvement, not a failure.
        let (reg, imp) = base.compare(&old[..1]);
        assert!(reg.is_empty());
        assert_eq!(imp.len(), 1);
        assert_eq!(imp[0].current, 1);
        // One more in the same file: regression.
        let mut more = old.clone();
        more.push(finding("panic-surface", "a.rs", 9));
        let (reg, _) = base.compare(&more);
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].current, 3);
        // A new file regresses even if another file improved.
        let shifted = vec![finding("panic-surface", "b.rs", 1)];
        let (reg, imp) = base.compare(&shifted);
        assert_eq!(reg.len(), 1, "debt must not migrate between files");
        assert_eq!(reg[0].file, "b.rs");
        assert_eq!(imp.len(), 1);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Baseline::parse("[]").is_err());
        assert!(Baseline::parse("{\"version\": 1}").is_err());
        assert!(Baseline::parse("{\"lints\": {\"x\": 3}}").is_err());
    }
}
