//! `lips-analyze` — the workspace determinism & panic-safety lint engine.
//!
//! PR 5 made the epoch pipeline bitwise deterministic at any thread count,
//! but only *dynamic* checks (1-vs-4-thread proptests) enforced it. This
//! crate enforces the same contracts *statically*: a hand-rolled lexer
//! ([`lexer`]) feeds lightweight syntactic matchers ([`scan`]) that walk
//! every workspace source file and report violations of the lint catalog
//! ([`lints`]). Existing debt is pinned by a committed ratchet baseline
//! ([`baseline`]); CI fails on any *new* finding.
//!
//! Findings are suppressible only by an in-source reviewed comment:
//!
//! ```text
//! // lips-allow(wall-clock-in-solver): report field, never feeds results
//! ```
//!
//! See `DESIGN.md` §3.12 for the catalog rationale and the ratchet
//! workflow.

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod scan;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

pub use baseline::Baseline;
pub use scan::{FieldTable, Finding};

/// Engine-level failure (I/O, bad baseline, bad layout).
#[derive(Debug)]
pub enum AnalyzeError {
    Io(PathBuf, std::io::Error),
    BadBaseline(PathBuf, String),
    NoWorkspace(PathBuf),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Io(p, e) => write!(f, "{}: {e}", p.display()),
            AnalyzeError::BadBaseline(p, e) => write!(f, "{}: {e}", p.display()),
            AnalyzeError::NoWorkspace(p) => write!(
                f,
                "{}: not a workspace root (no Cargo.toml with crates/)",
                p.display()
            ),
        }
    }
}

impl std::error::Error for AnalyzeError {}

/// Everything one workspace sweep produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed findings, in (file, line) order.
    pub findings: Vec<Finding>,
    /// Findings silenced by valid `lips-allow` comments.
    pub suppressed: Vec<Finding>,
    /// Broken `lips-allow` comments: `(file, line, problem)`. These fail
    /// even a ratchet check — a suppression must parse to count.
    pub malformed_allows: Vec<(String, u32, String)>,
    /// Valid allows that matched nothing: `(file, line, lint)`.
    pub unused_allows: Vec<(String, u32, String)>,
    pub files_scanned: usize,
}

impl Report {
    /// Unsuppressed finding count per lint, in catalog order.
    pub fn counts_by_lint(&self) -> BTreeMap<&'static str, usize> {
        let mut m: BTreeMap<&'static str, usize> =
            lints::LINTS.iter().map(|l| (l.name, 0)).collect();
        for f in &self.findings {
            *m.entry(f.lint).or_default() += 1;
        }
        m
    }
}

/// Name of the baseline file at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// The source roots a sweep covers, relative to the workspace root:
/// `src/` of every crate under `crates/`, plus the root crate's `src/`.
/// Integration tests, benches, examples, and the vendored shims are out
/// of scope — the lints govern library code.
fn source_files(root: &Path) -> Result<Vec<(String, PathBuf)>, AnalyzeError> {
    let mut out: Vec<(String, PathBuf)> = Vec::new();
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() || !root.join("Cargo.toml").is_file() {
        return Err(AnalyzeError::NoWorkspace(root.to_path_buf()));
    }
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    for entry in read_dir(&crates_dir)? {
        if entry.is_dir() && entry.join("src").is_dir() {
            crate_dirs.push(entry);
        }
    }
    crate_dirs.sort();
    for dir in crate_dirs {
        let name = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        collect_rs(&dir.join("src"), &name, &mut out)?;
    }
    // The root `lips` crate.
    if root.join("src").is_dir() {
        collect_rs(&root.join("src"), "lips", &mut out)?;
    }
    out.sort();
    Ok(out)
}

fn read_dir(dir: &Path) -> Result<Vec<PathBuf>, AnalyzeError> {
    let rd = std::fs::read_dir(dir).map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
    let mut out = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| AnalyzeError::Io(dir.to_path_buf(), e))?;
        out.push(entry.path());
    }
    out.sort();
    Ok(out)
}

fn collect_rs(
    dir: &Path,
    crate_name: &str,
    out: &mut Vec<(String, PathBuf)>,
) -> Result<(), AnalyzeError> {
    for path in read_dir(dir)? {
        if path.is_dir() {
            collect_rs(&path, crate_name, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push((crate_name.to_string(), path));
        }
    }
    Ok(())
}

/// Run the full two-pass sweep over the workspace at `root`.
pub fn analyze_workspace(root: &Path) -> Result<Report, AnalyzeError> {
    let files = source_files(root)?;

    // Pass 1: workspace-wide field table, so cross-file field accesses
    // resolve their declared types.
    let mut table = FieldTable::default();
    let mut sources: Vec<(String, String, String)> = Vec::new(); // (crate, rel, text)
    for (crate_name, path) in &files {
        let text = std::fs::read_to_string(path).map_err(|e| AnalyzeError::Io(path.clone(), e))?;
        scan::collect_fields(&text, &mut table);
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((crate_name.clone(), rel, text));
    }
    table.resolve_conflicts();

    // Pass 2: lint every file against the combined tables.
    let mut report = Report {
        files_scanned: sources.len(),
        ..Report::default()
    };
    for (crate_name, rel, text) in &sources {
        let fa = scan::analyze_source(crate_name, rel, text, &table);
        report.findings.extend(fa.findings);
        report.suppressed.extend(fa.suppressed);
        report.malformed_allows.extend(
            fa.malformed_allows
                .into_iter()
                .map(|(l, m)| (rel.clone(), l, m)),
        );
        report.unused_allows.extend(
            fa.unused_allows
                .into_iter()
                .map(|(l, n)| (rel.clone(), l, n)),
        );
    }
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.lint).cmp(&(&b.file, b.line, b.lint)));
    Ok(report)
}

/// Load the committed baseline from `root`.
pub fn load_baseline(root: &Path) -> Result<Baseline, AnalyzeError> {
    let path = root.join(BASELINE_FILE);
    let text = std::fs::read_to_string(&path).map_err(|e| AnalyzeError::Io(path.clone(), e))?;
    Baseline::parse(&text).map_err(|e| AnalyzeError::BadBaseline(path, e))
}

/// Locate the workspace root: `$LIPS_WORKSPACE_ROOT`, else walk up from
/// `start` to the first directory holding both `Cargo.toml` and `crates/`.
pub fn find_root(start: &Path) -> Result<PathBuf, AnalyzeError> {
    if let Ok(env_root) = std::env::var("LIPS_WORKSPACE_ROOT") {
        return Ok(PathBuf::from(env_root));
    }
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(AnalyzeError::NoWorkspace(start.to_path_buf()));
        }
    }
}
