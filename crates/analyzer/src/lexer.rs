//! A minimal Rust lexer — just enough fidelity to run syntactic lints.
//!
//! The goal is *not* to parse Rust. It is to turn source text into a token
//! stream where string/char/comment contents can never be mistaken for
//! code, with accurate line numbers for every token. That is the entire
//! foundation the matchers in [`crate::scan`] need: everything else
//! (test-span detection, type heuristics) is pattern matching over this
//! stream.
//!
//! Handled faithfully: line and (nested) block comments, string literals
//! with escapes, raw strings with any hash depth, byte/raw-byte strings,
//! char literals vs. lifetimes, numeric literals including exponents, raw
//! identifiers. Multi-character operators are joined only where a lint
//! needs them as one token (`::`, `+=`, `->`, `=>`, `..`, comparison and
//! boolean operators); shift operators are deliberately left split so
//! generic argument lists like `Vec<Vec<u8>>` keep their closing angles.

/// What kind of lexeme a [`Tok`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (the matchers don't distinguish).
    Ident,
    /// Punctuation / operator, possibly multi-character (`::`, `+=`).
    Punct,
    /// Numeric literal.
    Num,
    /// String literal of any flavor (escaped, raw, byte).
    Str,
    /// Char literal (`'a'`, `'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (doc comments included). Text keeps the `//` prefix.
    LineComment,
    /// `/* … */` comment (nested comments folded into one token).
    BlockComment,
}

/// One lexeme with its 1-based source line.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this token the exact identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this token the exact punctuation `s`?
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }
}

/// Operators joined into a single token (longest match first).
const JOINED: &[&str] = &[
    "..=", "::", "->", "=>", "+=", "-=", "*=", "/=", "%=", "==", "!=", "<=", ">=", "&&", "||", "..",
];

/// Lex `src` into tokens. Never fails: unterminated literals are closed at
/// end of input, and any byte the lexer does not recognize becomes a
/// single-character `Punct`. Lints prefer a slightly lossy stream over
/// refusing to analyze a file.
pub fn lex(src: &str) -> Vec<Tok> {
    Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    }
    .run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Tok>,
}

impl Lexer {
    fn peek(&self, off: usize) -> Option<char> {
        self.chars.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn push(&mut self, kind: TokKind, text: String, line: u32) {
        self.out.push(Tok { kind, text, line });
    }

    fn run(mut self) -> Vec<Tok> {
        while let Some(c) = self.peek(0) {
            let line = self.line;
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(line),
                '/' if self.peek(1) == Some('*') => self.block_comment(line),
                '"' => self.string(line),
                'b' if self.peek(1) == Some('"') => {
                    self.bump();
                    self.string(line);
                }
                'b' if self.peek(1) == Some('r') && matches!(self.peek(2), Some('"' | '#')) => {
                    self.bump();
                    self.bump();
                    self.raw_string(line);
                }
                'r' if matches!(self.peek(1), Some('"' | '#')) && self.is_raw_string_start() => {
                    self.bump();
                    self.raw_string(line);
                }
                '\'' => self.char_or_lifetime(line),
                c if c.is_ascii_digit() => self.number(line),
                c if c.is_alphabetic() || c == '_' => self.ident(line),
                _ => self.punct(line),
            }
        }
        self.out
    }

    /// `r` followed by hashes must reach a quote to be a raw string;
    /// otherwise it's a raw identifier like `r#try` or a plain ident.
    fn is_raw_string_start(&self) -> bool {
        let mut off = 1;
        while self.peek(off) == Some('#') {
            off += 1;
        }
        self.peek(off) == Some('"')
    }

    fn line_comment(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            text.push(c);
            self.bump();
        }
        self.push(TokKind::LineComment, text, line);
    }

    fn block_comment(&mut self, line: u32) {
        let mut text = String::new();
        let mut depth = 0usize;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                text.push_str("/*");
                self.bump();
                self.bump();
            } else if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                text.push_str("*/");
                self.bump();
                self.bump();
                if depth == 0 {
                    break;
                }
            } else {
                text.push(c);
                self.bump();
            }
        }
        self.push(TokKind::BlockComment, text, line);
    }

    fn string(&mut self, line: u32) {
        let mut text = String::new();
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    // Skip the escaped char so `\"` can't close the string.
                    self.bump();
                }
                '"' => break,
                _ => text.push(c),
            }
        }
        self.push(TokKind::Str, text, line);
    }

    /// Raw string, cursor on the first `#` or the quote: `r` (and `b`)
    /// already consumed.
    fn raw_string(&mut self, line: u32) {
        let mut hashes = 0usize;
        while self.peek(0) == Some('#') {
            hashes += 1;
            self.bump();
        }
        self.bump(); // opening quote
        let mut text = String::new();
        while let Some(c) = self.bump() {
            if c == '"' {
                let mut matched = 0;
                while matched < hashes && self.peek(0) == Some('#') {
                    matched += 1;
                    self.bump();
                }
                if matched == hashes {
                    break;
                }
                text.push('"');
                for _ in 0..matched {
                    text.push('#');
                }
            } else {
                text.push(c);
            }
        }
        self.push(TokKind::Str, text, line);
    }

    fn char_or_lifetime(&mut self, line: u32) {
        self.bump(); // opening quote
        match self.peek(0) {
            // Escaped char literal: `'\n'`, `'\\'`, `'\u{1f}'`.
            Some('\\') => {
                let mut text = String::from("\\");
                self.bump();
                while let Some(c) = self.bump() {
                    if c == '\'' {
                        break;
                    }
                    text.push(c);
                }
                self.push(TokKind::Char, text, line);
            }
            // Plain char literal: exactly one char then a closing quote.
            Some(c) if self.peek(1) == Some('\'') => {
                self.bump();
                self.bump();
                self.push(TokKind::Char, c.to_string(), line);
            }
            // Lifetime: `'a`, `'static`, `'_`.
            _ => {
                let mut text = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.push(TokKind::Lifetime, text, line);
            }
        }
    }

    fn number(&mut self, line: u32) {
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
                // `1e-3` / `1E+9`: a sign directly after the exponent
                // marker belongs to the literal.
                if (c == 'e' || c == 'E')
                    && matches!(self.peek(0), Some('+' | '-'))
                    && !text.starts_with("0x")
                    && !text.starts_with("0b")
                {
                    if let Some(s) = self.bump() {
                        text.push(s);
                    }
                }
            } else if c == '.' && matches!(self.peek(1), Some(d) if d.is_ascii_digit()) {
                // Fractional part — but never eat `..` ranges or methods.
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Num, text, line);
    }

    fn ident(&mut self, line: u32) {
        let mut text = String::new();
        // Raw identifier prefix.
        if self.peek(0) == Some('r') && self.peek(1) == Some('#') {
            self.bump();
            self.bump();
        }
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokKind::Ident, text, line);
    }

    fn punct(&mut self, line: u32) {
        for op in JOINED {
            if self
                .chars
                .get(self.pos..self.pos + op.len())
                .is_some_and(|w| w.iter().collect::<String>() == **op)
            {
                for _ in 0..op.len() {
                    self.bump();
                }
                self.push(TokKind::Punct, (*op).to_string(), line);
                return;
            }
        }
        if let Some(c) = self.bump() {
            self.push(TokKind::Punct, c.to_string(), line);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_hide_code() {
        let toks = kinds(r#"let s = "x.unwrap()"; y.unwrap()"#);
        let strs: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        let unwraps = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Ident && t == "unwrap")
            .count();
        assert_eq!(unwraps, 1, "only the real unwrap outside the string");
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r##"let s = r#"a "quoted" b"#; x"##);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Str && t == "a \"quoted\" b"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "x"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ code");
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokKind::BlockComment)
                .count(),
            1
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokKind::Ident && t == "code"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds(r"let c = 'x'; let e = '\n'; fn f<'a>(v: &'a str) {}");
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(),
            2
        );
    }

    #[test]
    fn numbers_with_exponents_and_ranges() {
        let toks = kinds("1.5e-3 + 2..10 + 0x1f");
        let nums: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, vec!["1.5e-3", "2", "10", "0x1f"]);
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == ".."));
    }

    #[test]
    fn joined_operators() {
        let toks = kinds("a += b; c::d(); e -> f");
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "+="));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "::"));
        assert!(toks.iter().any(|(k, t)| *k == TokKind::Punct && t == "->"));
    }

    #[test]
    fn generics_keep_single_angles() {
        let toks = kinds("Vec<Vec<u8>>");
        let closes = toks
            .iter()
            .filter(|(k, t)| *k == TokKind::Punct && t == ">")
            .count();
        assert_eq!(closes, 2);
    }

    #[test]
    fn line_numbers_track_newlines() {
        let toks = lex("a\nb\n\nc");
        let lines: Vec<u32> = toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 4]);
    }
}
