//! # lips-par — a dependency-free scoped worker pool with deterministic reduce
//!
//! The epoch pipeline's remaining hot paths — per-arc reduced-cost pricing,
//! per-job model assembly, and the KKT certification residual passes — are
//! embarrassingly parallel over independent (job, machine, store) arcs, but
//! the scheduler's correctness story (certified optima, byte-identical
//! replays) cannot tolerate run-to-run nondeterminism. This crate provides
//! the one primitive both needs: fork work across [`std::thread::scope`]
//! workers, then merge results **in index order**, so the output of every
//! operation is bitwise identical at any thread count.
//!
//! Two rules make that guarantee hold:
//!
//! * per-*item* operations ([`Pool::par_map`], [`Pool::par_map_with`],
//!   [`Pool::par_filter_indices_with`]) compute each item's result
//!   independently and concatenate per-worker outputs in worker (= index)
//!   order — no item's value can depend on scheduling;
//! * *reductions* over non-associative arithmetic (floating-point sums in
//!   the KKT certificate) go through [`Pool::par_chunk_fold`], whose chunk
//!   boundaries depend only on the fixed `chunk_size` — never on the thread
//!   count — and whose partial results are folded left-to-right in chunk
//!   order. Changing `Pool::new(1)` to `Pool::new(8)` changes which OS
//!   thread computes a chunk, not the chunk set or the fold order.
//!
//! There are no persistent worker threads: each call spawns scoped workers
//! and joins them before returning (`unsafe_code = "forbid"` holds — scoped
//! borrows need no `'static` laundering). Spawn cost is ~10 µs per worker,
//! amortized over thousands of arcs (or dozens of heavy per-job blocks) per
//! call; callers with sub-millisecond workloads should pass
//! [`Pool::serial`], which runs everything inline on the caller thread
//! through the same chunking and merge order.

use std::num::NonZeroUsize;

/// Environment variable overriding the default worker count.
pub const THREADS_ENV: &str = "LIPS_THREADS";

/// Worker count for this process: `LIPS_THREADS` if set to a positive
/// integer, otherwise [`std::thread::available_parallelism`] (1 if even
/// that is unknown).
pub fn default_threads() -> usize {
    std::env::var(THREADS_ENV)
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, NonZeroUsize::get))
}

/// A scoped worker pool: a thread-count budget plus the fork/merge
/// strategies documented at the crate root. `Copy` on purpose — a `Pool`
/// is configuration, not a resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

impl Pool {
    /// A pool running on `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A single-worker pool: everything runs inline on the caller thread,
    /// through the same chunking and merge order as any other width.
    pub fn serial() -> Self {
        Pool::new(1)
    }

    /// The process-default pool ([`default_threads`]).
    pub fn from_env() -> Self {
        Pool::new(default_threads())
    }

    /// Worker budget of this pool.
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Split `0..len` into at most `self.threads` contiguous ranges of
    /// near-equal size. Items may be arbitrarily heavy (a whole job's
    /// column block, a 256-row chunk), so no minimum-items cutoff is
    /// applied — granularity is the caller's choice, and a one-item split
    /// degrades to an inline call with no spawn at all.
    fn ranges(self, len: usize) -> Vec<(usize, usize)> {
        let workers = self.threads.min(len.max(1));
        (0..workers)
            .map(|w| (w * len / workers, (w + 1) * len / workers))
            .collect()
    }

    /// Run `work` over each range, first range on the caller thread and the
    /// rest on scoped workers, returning per-range outputs in range order.
    fn fork<R: Send>(
        self,
        ranges: &[(usize, usize)],
        work: impl Fn(usize, usize) -> R + Sync,
    ) -> Vec<R> {
        if ranges.len() <= 1 {
            return ranges.iter().map(|&(lo, hi)| work(lo, hi)).collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = ranges[1..]
                .iter()
                .map(|&(lo, hi)| {
                    s.spawn({
                        let work = &work;
                        move || work(lo, hi)
                    })
                })
                .collect();
            let first = work(ranges[0].0, ranges[0].1);
            let mut out = Vec::with_capacity(ranges.len());
            out.push(first);
            for h in handles {
                out.push(h.join().expect("lips-par worker panicked"));
            }
            out
        })
    }

    /// Map every item to a result, in input order.
    pub fn par_map<T: Sync, R: Send>(
        self,
        items: &[T],
        f: impl Fn(usize, &T) -> R + Sync,
    ) -> Vec<R> {
        self.par_map_with(items, || (), |(), i, t| f(i, t))
    }

    /// [`Pool::par_map`] with a per-worker scratch value: `scratch` runs
    /// once per worker and the result is threaded through every call that
    /// worker makes — reusable buffers without per-item allocation.
    pub fn par_map_with<S, T: Sync, R: Send>(
        self,
        items: &[T],
        scratch: impl Fn() -> S + Sync,
        f: impl Fn(&mut S, usize, &T) -> R + Sync,
    ) -> Vec<R> {
        let parts = self.fork(&self.ranges(items.len()), |lo, hi| {
            let mut s = scratch();
            items[lo..hi]
                .iter()
                .enumerate()
                .map(|(off, t)| f(&mut s, lo + off, t))
                .collect::<Vec<R>>()
        });
        let mut out = Vec::with_capacity(items.len());
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Indices `i ∈ 0..n` for which `pred` holds, ascending. `pred` gets a
    /// per-worker scratch value, making this the shape of a pricing pass:
    /// fill a reusable buffer, test the candidate, keep the survivors in
    /// index order regardless of which worker priced them.
    pub fn par_filter_indices_with<S>(
        self,
        n: usize,
        scratch: impl Fn() -> S + Sync,
        pred: impl Fn(&mut S, usize) -> bool + Sync,
    ) -> Vec<usize> {
        let parts = self.fork(&self.ranges(n), |lo, hi| {
            let mut s = scratch();
            (lo..hi)
                .filter(|&i| pred(&mut s, i))
                .collect::<Vec<usize>>()
        });
        let mut out = Vec::new();
        for part in parts {
            out.extend(part);
        }
        out
    }

    /// Chunked map-reduce whose result is independent of the worker count:
    /// `items` is cut into chunks of exactly `chunk_size` (last one
    /// shorter), `map` turns each chunk into a partial result, and `fold`
    /// combines the partials **left-to-right in chunk order**. Use this —
    /// not per-worker accumulation — whenever the combine step is not
    /// exactly associative (floating-point sums): the chunk set and fold
    /// order are fixed by `chunk_size` alone, so `Pool::new(1)` and
    /// `Pool::new(64)` produce bitwise-identical results.
    ///
    /// `map` receives `(chunk_index, item_offset, chunk)`.
    pub fn par_chunk_fold<T: Sync, R: Send, A>(
        self,
        items: &[T],
        chunk_size: usize,
        map: impl Fn(usize, usize, &[T]) -> R + Sync,
        init: A,
        mut fold: impl FnMut(A, R) -> A,
    ) -> A {
        let chunk_size = chunk_size.max(1);
        let n_chunks = items.len().div_ceil(chunk_size);
        // Workers take contiguous runs of whole chunks so concatenating
        // per-worker outputs yields the partials in chunk order.
        let chunk_ranges = self.ranges(n_chunks);
        let parts = self.fork(&chunk_ranges, |clo, chi| {
            (clo..chi)
                .map(|c| {
                    let lo = c * chunk_size;
                    let hi = (lo + chunk_size).min(items.len());
                    map(c, lo, &items[lo..hi])
                })
                .collect::<Vec<R>>()
        });
        let mut acc = init;
        for part in parts {
            for r in part {
                acc = fold(acc, r);
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order_at_any_width() {
        let items: Vec<usize> = (0..1000).collect();
        let serial = Pool::serial().par_map(&items, |i, &x| i * 31 + x);
        for threads in [2, 3, 8, 64] {
            let par = Pool::new(threads).par_map(&items, |i, &x| i * 31 + x);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn par_map_with_reuses_worker_scratch() {
        // The scratch buffer must be created once per worker, not per item:
        // record its capacity growth — a fresh Vec per item would stay tiny.
        let items: Vec<usize> = (0..512).collect();
        let out = Pool::new(4).par_map_with(&items, Vec::<usize>::new, |buf, i, &x| {
            buf.clear();
            buf.extend(0..x % 7);
            i + buf.len()
        });
        let expect: Vec<usize> = items.iter().map(|&x| x + x % 7).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn filter_indices_ascending_and_width_independent() {
        let n = 4097;
        let keep = |_s: &mut (), i: usize| i.is_multiple_of(13) || i % 97 == 3;
        let serial = Pool::serial().par_filter_indices_with(n, || (), keep);
        assert!(serial.windows(2).all(|w| w[0] < w[1]), "not ascending");
        for threads in [2, 5, 16] {
            let par = Pool::new(threads).par_filter_indices_with(n, || (), keep);
            assert_eq!(serial, par, "threads={threads}");
        }
    }

    #[test]
    fn chunk_fold_is_bitwise_identical_across_widths() {
        // A sum of floats whose value depends on association order: the
        // fixed chunking must make every width agree bit for bit.
        let items: Vec<f64> = (0..10_000)
            .map(|i| (f64::from(i) * 0.1).sin() * 1e-3 + 1.0)
            .collect();
        let sum = |pool: Pool| {
            pool.par_chunk_fold(
                &items,
                256,
                |_c, _off, chunk| chunk.iter().sum::<f64>(),
                0.0f64,
                |a, b| a + b,
            )
        };
        let s1 = sum(Pool::serial());
        for threads in [2, 4, 32] {
            assert_eq!(
                s1.to_bits(),
                sum(Pool::new(threads)).to_bits(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn chunk_fold_passes_offsets_and_handles_ragged_tail() {
        let items: Vec<u64> = (0..103).collect();
        let total = Pool::new(3).par_chunk_fold(
            &items,
            10,
            |c, off, chunk| {
                assert_eq!(off, c * 10);
                assert!(chunk.len() == 10 || (c == 10 && chunk.len() == 3));
                chunk.iter().sum::<u64>()
            },
            0u64,
            |a, b| a + b,
        );
        assert_eq!(total, 103 * 102 / 2);
    }

    #[test]
    fn empty_inputs_are_fine() {
        let empty: [u8; 0] = [];
        assert!(Pool::new(8).par_map(&empty, |_, &b| b).is_empty());
        assert!(Pool::new(8)
            .par_filter_indices_with(0, || (), |(), _| true)
            .is_empty());
        let acc = Pool::new(8).par_chunk_fold(&empty, 16, |_, _, c| c.len(), 7usize, |a, b| a + b);
        assert_eq!(acc, 7);
    }

    #[test]
    fn pool_width_is_clamped_and_env_is_read() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::from_env().threads() >= 1);
        assert!(default_threads() >= 1);
    }
}
