//! End-to-end fault-injection tests: scripted revocations, store losses,
//! repricings, and rejoins against a simple fault-aware greedy policy.
//!
//! The invariant under test everywhere: a run under faults still
//! completes every job, conserves work (executed ≥ demand — the burned
//! fraction of killed chunks is extra), and passes the full
//! [`lips_sim::validate_report`] battery.

use lips_cluster::{ec2_20_node, MachineId};
use lips_sim::{
    assert_valid, Action, FaultPlan, Placement, Scheduler, SchedulerContext, SimError, Simulation,
};
use lips_workload::{bind_workload, BoundWorkload, JobKind, JobSpec, PlacementPolicy};

/// Greedy local-first policy that respects the live topology: reads from
/// the first surviving holder and never targets a revoked machine. With
/// `max_inflight`, chunks serialize so mid-run faults always catch work
/// both before and after them.
struct FaultAwareGreedy {
    max_inflight: usize,
}

impl FaultAwareGreedy {
    fn new() -> Self {
        FaultAwareGreedy {
            max_inflight: usize::MAX,
        }
    }

    fn serialized() -> Self {
        FaultAwareGreedy { max_inflight: 1 }
    }
}

fn cheapest_live(ctx: &SchedulerContext<'_>) -> MachineId {
    ctx.cluster
        .machines
        .iter()
        .filter(|m| m.tp_ecu > 0.0)
        .min_by(|a, b| a.cpu_cost.total_cmp(&b.cpu_cost))
        .expect("at least one live machine")
        .id
}

impl Scheduler for FaultAwareGreedy {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        for j in ctx.jobs_with_work() {
            if j.running_chunks >= self.max_inflight {
                continue;
            }
            if let Some(data) = j.data {
                let chunk = j.task_mb.min(j.remaining_mb);
                // First holder with unread budget left (the engine caps
                // total reads per store at the MB placed there).
                let used = |s| {
                    ctx.reads_used
                        .and_then(|r| r.get(&(data, s)))
                        .copied()
                        .unwrap_or(0.0)
                };
                let holders = ctx.placement.stores_of(data);
                let Some(&(store, _)) = holders
                    .iter()
                    .find(|&&(s, mb)| mb - used(s) >= chunk - 1e-9)
                else {
                    continue;
                };
                let machine = match ctx.cluster.store(store).colocated {
                    Some(m) if ctx.cluster.machine(m).tp_ecu > 0.0 => m,
                    _ => cheapest_live(ctx),
                };
                return vec![Action::RunChunk {
                    job: j.id,
                    machine,
                    source: Some(store),
                    mb: chunk,
                    fixed_ecu: 0.0,
                }];
            }
            return vec![Action::RunChunk {
                job: j.id,
                machine: cheapest_live(ctx),
                source: None,
                mb: 0.0,
                fixed_ecu: j.task_fixed_ecu.min(j.remaining_fixed_ecu),
            }];
        }
        vec![]
    }

    fn name(&self) -> &str {
        "fault-aware-greedy"
    }
}

/// Fault-*unaware* twin: always runs on the holder's colocated machine,
/// dead or not.
struct NaiveGreedy;

impl Scheduler for NaiveGreedy {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        if let Some(j) = ctx.jobs_with_work().next() {
            let data = j.data.expect("test jobs carry data");
            let (store, _) = ctx.placement.stores_of(data)[0];
            let machine = ctx.cluster.store(store).colocated.expect("DataNode");
            return vec![Action::RunChunk {
                job: j.id,
                machine,
                source: Some(store),
                mb: j.task_mb.min(j.remaining_mb),
                fixed_ecu: 0.0,
            }];
        }
        vec![]
    }

    fn name(&self) -> &str {
        "naive-greedy"
    }
}

fn workload(cluster: &mut lips_cluster::Cluster) -> BoundWorkload {
    let jobs = vec![
        JobSpec::new(0, "g", JobKind::Grep, 640.0, 10),
        JobSpec::new(1, "w", JobKind::WordCount, 320.0, 5),
    ];
    bind_workload(cluster, jobs, PlacementPolicy::RoundRobin, 1)
}

/// The machine the greedy runs job 0 on: colocated with its first holder.
fn primary_machine(cluster: &lips_cluster::Cluster, bound: &BoundWorkload) -> MachineId {
    let data = bound.jobs[0].data.expect("grep has data");
    let placement = Placement::from_cluster(cluster);
    let (store, _) = placement.stores_of(data)[0];
    cluster.store(store).colocated.expect("DataNode store")
}

#[test]
fn revocation_mid_run_kills_chunks_but_loses_no_work() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    let clean = Simulation::new(&cluster, &bound)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();
    let victim = primary_machine(&cluster, &bound);

    let plan = FaultPlan::new().revoke_at(clean.makespan * 0.3, victim);
    let report = Simulation::new(&cluster, &bound)
        .with_faults(plan)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    assert_eq!(report.metrics.faults.revocations, 1);
    assert!(
        report.metrics.faults.killed_chunks >= 1,
        "no chunk was in flight"
    );
    assert!(report.metrics.faults.any());
    assert_eq!(report.outcomes.len(), 2, "every job still completes");
    // Work conservation + billing identity + meters, post-fault.
    assert_valid(&report, &cluster, &bound);
    // The burned fraction shows up as extra executed work, never missing.
    let demand: f64 = bound
        .jobs
        .iter()
        .map(lips_workload::JobSpec::total_ecu_sec_with_reduce)
        .sum();
    let executed: f64 = report.metrics.ecu_sec_by_machine.values().sum();
    assert!(
        executed >= demand - 1e-6,
        "executed {executed} < demand {demand}"
    );
    assert!(
        (executed - demand - report.metrics.faults.lost_ecu_sec).abs() < 1e-6,
        "over-execution {} must equal the burned fraction {}",
        executed - demand,
        report.metrics.faults.lost_ecu_sec
    );
}

#[test]
fn chunk_targeting_a_revoked_machine_is_rejected() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    let clean = Simulation::new(&cluster, &bound)
        .run(&mut NaiveGreedy)
        .unwrap();
    let victim = primary_machine(&cluster, &bound);

    // The naive policy keeps targeting the colocated machine after its
    // revocation — the engine must refuse, not silently run on a ghost.
    let plan = FaultPlan::new().revoke_at(clean.makespan * 0.3, victim);
    let err = Simulation::new(&cluster, &bound)
        .with_faults(plan)
        .run(&mut NaiveGreedy)
        .unwrap_err();
    assert_eq!(err, SimError::MachineRevoked(victim));
}

#[test]
fn store_loss_falls_back_to_surviving_replica() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    // Two full replicas of every block, so one store loss is survivable.
    let placement = Placement::spread_blocks_replicated(&cluster, 7, 2);
    let clean = Simulation::new(&cluster, &bound)
        .with_placement(placement.clone())
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    let data = bound.jobs[0].data.expect("grep has data");
    let (victim, _) = placement.stores_of(data)[0];
    let plan = FaultPlan::new().lose_store_at(clean.makespan * 0.2, victim);
    let report = Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .with_faults(plan)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    assert_eq!(report.metrics.faults.store_losses, 1);
    assert!(report.metrics.faults.lost_store_mb > 0.0);
    assert_eq!(report.outcomes.len(), 2);
    // The lost store holds nothing at the end of the run.
    assert!(report
        .final_placement
        .stores_of(data)
        .iter()
        .all(|&(s, _)| s != victim));
    assert_valid(&report, &cluster, &bound);
}

#[test]
fn reprice_mid_run_changes_the_bill_from_that_instant() {
    let mut cluster = ec2_20_node(0.0, 3600.0);
    let bound = workload(&mut cluster);
    let clean = Simulation::new(&cluster, &bound)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();
    let victim = primary_machine(&cluster, &bound);

    let new_price = cluster.machine(victim).cpu_cost * 5.0;
    let plan = FaultPlan::new().reprice_at(clean.makespan * 0.3, victim, new_price);
    let report = Simulation::new(&cluster, &bound)
        .with_faults(plan)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    assert_eq!(report.metrics.faults.repricings, 1);
    assert_eq!(report.outcomes.len(), 2);
    // Chunks dispatched after the hike pay the new price; the run costs
    // strictly more than the clean one.
    assert!(
        report.metrics.cpu_dollars > clean.metrics.cpu_dollars + 1e-12,
        "repriced {} vs clean {}",
        report.metrics.cpu_dollars,
        clean.metrics.cpu_dollars
    );
    // Validation still passes: the billing identity is skipped (and must
    // be — the single-price reconstruction no longer holds).
    assert_valid(&report, &cluster, &bound);
}

#[test]
fn rejoin_restores_the_machine_for_later_chunks() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    let clean = Simulation::new(&cluster, &bound)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();
    let victim = primary_machine(&cluster, &bound);

    let plan = FaultPlan::new()
        .revoke_at(clean.makespan * 0.2, victim)
        .rejoin_at(clean.makespan * 0.4, victim);
    let report = Simulation::new(&cluster, &bound)
        .with_faults(plan)
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    assert_eq!(report.metrics.faults.revocations, 1);
    assert_eq!(report.metrics.faults.rejoins, 1);
    assert_eq!(report.outcomes.len(), 2);
    assert_valid(&report, &cluster, &bound);
}

/// After a store loss, a scheduler that re-replicates a lost object from a
/// surviving holder gets the copy counted as `recopied_mb`.
struct ReplicatingGreedy {
    inner: FaultAwareGreedy,
    /// Holder count per data id at first sight; a later shrink means a
    /// store died and its share must be re-copied.
    baseline: std::collections::HashMap<lips_cluster::DataId, usize>,
    repaired: bool,
}

impl Scheduler for ReplicatingGreedy {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        if !self.repaired {
            for j in ctx.queue {
                let Some(data) = j.data else { continue };
                let holders = ctx.placement.stores_of(data);
                let seen = *self.baseline.entry(data).or_insert(holders.len());
                if holders.len() < seen {
                    // Replicas died: re-copy a surviving share elsewhere.
                    let (from, mb) = holders[0];
                    let to = ctx
                        .cluster
                        .stores
                        .iter()
                        .find(|s| s.colocated.is_some() && holders.iter().all(|&(h, _)| h != s.id))
                        .expect("a non-holding DataNode exists")
                        .id;
                    self.repaired = true;
                    return vec![Action::MoveData { data, from, to, mb }];
                }
            }
        }
        self.inner.decide(ctx)
    }

    fn name(&self) -> &str {
        "replicating-greedy"
    }
}

#[test]
fn rereplication_of_lost_data_is_metered() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    let placement = Placement::spread_blocks_replicated(&cluster, 7, 2);
    let clean = Simulation::new(&cluster, &bound)
        .with_placement(placement.clone())
        .run(&mut FaultAwareGreedy::serialized())
        .unwrap();

    let data = bound.jobs[0].data.expect("grep has data");
    let (victim, _) = placement.stores_of(data)[0];
    let plan = FaultPlan::new().lose_store_at(clean.makespan * 0.2, victim);
    let mut sched = ReplicatingGreedy {
        inner: FaultAwareGreedy::serialized(),
        baseline: std::collections::HashMap::new(),
        repaired: false,
    };
    let report = Simulation::new(&cluster, &bound)
        .with_placement(placement)
        .with_faults(plan)
        .run(&mut sched)
        .unwrap();

    assert!(sched.repaired, "the repair branch never fired");
    assert!(
        report.metrics.faults.recopied_mb > 0.0,
        "re-replication of a lost object must be metered"
    );
    assert_eq!(report.outcomes.len(), 2);
    assert_valid(&report, &cluster, &bound);
}

#[test]
fn revoking_an_idle_machine_changes_nothing_but_the_count() {
    let mut cluster = ec2_20_node(0.25, 3600.0);
    let bound = workload(&mut cluster);
    let clean = Simulation::new(&cluster, &bound)
        .run(&mut FaultAwareGreedy::new())
        .unwrap();
    // A machine the greedy never touches (no busy seconds in the clean run).
    let idle = cluster
        .machines
        .iter()
        .find(|m| {
            clean
                .metrics
                .busy_sec_by_machine
                .get(&m.id)
                .copied()
                .unwrap_or(0.0)
                == 0.0
        })
        .expect("some machine is idle under greedy")
        .id;
    let plan = FaultPlan::new().revoke_at(clean.makespan * 0.5, idle);
    let report = Simulation::new(&cluster, &bound)
        .with_faults(plan)
        .run(&mut FaultAwareGreedy::new())
        .unwrap();
    assert_eq!(report.metrics.faults.revocations, 1);
    assert_eq!(report.metrics.faults.killed_chunks, 0);
    assert!((report.metrics.cpu_dollars - clean.metrics.cpu_dollars).abs() < 1e-9);
    assert_valid(&report, &cluster, &bound);
}
