//! Simulator property tests: physical conservation laws must hold for any
//! workload under any (correct) scheduler, and the engine must reject any
//! physically impossible action.

use lips_cluster::{ec2_mixed_cluster, MachineId};
use lips_sim::{Action, Placement, Scheduler, SchedulerContext, Simulation};
use lips_workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};
use proptest::prelude::*;

/// A legal but erratic scheduler: places one pseudo-randomly sized chunk
/// of a pseudo-randomly chosen job on a pseudo-randomly chosen machine,
/// reading from a legal source, every time it is invoked. Exercises the
/// engine far outside the tidy policies' behaviour.
struct Erratic {
    state: u64,
    issued: std::collections::HashMap<(lips_cluster::DataId, lips_cluster::StoreId), f64>,
}

impl Erratic {
    fn new(seed: u64) -> Self {
        Erratic {
            state: seed.max(1),
            issued: Default::default(),
        }
    }
    fn next(&mut self, bound: u64) -> u64 {
        // xorshift: deterministic, no external RNG state.
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state % bound.max(1)
    }
}

impl Scheduler for Erratic {
    fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
        let candidates: Vec<usize> = (0..ctx.queue.len())
            .filter(|&i| ctx.queue[i].has_unassigned_work())
            .collect();
        if candidates.is_empty() {
            return vec![];
        }
        let job = &ctx.queue[candidates[self.next(candidates.len() as u64) as usize]];
        let machine = MachineId(self.next(ctx.cluster.num_machines() as u64) as usize);
        if job.remaining_mb > 1e-6 {
            let data = job.data.unwrap();
            // Pick a holder with unread budget.
            let holders: Vec<(lips_cluster::StoreId, f64)> = ctx
                .placement
                .stores_of(data)
                .into_iter()
                .map(|(s, mb)| (s, mb - self.issued.get(&(data, s)).copied().unwrap_or(0.0)))
                .filter(|&(_, un)| un > 1e-6)
                .collect();
            let Some(&(store, unread)) = holders.get(self.next(holders.len() as u64) as usize)
            else {
                return vec![];
            };
            // Chunk between 10% and 100% of a natural task.
            let frac = (self.next(10) + 1) as f64 / 10.0;
            let mb = (job.task_mb * frac).min(job.remaining_mb).min(unread);
            *self.issued.entry((data, store)).or_default() += mb;
            vec![Action::RunChunk {
                job: job.id,
                machine,
                source: Some(store),
                mb,
                fixed_ecu: 0.0,
            }]
        } else {
            let ecu = (job.task_fixed_ecu * ((self.next(10) + 1) as f64 / 10.0))
                .min(job.remaining_fixed_ecu);
            vec![Action::RunChunk {
                job: job.id,
                machine,
                source: None,
                mb: 0.0,
                fixed_ecu: ecu,
            }]
        }
    }
    fn name(&self) -> &str {
        "erratic"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation: whatever legal schedule the erratic policy produces,
    /// executed ECU-seconds equal workload demand, every job completes,
    /// and money is an exact function of work and transfers.
    #[test]
    fn erratic_scheduler_conserves_work_and_money(
        seed in 1u64..5000,
        nodes in 4usize..24,
        c1 in 0.0f64..0.6,
        njobs in 1usize..5,
    ) {
        let mut cluster = ec2_mixed_cluster(nodes, c1, 1e9, seed);
        let jobs: Vec<JobSpec> = (0..njobs)
            .map(|i| {
                let kind = [JobKind::Grep, JobKind::Stress2, JobKind::WordCount, JobKind::Pi][i % 4];
                let mb = if kind == JobKind::Pi { 0.0 } else { 256.0 * (i + 1) as f64 };
                JobSpec::new(i, format!("j{i}"), kind, mb, 4 * (i as u32 + 1))
            })
            .collect();
        let demand: f64 = jobs.iter().map(lips_workload::JobSpec::total_ecu_sec).sum();
        let bound = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, seed);
        let placement = Placement::spread_blocks(&cluster, seed);
        let report = Simulation::new(&cluster, &bound)
            .with_placement(placement)
            .run(&mut Erratic::new(seed))
            .unwrap();

        prop_assert_eq!(report.outcomes.len(), njobs);
        let executed: f64 = report.metrics.ecu_sec_by_machine.values().sum();
        prop_assert!((executed - demand).abs() < 1e-3,
            "executed {executed} vs demand {demand}");
        // CPU dollars = Σ per-machine work × price, exactly.
        let expect: f64 = report
            .metrics
            .ecu_sec_by_machine
            .iter()
            .map(|(m, e)| cluster.machine(*m).cpu_dollars(*e))
            .sum();
        prop_assert!((report.metrics.cpu_dollars - expect).abs() < 1e-9);
        // Makespan is the last completion.
        let last = report.outcomes.iter().map(|o| o.completed).fold(0.0f64, f64::max);
        prop_assert!((report.makespan - last).abs() < 1e-9);
        // No read was billed below zero, no locality counter lost.
        prop_assert!(report.metrics.read_dollars >= 0.0);
        let chunks: usize = report.metrics.chunks_by_locality.iter().sum::<usize>()
            + report.metrics.inputless_chunks;
        prop_assert_eq!(chunks, report.outcomes.iter().map(|o| o.chunks).sum::<usize>());
    }

    /// Replicated placements only improve (or preserve) locality for the
    /// same erratic decision stream — more replicas, never fewer options.
    #[test]
    fn replication_never_reduces_available_data(
        seed in 1u64..1000,
        replicas in 1usize..4,
    ) {
        let mut cluster = ec2_mixed_cluster(10, 0.5, 1e9, seed);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 512.0, 8)];
        let bound = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, seed);
        let data = bound.jobs[0].data.unwrap();
        let p = Placement::spread_blocks_replicated(&cluster, seed, replicas);
        let total: f64 = p.stores_of(data).iter().map(|&(_, mb)| mb).sum();
        prop_assert!((total - 512.0 * replicas as f64).abs() < 1e-6);
        // Every holder is a DataNode.
        for (s, _) in p.stores_of(data) {
            prop_assert!(cluster.store(s).colocated.is_some());
        }
    }
}
