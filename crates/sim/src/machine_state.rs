//! Per-machine runtime state: slot occupancy.

use lips_cluster::Machine;

use crate::Time;

/// Slot occupancy of one machine.
#[derive(Debug, Clone)]
pub struct MachineState {
    /// Time each slot becomes free (≤ now means free now).
    slot_free_at: Vec<Time>,
}

impl MachineState {
    pub fn new(machine: &Machine) -> Self {
        MachineState {
            slot_free_at: vec![0.0; machine.slots as usize],
        }
    }

    pub fn slots(&self) -> usize {
        self.slot_free_at.len()
    }

    /// Number of slots free at `now`.
    pub fn free_slots(&self, now: Time) -> usize {
        self.slot_free_at.iter().filter(|&&t| t <= now).count()
    }

    /// Slot index that frees earliest (deterministic: lowest index wins
    /// ties).
    pub fn earliest_slot(&self) -> (u32, Time) {
        let (idx, t) = self
            .slot_free_at
            .iter()
            .enumerate()
            .min_by(|(i, a), (j, b)| a.total_cmp(b).then(i.cmp(j)))
            .expect("machines have at least one slot");
        (idx as u32, *t)
    }

    /// Occupy `slot` until `until`.
    pub fn occupy(&mut self, slot: u32, until: Time) {
        let t = &mut self.slot_free_at[slot as usize];
        assert!(until >= *t, "slot booked backwards: {until} < {t}");
        *t = until;
    }

    /// Number of slots still occupied at `t`.
    pub fn busy_slots(&self, t: Time) -> usize {
        self.slot_free_at.iter().filter(|&&f| f > t).count()
    }

    /// Free every slot no later than `now` (machine revocation: the
    /// chunks that had the slots booked were killed). Slots already free
    /// earlier keep their earlier time.
    pub fn release_all(&mut self, now: Time) {
        for t in &mut self.slot_free_at {
            *t = t.min(now);
        }
    }

    /// When the machine is completely idle.
    pub fn idle_at(&self) -> Time {
        self.slot_free_at.iter().fold(0.0f64, |a, &b| a.max(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_cluster::{InstanceType, Machine, ZoneId};

    fn c1_state() -> MachineState {
        let m = Machine::from_instance(0, "m", ZoneId(0), InstanceType::C1_MEDIUM, 0.5, 3600.0);
        MachineState::new(&m)
    }

    #[test]
    fn slots_match_instance() {
        assert_eq!(c1_state().slots(), 2);
    }

    #[test]
    fn occupancy_tracking() {
        let mut s = c1_state();
        assert_eq!(s.free_slots(0.0), 2);
        s.occupy(0, 100.0);
        assert_eq!(s.free_slots(0.0), 1);
        assert_eq!(s.free_slots(100.0), 2);
        let (slot, t) = s.earliest_slot();
        assert_eq!((slot, t), (1, 0.0));
        s.occupy(1, 50.0);
        assert_eq!(s.earliest_slot(), (1, 50.0));
        assert_eq!(s.idle_at(), 100.0);
    }

    #[test]
    fn release_all_frees_booked_slots() {
        let mut s = c1_state();
        s.occupy(0, 100.0);
        s.occupy(1, 30.0);
        s.release_all(40.0);
        // Slot 0's booking is cut to `now`; slot 1 keeps its earlier time.
        assert_eq!(s.free_slots(40.0), 2);
        assert_eq!(s.earliest_slot(), (1, 30.0));
    }

    #[test]
    #[should_panic]
    fn cannot_book_backwards() {
        let mut s = c1_state();
        s.occupy(0, 100.0);
        s.occupy(0, 50.0);
    }
}
