//! Fault injection: scripted cluster failures delivered through the event
//! loop.
//!
//! The paper's premise is spot-style volatile capacity — machines get
//! revoked mid-run, storage dies, prices move. A [`FaultPlan`] is a
//! deterministic script of such events; the engine replays it against a
//! *live* copy of the cluster so schedulers see the surviving topology at
//! every decision point ([`crate::SchedulerContext::cluster`]), while the
//! original cluster the run was configured with stays untouched.
//!
//! Semantics, matching how Hadoop-on-spot deployments actually behave:
//!
//! * **Revocation** kills every in-flight chunk on the machine. The burned
//!   cycles are billed (the provider charged for them) but the partial
//!   output is lost, so the *whole* chunk's work returns to the job queue
//!   and its read budget is refunded. The machine advertises zero capacity
//!   (`tp_ecu = 0`) until a matching rejoin.
//! * **Store loss** drops every block replica the store held. Data with
//!   surviving replicas can be re-read or re-replicated from them; the
//!   engine counts re-copies of lost objects as `recopied_mb`.
//! * **Repricing** changes a machine's `$/ECU-second` from that instant on;
//!   already-dispatched chunks keep their dispatch-time price (billing is
//!   settled at dispatch).

use lips_cluster::{MachineId, StoreId};

use crate::Time;

/// One scripted failure (or recovery).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultEvent {
    /// The machine disappears: in-flight chunks are killed, capacity drops
    /// to zero. Idempotent (revoking a dead machine is a no-op).
    RevokeMachine { machine: MachineId },
    /// A previously revoked machine returns at its original capacity.
    /// No-op if the machine was never revoked.
    RejoinMachine { machine: MachineId },
    /// Every replica on the store vanishes.
    LoseStore { store: StoreId },
    /// The machine's CPU price changes to `cpu_cost` ($/ECU-second).
    Reprice { machine: MachineId, cpu_cost: f64 },
}

/// A deterministic schedule of [`FaultEvent`]s, injected via
/// [`crate::Simulation::with_faults`].
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    events: Vec<(Time, FaultEvent)>,
}

impl FaultPlan {
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Revoke `machine` at `time`.
    #[must_use]
    pub fn revoke_at(mut self, time: Time, machine: MachineId) -> Self {
        self.push(time, FaultEvent::RevokeMachine { machine });
        self
    }

    /// Rejoin `machine` at `time` (restores its pre-revocation capacity).
    #[must_use]
    pub fn rejoin_at(mut self, time: Time, machine: MachineId) -> Self {
        self.push(time, FaultEvent::RejoinMachine { machine });
        self
    }

    /// Lose every replica on `store` at `time`.
    #[must_use]
    pub fn lose_store_at(mut self, time: Time, store: StoreId) -> Self {
        self.push(time, FaultEvent::LoseStore { store });
        self
    }

    /// Change `machine`'s CPU price to `cpu_cost` at `time`.
    #[must_use]
    pub fn reprice_at(mut self, time: Time, machine: MachineId, cpu_cost: f64) -> Self {
        self.push(time, FaultEvent::Reprice { machine, cpu_cost });
        self
    }

    fn push(&mut self, time: Time, event: FaultEvent) {
        assert!(
            time.is_finite() && time >= 0.0,
            "fault time must be finite and nonnegative: {time}"
        );
        if let FaultEvent::Reprice { cpu_cost, .. } = event {
            assert!(
                cpu_cost.is_finite() && cpu_cost >= 0.0,
                "reprice must be finite and nonnegative: {cpu_cost}"
            );
        }
        self.events.push((time, event));
    }

    /// The scripted events, in insertion order (the event queue orders by
    /// time; insertion order breaks ties).
    pub fn events(&self) -> &[(Time, FaultEvent)] {
        &self.events
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_in_order() {
        let plan = FaultPlan::new()
            .revoke_at(10.0, MachineId(3))
            .rejoin_at(20.0, MachineId(3))
            .lose_store_at(5.0, StoreId(1))
            .reprice_at(15.0, MachineId(0), 0.25);
        assert_eq!(plan.len(), 4);
        assert!(!plan.is_empty());
        assert_eq!(
            plan.events()[0],
            (
                10.0,
                FaultEvent::RevokeMachine {
                    machine: MachineId(3)
                }
            )
        );
        assert_eq!(
            plan.events()[3],
            (
                15.0,
                FaultEvent::Reprice {
                    machine: MachineId(0),
                    cpu_cost: 0.25
                }
            )
        );
    }

    #[test]
    #[should_panic]
    fn rejects_negative_time() {
        let _ = FaultPlan::new().revoke_at(-1.0, MachineId(0));
    }

    #[test]
    #[should_panic]
    fn rejects_negative_price() {
        let _ = FaultPlan::new().reprice_at(0.0, MachineId(0), -0.5);
    }
}
