//! The discrete-event simulation driver.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use lips_cluster::{Cluster, DataId, MachineId, StoreId};
use lips_workload::{BoundWorkload, JobId};

use crate::action::{Action, Scheduler, SchedulerContext};
use crate::event::{EventKind, EventQueue};
use crate::fault::{FaultEvent, FaultPlan};
use crate::job_state::{JobOutcome, PendingJob};
use crate::machine_state::MachineState;
use crate::metrics::{Metrics, SimReport};
use crate::placement::Placement;
use crate::{Time, WORK_EPS};

/// Simulation failures: all indicate a buggy or stalled *scheduler* (the
/// simulator validates every action against physical reality).
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Action referenced a job that is not queued (or already complete).
    UnknownJob(JobId),
    /// Chunk consumed more work than the job has left.
    OverAssignment(JobId),
    /// Chunk read data from a store that does not hold (enough of) it.
    MissingData {
        data: DataId,
        store: StoreId,
        wanted_mb: f64,
        present_mb: f64,
    },
    /// Move would overflow the destination store's capacity.
    StoreOverflow {
        store: StoreId,
        capacity_mb: f64,
        would_use_mb: f64,
    },
    /// A data-reading chunk did not name a source store.
    SourceRequired(JobId),
    /// Chunk targeted a machine that is currently revoked (a fault-aware
    /// scheduler must respect the live cluster's `tp_ecu == 0` marker).
    MachineRevoked(MachineId),
    /// All events drained but unfinished jobs remain — the scheduler
    /// stopped scheduling.
    Stalled { unfinished: usize },
    /// The scheduler kept emitting actions without making progress.
    ActionLoop,
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::UnknownJob(j) => write!(f, "action references unknown job {j:?}"),
            SimError::OverAssignment(j) => write!(f, "job {j:?} over-assigned"),
            SimError::MissingData {
                data,
                store,
                wanted_mb,
                present_mb,
            } => write!(
                f,
                "chunk wants {wanted_mb} MB of {data:?} at {store:?}, only {present_mb} present"
            ),
            SimError::StoreOverflow {
                store,
                capacity_mb,
                would_use_mb,
            } => {
                write!(
                    f,
                    "store {store:?} capacity {capacity_mb} MB exceeded ({would_use_mb})"
                )
            }
            SimError::SourceRequired(j) => {
                write!(f, "data-reading chunk for {j:?} lacks a source store")
            }
            SimError::MachineRevoked(m) => {
                write!(f, "chunk scheduled on revoked machine {m:?}")
            }
            SimError::Stalled { unfinished } => {
                write!(f, "simulation stalled with {unfinished} unfinished jobs")
            }
            SimError::ActionLoop => write!(f, "scheduler emitted actions without progress"),
        }
    }
}

impl std::error::Error for SimError {}

/// Straggler injection: with probability `prob`, a chunk's compute time
/// is multiplied by `slowdown` (the work and its bill are unchanged — the
/// node simply delivers its cycles slowly, as the paper's §II discussion
/// of speculative execution and LATE assumes).
#[derive(Debug, Clone, Copy)]
pub struct StragglerModel {
    pub prob: f64,
    pub slowdown: f64,
    pub seed: u64,
}

/// One simulation run, consumed by [`Simulation::run`].
pub struct Simulation<'a> {
    cluster: &'a Cluster,
    workload: &'a BoundWorkload,
    /// Initial data placement; defaults to "everything at its origin".
    initial_placement: Option<Placement>,
    /// Optional straggler injection.
    stragglers: Option<StragglerModel>,
    /// Network interference factor: a chunk's read time is multiplied by
    /// `1 + factor × (busy sibling slots at start)` — co-scheduled
    /// I/O-intensive tasks saturate the node's NIC (§I). 0 = off.
    interference: f64,
    /// Hadoop-style speculative execution: when a chunk is hit by a
    /// straggler slowdown, a backup copy launches on the globally
    /// earliest-free slot; whichever finishes first wins, the loser is
    /// killed and billed for the cycles it burned. Only meaningful with
    /// stragglers enabled.
    speculation: bool,
    /// Scripted cluster faults, replayed through the event loop.
    faults: Option<FaultPlan>,
    /// Hard event cap (runaway guard); default scales with workload size.
    pub max_events: usize,
}

/// One dispatched, not-yet-finished chunk — everything needed to unwind it
/// if its machine is revoked.
struct RunningChunk {
    job: JobId,
    machine: MachineId,
    start: Time,
    end: Time,
    /// Input MB and fixed ECU-seconds consumed from the job at dispatch.
    mb: f64,
    fixed_ecu: f64,
    /// Total ECU-seconds of the chunk.
    ecu: f64,
    /// CPU dollars billed at dispatch (at the dispatch-time price).
    cpu_dollars: f64,
    /// `(data, source)` the read budget was charged against, if any.
    read: Option<(DataId, StoreId)>,
    /// Whether the chunk's ECU went into the map-output ledger.
    tracked_map: bool,
}

/// Mutable fault-related bookkeeping threaded through the run.
#[derive(Default)]
struct FaultState {
    next_chunk: u64,
    /// In-flight chunks by id; a `ChunkDone` whose id is absent was killed.
    /// Ordered so revocation kills victims in chunk-id order.
    running: BTreeMap<u64, RunningChunk>,
    /// Objects that lost a replica to a store loss (moves of these count
    /// as re-replication traffic).
    lost_data: BTreeSet<DataId>,
    /// Original `tp_ecu` of currently revoked machines.
    revoked_ecu: BTreeMap<MachineId, f64>,
}

impl FaultState {
    fn register(&mut self, chunk: RunningChunk) -> u64 {
        let id = self.next_chunk;
        self.next_chunk += 1;
        self.running.insert(id, chunk);
        id
    }
}

impl<'a> Simulation<'a> {
    pub fn new(cluster: &'a Cluster, workload: &'a BoundWorkload) -> Self {
        let max_events = 200_000 + 2_000 * workload.jobs.len();
        Simulation {
            cluster,
            workload,
            initial_placement: None,
            stragglers: None,
            interference: 0.0,
            speculation: false,
            faults: None,
            max_events,
        }
    }

    /// Replay a [`FaultPlan`] during the run: machines get revoked (their
    /// in-flight chunks killed, the work returned to the queue) and may
    /// rejoin, stores lose their replicas, prices move. Incompatible with
    /// speculation (the paper disables speculation for LiPS; combining the
    /// two would need kill-ordering rules this engine does not define).
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Enable speculative execution (see the field docs). The paper
    /// disables this for LiPS because duplicate copies "will only result
    /// in additional unnecessary cost" — this switch lets you measure
    /// exactly that.
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculation = on;
        self
    }

    /// Enable network-interference modeling: each busy sibling slot at a
    /// chunk's start inflates its read time by `factor` (e.g. 0.5 → two
    /// concurrent readers each run 1.5× slower on the wire).
    pub fn with_interference(mut self, factor: f64) -> Self {
        assert!(factor >= 0.0);
        self.interference = factor;
        self
    }

    /// Inject stragglers: each chunk independently runs `slowdown`× slower
    /// with probability `prob` (seeded, deterministic).
    pub fn with_stragglers(mut self, prob: f64, slowdown: f64, seed: u64) -> Self {
        assert!((0.0..=1.0).contains(&prob) && slowdown >= 1.0);
        self.stragglers = Some(StragglerModel {
            prob,
            slowdown,
            seed,
        });
        self
    }

    /// Start from an explicit placement (e.g.
    /// [`Placement::spread_blocks`]) instead of the catalog origins.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.initial_placement = Some(placement);
        self
    }

    /// Execute the workload under `scheduler` and return the report.
    pub fn run(&self, scheduler: &mut dyn Scheduler) -> Result<SimReport, SimError> {
        assert!(
            !(self.speculation && self.faults.is_some()),
            "speculation and fault injection are mutually exclusive"
        );
        let cluster = self.cluster;
        // The cluster the run actually sees: faults mutate this copy
        // (revocation zeroes `tp_ecu`, repricing moves `cpu_cost`), so every
        // scheduler decision and every bill reflects the surviving topology.
        let mut live: Cluster = cluster.clone();
        let mut fstate = FaultState::default();
        let mut events = EventQueue::new();
        let mut placement = self
            .initial_placement
            .clone()
            .unwrap_or_else(|| Placement::from_cluster(cluster));
        let mut machines: Vec<MachineState> =
            cluster.machines.iter().map(MachineState::new).collect();
        let mut metrics = Metrics::default();
        let mut queue: Vec<PendingJob> = Vec::new();
        let mut outcomes: Vec<JobOutcome> = Vec::new();
        // Read budget per (data, store): total MB chunks may read from a
        // store is capped by the MB actually placed there (constraint (13)).
        let mut reads_used: BTreeMap<(DataId, StoreId), f64> = BTreeMap::new();
        // ECU-seconds of map work executed per (job, machine): determines
        // where a job's shuffle output materializes for its reduce phase.
        // Ordered so shuffle placement visits machines deterministically.
        let mut map_ecu: BTreeMap<(JobId, lips_cluster::MachineId), f64> = BTreeMap::new();
        // Synthetic data ids for shuffle outputs start above the catalog.
        let shuffle_data_base = cluster.num_data();

        let specs: BTreeMap<JobId, &lips_workload::JobSpec> =
            self.workload.jobs.iter().map(|j| (j.id, j)).collect();
        let mut arrivals_pending = 0usize;
        for job in &self.workload.jobs {
            events.push(job.arrival_s, EventKind::JobArrival(job.id));
            arrivals_pending += 1;
        }
        if let Some(plan) = &self.faults {
            for &(time, fe) in plan.events() {
                events.push(time, EventKind::Fault(fe));
            }
        }
        let epoch = scheduler.epoch();
        if let Some(e) = epoch {
            assert!(e > 0.0, "epoch must be positive");
            // First decision at t = 0 (arrivals at t = 0 are queued first
            // because they were pushed first); later decisions every `e`.
            events.push(0.0, EventKind::EpochTick);
        }

        let mut running_total = 0usize;
        let mut makespan: Time = 0.0;
        let mut processed = 0usize;
        let mut straggler_rng = self.stragglers.map(|m| {
            use rand::SeedableRng;
            (rand_chacha::ChaCha8Rng::seed_from_u64(m.seed), m)
        });

        while let Some(ev) = events.pop() {
            processed += 1;
            if processed > self.max_events {
                return Err(SimError::ActionLoop);
            }
            let now = ev.time;
            match ev.kind {
                EventKind::JobArrival(id) => {
                    arrivals_pending -= 1;
                    let spec = specs[&id];
                    let pj = PendingJob::from_spec(spec);
                    if pj.is_complete() {
                        // Degenerate zero-work job: completes instantly.
                        outcomes.push(JobOutcome {
                            id,
                            name: pj.name.clone(),
                            pool: pj.pool.clone(),
                            arrival: now,
                            completed: now,
                            chunks: 0,
                        });
                    } else {
                        queue.push(pj);
                    }
                }
                EventKind::ChunkDone { job, chunk, .. } => {
                    if fstate.running.remove(&chunk).is_none() {
                        // The chunk was killed by a revocation before it
                        // finished: its work is already back in the queue
                        // and no state changed — skip the stale completion.
                        continue;
                    }
                    running_total -= 1;
                    makespan = makespan.max(now);
                    if let Some(pos) = queue.iter().position(|j| j.id == job) {
                        queue[pos].running_chunks -= 1;
                        if queue[pos].is_complete() {
                            if queue[pos].has_pending_reduce() {
                                // Maps done: materialize the shuffle output
                                // where the maps ran and start the reduce
                                // phase. The shuffle object is a synthetic
                                // data id above the catalog range.
                                let data = DataId(shuffle_data_base + job.0);
                                let spec = queue[pos].reduce.expect("pending reduce");
                                let total: f64 = map_ecu
                                    .iter()
                                    .filter(|((j, _), _)| *j == job)
                                    .map(|(_, e)| *e)
                                    .sum();
                                let mut placed = 0.0;
                                if total > WORK_EPS {
                                    // map_ecu is ordered by (job, machine),
                                    // so this walk is already machine-sorted.
                                    let shares: Vec<(lips_cluster::MachineId, f64)> = map_ecu
                                        .iter()
                                        .filter(|((j, _), _)| *j == job)
                                        .map(|((_, m), e)| (*m, *e))
                                        .collect();
                                    for (machine, ecu) in shares {
                                        if let Some(store) = cluster.store_of_machine(machine) {
                                            let mb = spec.shuffle_mb * ecu / total;
                                            placement.add_copy(data, store, mb, now);
                                            placed += mb;
                                        }
                                    }
                                }
                                if placed < spec.shuffle_mb - WORK_EPS {
                                    // Remainder (e.g. map machines without a
                                    // co-located store): park it on the
                                    // first DataNode.
                                    let fallback = cluster
                                        .stores
                                        .iter()
                                        .find(|s| s.colocated.is_some())
                                        .map_or(StoreId(0), |s| s.id);
                                    placement.add_copy(
                                        data,
                                        fallback,
                                        spec.shuffle_mb - placed,
                                        now,
                                    );
                                }
                                queue[pos].enter_reduce(data);
                            } else {
                                let done = queue.remove(pos);
                                outcomes.push(JobOutcome {
                                    id: done.id,
                                    name: done.name,
                                    pool: done.pool,
                                    arrival: done.arrival,
                                    completed: now,
                                    chunks: done.chunks_started,
                                });
                            }
                        }
                    }
                }
                EventKind::MoveDone { .. } => {
                    makespan = makespan.max(now);
                }
                EventKind::EpochTick => {}
                EventKind::Fault(fe) => match fe {
                    FaultEvent::RevokeMachine { machine } => {
                        if live.machines[machine.0].tp_ecu > 0.0 {
                            fstate
                                .revoked_ecu
                                .insert(machine, live.machines[machine.0].tp_ecu);
                            live.machines[machine.0].tp_ecu = 0.0;
                            metrics.faults.revocations += 1;
                            // Kill every in-flight chunk on the machine: the
                            // burned fraction stays billed (the provider
                            // charged for it) but the partial output is
                            // lost, so the whole chunk's work goes back to
                            // the queue and its read budget is refunded.
                            let victims: Vec<u64> = fstate
                                .running
                                .iter()
                                .filter(|(_, c)| c.machine == machine)
                                .map(|(&id, _)| id)
                                .collect();
                            for id in victims {
                                let c = fstate.running.remove(&id).expect("victim registered");
                                let dur = c.end - c.start;
                                let frac = if dur > 0.0 {
                                    ((now - c.start) / dur).clamp(0.0, 1.0)
                                } else {
                                    1.0
                                };
                                metrics.refund_chunk(
                                    machine,
                                    c.ecu * (1.0 - frac),
                                    (c.end - now).max(0.0),
                                    c.cpu_dollars * (1.0 - frac),
                                );
                                metrics.faults.killed_chunks += 1;
                                metrics.faults.lost_ecu_sec += c.ecu * frac;
                                if let Some((data, src)) = c.read {
                                    if let Some(used) = reads_used.get_mut(&(data, src)) {
                                        *used = (*used - c.mb).max(0.0);
                                    }
                                }
                                if c.tracked_map {
                                    if let Some(e) = map_ecu.get_mut(&(c.job, machine)) {
                                        *e = (*e - c.ecu).max(0.0);
                                    }
                                }
                                let pj = queue
                                    .iter_mut()
                                    .find(|j| j.id == c.job)
                                    .expect("job with a running chunk is queued");
                                pj.restore(c.mb, c.fixed_ecu);
                                running_total -= 1;
                            }
                            machines[machine.0].release_all(now);
                        }
                    }
                    FaultEvent::RejoinMachine { machine } => {
                        if let Some(tp) = fstate.revoked_ecu.remove(&machine) {
                            live.machines[machine.0].tp_ecu = tp;
                            metrics.faults.rejoins += 1;
                        }
                    }
                    FaultEvent::LoseStore { store } => {
                        let dropped = placement.drop_store(store);
                        metrics.faults.store_losses += 1;
                        for &(data, mb) in &dropped {
                            metrics.faults.lost_store_mb += mb;
                            fstate.lost_data.insert(data);
                        }
                        // The store's read ledger dies with its contents:
                        // replicas copied there later are readable afresh.
                        reads_used.retain(|&(_, s), _| s != store);
                    }
                    FaultEvent::Reprice { machine, cpu_cost } => {
                        live.machines[machine.0].cpu_cost = cpu_cost;
                        metrics.faults.repricings += 1;
                    }
                },
            }

            // Decision point. Event-driven schedulers react to everything;
            // epoch schedulers only to their tick.
            let is_tick = matches!(ev.kind, EventKind::EpochTick);
            if epoch.is_none() || is_tick {
                // Let event-driven schedulers fill multiple slots: re-invoke
                // until they go quiet (bounded).
                for round in 0.. {
                    if round > 10_000 {
                        return Err(SimError::ActionLoop);
                    }
                    let actions = {
                        let ctx = SchedulerContext {
                            now,
                            cluster: &live,
                            placement: &placement,
                            queue: &queue,
                            machines: &machines,
                            reads_used: Some(&reads_used),
                        };
                        scheduler.decide(&ctx)
                    };
                    if actions.is_empty() {
                        break;
                    }
                    for action in actions {
                        self.apply(
                            action,
                            now,
                            &live,
                            &mut placement,
                            &mut machines,
                            &mut queue,
                            &mut metrics,
                            &mut reads_used,
                            &mut events,
                            &mut running_total,
                            &mut straggler_rng,
                            &mut map_ecu,
                            &mut fstate,
                        )?;
                    }
                    if epoch.is_some() {
                        break; // epoch schedulers decide once per tick
                    }
                }
            }

            if is_tick {
                let work_left = !queue.is_empty() || arrivals_pending > 0 || running_total > 0;
                if work_left {
                    // Re-query: adaptive schedulers may change their epoch
                    // between ticks (§V-B).
                    let next = scheduler.epoch().expect("epoch scheduler stays epochal");
                    assert!(next > 0.0, "epoch must stay positive");
                    events.push(now + next, EventKind::EpochTick);
                }
            }
        }

        if !queue.is_empty() {
            return Err(SimError::Stalled {
                unfinished: queue.len(),
            });
        }
        metrics.faults.degraded_epochs = scheduler.degraded_epochs();
        Ok(SimReport {
            scheduler: scheduler.name().to_string(),
            metrics,
            outcomes,
            makespan,
            events: processed,
            final_placement: placement,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn apply(
        &self,
        action: Action,
        now: Time,
        cluster: &Cluster,
        placement: &mut Placement,
        machines: &mut [MachineState],
        queue: &mut [PendingJob],
        metrics: &mut Metrics,
        reads_used: &mut BTreeMap<(DataId, StoreId), f64>,
        events: &mut EventQueue,
        running_total: &mut usize,
        straggler_rng: &mut Option<(rand_chacha::ChaCha8Rng, StragglerModel)>,
        map_ecu: &mut BTreeMap<(JobId, lips_cluster::MachineId), f64>,
        fstate: &mut FaultState,
    ) -> Result<(), SimError> {
        match action {
            Action::MoveData { data, from, to, mb } => {
                if mb <= WORK_EPS {
                    return Ok(());
                }
                if fstate.lost_data.contains(&data) {
                    // Re-replication traffic: this object lost a replica to
                    // a store failure and is being copied again.
                    metrics.faults.recopied_mb += mb;
                }
                if !placement.has(data, from, mb) {
                    return Err(SimError::MissingData {
                        data,
                        store: from,
                        wanted_mb: mb,
                        present_mb: placement.amount(data, from),
                    });
                }
                let cap = cluster.store(to).capacity_mb;
                let would = placement.used_mb(to) + mb;
                if would > cap + WORK_EPS {
                    return Err(SimError::StoreOverflow {
                        store: to,
                        capacity_mb: cap,
                        would_use_mb: would,
                    });
                }
                let src_ready = placement.ready_at(data, from).max(now);
                let duration = mb / cluster.bandwidth_store_store(from, to);
                let ready = src_ready + duration;
                placement.add_copy(data, to, mb, ready);
                metrics.record_move(mb, mb * cluster.ss_cost(from, to));
                events.push(ready, EventKind::MoveDone { data, to });
                Ok(())
            }
            Action::RunChunk {
                job,
                machine,
                source,
                mb,
                fixed_ecu,
            } => {
                if mb <= WORK_EPS && fixed_ecu <= WORK_EPS {
                    return Ok(());
                }
                if cluster.machine(machine).tp_ecu <= 0.0 {
                    return Err(SimError::MachineRevoked(machine));
                }
                let pj = queue
                    .iter_mut()
                    .find(|j| j.id == job)
                    .ok_or(SimError::UnknownJob(job))?;
                if mb > pj.remaining_mb + WORK_EPS || fixed_ecu > pj.remaining_fixed_ecu + WORK_EPS
                {
                    return Err(SimError::OverAssignment(job));
                }
                let mut start_floor = now;
                let mut read_dollars = 0.0;
                let mut transfer_time = 0.0;
                let mut locality = None;
                let mut read_pair = None;
                if mb > WORK_EPS {
                    let src = source.ok_or(SimError::SourceRequired(job))?;
                    let data = pj.data.expect("job with input MB has a data object");
                    read_pair = Some((data, src));
                    let used = reads_used.entry((data, src)).or_default();
                    let present = placement.amount(data, src);
                    if *used + mb > present + WORK_EPS {
                        return Err(SimError::MissingData {
                            data,
                            store: src,
                            wanted_mb: *used + mb,
                            present_mb: present,
                        });
                    }
                    *used += mb;
                    start_floor = start_floor.max(placement.ready_at(data, src));
                    read_dollars = mb * cluster.ms_cost(machine, src);
                    transfer_time = mb / cluster.bandwidth_machine_store(machine, src);
                    let level = cluster.locality_level(machine, src);
                    locality = Some(level);
                    if level > 0 {
                        metrics.remote_read_mb += mb;
                    }
                }
                let m = cluster.machine(machine);
                let ecu = mb * pj.tcp + fixed_ecu;
                let (slot, free_at) = machines[machine.0].earliest_slot();
                let start = start_floor.max(free_at);
                if self.interference > 0.0 && transfer_time > 0.0 {
                    // Siblings still busy when this chunk starts contend for
                    // the node's NIC.
                    let busy = machines[machine.0].busy_slots(start);
                    transfer_time *= 1.0 + self.interference * busy as f64;
                }
                let mut compute_time = m.slot_seconds_for(ecu);
                let mut straggled = false;
                if let Some((rng, model)) = straggler_rng {
                    use rand::Rng;
                    if rng.gen_bool(model.prob) {
                        compute_time *= model.slowdown;
                        straggled = true;
                    }
                }
                let end = start + transfer_time + compute_time;

                // Speculative execution: back up straggling chunks on the
                // globally earliest-free slot; the first finisher wins and
                // the loser is killed (its burned cycles are still billed).
                if self.speculation && straggled {
                    let backup =
                        (0..machines.len())
                            .filter(|&i| i != machine.0)
                            .min_by(|&a, &b| {
                                machines[a]
                                    .earliest_slot()
                                    .1
                                    .total_cmp(&machines[b].earliest_slot().1)
                            });
                    if let Some(bi) = backup {
                        let bm = cluster.machine(lips_cluster::MachineId(bi));
                        let (bslot, bfree) = machines[bi].earliest_slot();
                        let bstart = start_floor.max(bfree);
                        // The backup re-reads the data (billed again) and
                        // computes at clean speed.
                        let btransfer = if mb > WORK_EPS {
                            let src = source.expect("data chunk has source");
                            mb / cluster.bandwidth_machine_store(bm.id, src)
                        } else {
                            0.0
                        };
                        let bend = bstart + btransfer + bm.slot_seconds_for(ecu);
                        if bend < end {
                            // Backup wins. If it finishes before the
                            // original's slot even frees, the original is
                            // never launched; otherwise it is killed at
                            // `bend` and billed for the work it completed.
                            if bend > start {
                                let ran = (bend - start).clamp(0.0, end - start);
                                let frac = if end > start {
                                    ran / (end - start)
                                } else {
                                    1.0
                                };
                                machines[machine.0].occupy(slot, bend);
                                metrics.record_chunk(
                                    machine,
                                    ecu * frac,
                                    ran,
                                    m.cpu_dollars(ecu * frac),
                                    read_dollars,
                                    0.0,
                                    locality,
                                );
                            }
                            // The winner is the backup; fall through with
                            // its identity.
                            let bread = if mb > WORK_EPS {
                                mb * cluster.ms_cost(bm.id, source.unwrap())
                            } else {
                                0.0
                            };
                            machines[bi].occupy(bslot, bend);
                            let track_map = pj.phase == crate::job_state::JobPhase::Map
                                && pj.has_pending_reduce();
                            pj.consume(mb, fixed_ecu);
                            if track_map {
                                *map_ecu.entry((job, bm.id)).or_default() += ecu;
                            }
                            *running_total += 1;
                            metrics.record_chunk(
                                bm.id,
                                ecu,
                                bend - bstart,
                                bm.cpu_dollars(ecu),
                                bread,
                                0.0,
                                locality,
                            );
                            let chunk = fstate.register(RunningChunk {
                                job,
                                machine: bm.id,
                                start: bstart,
                                end: bend,
                                mb,
                                fixed_ecu,
                                ecu,
                                cpu_dollars: bm.cpu_dollars(ecu),
                                read: read_pair,
                                tracked_map: track_map,
                            });
                            events.push(
                                bend,
                                EventKind::ChunkDone {
                                    job,
                                    machine: bm.id,
                                    slot: bslot,
                                    chunk,
                                },
                            );
                            return Ok(());
                        } else {
                            // Original wins: the backup burns until `end`
                            // then is killed; bill its partial work.
                            let ran = (end - bstart).clamp(0.0, bend - bstart);
                            let frac = if bend > bstart {
                                ran / (bend - bstart)
                            } else {
                                0.0
                            };
                            machines[bi].occupy(bslot, end.max(bfree));
                            let bread = if mb > WORK_EPS {
                                mb * cluster.ms_cost(bm.id, source.unwrap())
                            } else {
                                0.0
                            };
                            metrics.record_chunk(
                                bm.id,
                                ecu * frac,
                                ran,
                                bm.cpu_dollars(ecu * frac),
                                bread,
                                0.0,
                                locality,
                            );
                        }
                    }
                }
                machines[machine.0].occupy(slot, end);
                let track_map =
                    pj.phase == crate::job_state::JobPhase::Map && pj.has_pending_reduce();
                pj.consume(mb, fixed_ecu);
                if track_map {
                    *map_ecu.entry((job, machine)).or_default() += ecu;
                }
                *running_total += 1;
                metrics.record_chunk(
                    machine,
                    ecu,
                    end - start,
                    m.cpu_dollars(ecu),
                    read_dollars,
                    0.0, // remote MB already tallied above
                    locality,
                );
                let chunk = fstate.register(RunningChunk {
                    job,
                    machine,
                    start,
                    end,
                    mb,
                    fixed_ecu,
                    ecu,
                    cpu_dollars: m.cpu_dollars(ecu),
                    read: read_pair,
                    tracked_map: track_map,
                });
                events.push(
                    end,
                    EventKind::ChunkDone {
                        job,
                        machine,
                        slot,
                        chunk,
                    },
                );
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lips_cluster::{ec2_20_node, MachineId};
    use lips_workload::{bind_workload, JobKind, JobSpec, PlacementPolicy};

    /// Minimal greedy policy for engine tests: first job with work goes to
    /// the machine co-located with its data (or machine 0), one natural
    /// task per free slot.
    struct LocalGreedy;

    impl Scheduler for LocalGreedy {
        fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
            let mut actions = Vec::new();
            for j in ctx.jobs_with_work() {
                if let Some(data) = j.data {
                    // Read from wherever the data is.
                    let (store, _) = ctx.placement.stores_of(data)[0];
                    let machine = ctx.cluster.store(store).colocated.unwrap_or(MachineId(0));
                    if ctx.machines[machine.0].free_slots(ctx.now) == 0 {
                        continue;
                    }
                    let mb = j.task_mb.min(j.remaining_mb);
                    actions.push(Action::RunChunk {
                        job: j.id,
                        machine,
                        source: Some(store),
                        mb,
                        fixed_ecu: 0.0,
                    });
                    return actions; // one action per invocation: re-invoked until quiet
                } else {
                    let machine = MachineId(j.id.0 % ctx.cluster.num_machines());
                    if ctx.machines[machine.0].free_slots(ctx.now) == 0 {
                        continue;
                    }
                    let ecu = j.task_fixed_ecu.min(j.remaining_fixed_ecu);
                    actions.push(Action::RunChunk {
                        job: j.id,
                        machine,
                        source: None,
                        mb: 0.0,
                        fixed_ecu: ecu,
                    });
                    return actions;
                }
            }
            actions
        }
        fn name(&self) -> &str {
            "local-greedy"
        }
    }

    fn run_simple(jobs: Vec<JobSpec>) -> SimReport {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap()
    }

    #[test]
    fn single_job_completes_with_costs() {
        let r = run_simple(vec![JobSpec::new(0, "g", JobKind::Grep, 640.0, 10)]);
        assert_eq!(r.outcomes.len(), 1);
        assert!(r.makespan > 0.0);
        assert!(r.metrics.cpu_dollars > 0.0);
        // All reads node-local -> no read dollars.
        assert_eq!(r.metrics.read_dollars, 0.0);
        assert_eq!(r.metrics.chunks_by_locality[0], 10);
        assert!((r.metrics.locality_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pi_job_runs_without_data() {
        let r = run_simple(vec![JobSpec::new(0, "pi", JobKind::Pi, 0.0, 4)]);
        assert_eq!(r.outcomes.len(), 1);
        assert_eq!(r.metrics.inputless_chunks, 4);
        assert_eq!(r.metrics.remote_read_mb, 0.0);
    }

    #[test]
    fn cpu_billing_matches_work() {
        // One grep, 640 MB at 20/64 ECU-s/MB = 200 ECU-s total.
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 640.0, 10)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let r = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let total_ecu: f64 = r.metrics.ecu_sec_by_machine.values().sum();
        assert!((total_ecu - 200.0).abs() < 1e-6);
        // All chunks ran on one machine at its price.
        let (mid, _) = r.metrics.ecu_sec_by_machine.iter().next().unwrap();
        let expect = cluster.machine(*mid).cpu_dollars(200.0);
        assert!((r.metrics.cpu_dollars - expect).abs() < 1e-9);
    }

    #[test]
    fn arrivals_are_honored() {
        let jobs = vec![
            JobSpec::new(0, "a", JobKind::Grep, 64.0, 1),
            JobSpec::new(1, "b", JobKind::Grep, 64.0, 1).arriving_at(500.0),
        ];
        let r = run_simple(jobs);
        let b = r.outcomes.iter().find(|o| o.id == JobId(1)).unwrap();
        assert!(b.arrival >= 500.0);
        assert!(b.completed > 500.0);
    }

    #[test]
    fn stalled_scheduler_is_detected() {
        struct Lazy;
        impl Scheduler for Lazy {
            fn decide(&mut self, _: &SchedulerContext<'_>) -> Vec<Action> {
                Vec::new()
            }
            fn name(&self) -> &str {
                "lazy"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let err = Simulation::new(&cluster, &workload)
            .run(&mut Lazy)
            .unwrap_err();
        assert_eq!(err, SimError::Stalled { unfinished: 1 });
    }

    #[test]
    fn over_assignment_rejected() {
        struct Greedy;
        impl Scheduler for Greedy {
            fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
                ctx.jobs_with_work()
                    .map(|j| Action::RunChunk {
                        job: j.id,
                        machine: MachineId(0),
                        source: Some(StoreId(0)),
                        mb: j.remaining_mb * 2.0, // too much
                        fixed_ecu: 0.0,
                    })
                    .collect()
            }
            fn name(&self) -> &str {
                "bad"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let err = Simulation::new(&cluster, &workload)
            .run(&mut Greedy)
            .unwrap_err();
        assert_eq!(err, SimError::OverAssignment(JobId(0)));
    }

    #[test]
    fn reading_from_empty_store_rejected() {
        struct WrongSource;
        impl Scheduler for WrongSource {
            fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
                ctx.jobs_with_work()
                    .take(1)
                    .map(|j| Action::RunChunk {
                        job: j.id,
                        machine: MachineId(0),
                        source: Some(StoreId(19)), // data is on store 0
                        mb: j.remaining_mb,
                        fixed_ecu: 0.0,
                    })
                    .collect()
            }
            fn name(&self) -> &str {
                "wrong-source"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let err = Simulation::new(&cluster, &workload)
            .run(&mut WrongSource)
            .unwrap_err();
        assert!(matches!(err, SimError::MissingData { .. }));
    }

    #[test]
    fn move_then_read_waits_for_arrival() {
        // Move the data cross-zone, then read it at the destination; the
        // read must start after the move completes.
        struct MoveThenRun {
            moved: bool,
        }
        impl Scheduler for MoveThenRun {
            fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
                let Some(j) = ctx.jobs_with_work().next() else {
                    return vec![];
                };
                let data = j.data.unwrap();
                if !self.moved {
                    self.moved = true;
                    return vec![Action::MoveData {
                        data,
                        from: StoreId(0),
                        to: StoreId(1), // zone b (machines round-robin zones)
                        mb: 64.0,
                    }];
                }
                if ctx.placement.amount(data, StoreId(1)) > 0.0 {
                    return vec![Action::RunChunk {
                        job: j.id,
                        machine: MachineId(1),
                        source: Some(StoreId(1)),
                        mb: j.remaining_mb,
                        fixed_ecu: 0.0,
                    }];
                }
                vec![]
            }
            fn name(&self) -> &str {
                "move-then-run"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let r = Simulation::new(&cluster, &workload)
            .run(&mut MoveThenRun { moved: false })
            .unwrap();
        // Move was billed (stores 0 and 1 are in different zones).
        assert!(r.metrics.move_dollars > 0.0);
        assert_eq!(r.metrics.moved_mb, 64.0);
        // The chunk could not start before the move's completion:
        // move takes 64 MB / cross-zone bandwidth ≈ 2.05 s.
        let move_time = 64.0 / cluster.bandwidth_store_store(StoreId(0), StoreId(1));
        assert!(r.makespan > move_time);
        // Read at destination was node-local: no read dollars.
        assert_eq!(r.metrics.read_dollars, 0.0);
        assert_eq!(r.metrics.chunks_by_locality[0], 1);
    }

    #[test]
    fn store_capacity_enforced() {
        struct BigMove;
        impl Scheduler for BigMove {
            fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
                let Some(j) = ctx.jobs_with_work().next() else {
                    return vec![];
                };
                vec![Action::MoveData {
                    data: j.data.unwrap(),
                    from: StoreId(0),
                    to: StoreId(1),
                    mb: 64.0,
                }]
            }
            fn name(&self) -> &str {
                "big-move"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        cluster.stores[1].capacity_mb = 10.0; // too small
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let err = Simulation::new(&cluster, &workload)
            .run(&mut BigMove)
            .unwrap_err();
        assert!(matches!(err, SimError::StoreOverflow { .. }));
    }

    #[test]
    fn makespan_equals_last_completion() {
        let r = run_simple(vec![
            JobSpec::new(0, "a", JobKind::Grep, 640.0, 10),
            JobSpec::new(1, "b", JobKind::Stress2, 640.0, 10),
        ]);
        let last = r
            .outcomes
            .iter()
            .map(|o| o.completed)
            .fold(0.0f64, f64::max);
        assert!((r.makespan - last).abs() < 1e-9);
    }

    #[test]
    fn stragglers_slow_the_run_but_not_the_bill() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 1280.0, 20)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let base = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let slow = Simulation::new(&cluster, &workload)
            .with_stragglers(1.0, 4.0, 9)
            .run(&mut LocalGreedy)
            .unwrap();
        assert!(
            slow.makespan > base.makespan * 2.0,
            "{} vs {}",
            slow.makespan,
            base.makespan
        );
        // Work-based billing is unchanged.
        assert!((slow.metrics.total_dollars() - base.metrics.total_dollars()).abs() < 1e-12);
    }

    #[test]
    fn straggler_injection_is_deterministic() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 1280.0, 20)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let a = Simulation::new(&cluster, &workload)
            .with_stragglers(0.5, 3.0, 42)
            .run(&mut LocalGreedy)
            .unwrap();
        let b = Simulation::new(&cluster, &workload)
            .with_stragglers(0.5, 3.0, 42)
            .run(&mut LocalGreedy)
            .unwrap();
        assert_eq!(a.makespan, b.makespan);
        let c = Simulation::new(&cluster, &workload)
            .with_stragglers(0.5, 3.0, 43)
            .run(&mut LocalGreedy)
            .unwrap();
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn final_placement_reflects_moves() {
        struct MoveOnly {
            done: bool,
        }
        impl Scheduler for MoveOnly {
            fn decide(&mut self, ctx: &SchedulerContext<'_>) -> Vec<Action> {
                let Some(j) = ctx.jobs_with_work().next() else {
                    return vec![];
                };
                let data = j.data.unwrap();
                if !self.done {
                    self.done = true;
                    return vec![Action::MoveData {
                        data,
                        from: StoreId(0),
                        to: StoreId(2),
                        mb: 32.0,
                    }];
                }
                vec![Action::RunChunk {
                    job: j.id,
                    machine: MachineId(0),
                    source: Some(StoreId(0)),
                    mb: j.remaining_mb,
                    fixed_ecu: 0.0,
                }]
            }
            fn name(&self) -> &str {
                "move-only"
            }
        }
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 64.0, 1)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let r = Simulation::new(&cluster, &workload)
            .run(&mut MoveOnly { done: false })
            .unwrap();
        let d = workload.jobs[0].data.unwrap();
        assert_eq!(r.final_placement.amount(d, StoreId(2)), 32.0);
        assert_eq!(r.final_placement.amount(d, StoreId(0)), 64.0);
    }

    #[test]
    fn interference_inflates_read_time_only() {
        // A 2-slot c1.medium reading two chunks concurrently: with
        // interference each read contends with the sibling.
        let mut cluster = lips_cluster::ec2_mixed_cluster(1, 1.0, 3600.0, 1);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 128.0, 2)];
        let workload = bind_workload(
            &mut cluster,
            jobs,
            PlacementPolicy::SingleStore(StoreId(0)),
            1,
        );
        let clean = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let noisy = Simulation::new(&cluster, &workload)
            .with_interference(1.0)
            .run(&mut LocalGreedy)
            .unwrap();
        assert!(
            noisy.makespan > clean.makespan,
            "{} vs {}",
            noisy.makespan,
            clean.makespan
        );
        // Billing is untouched by contention.
        assert_eq!(noisy.metrics.total_dollars(), clean.metrics.total_dollars());
    }

    #[test]
    fn zero_interference_is_identity() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 640.0, 10)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let a = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let b = Simulation::new(&cluster, &workload)
            .with_interference(0.0)
            .run(&mut LocalGreedy)
            .unwrap();
        assert_eq!(a.makespan, b.makespan);
    }

    #[test]
    fn reduce_phase_runs_after_maps_and_is_billed() {
        // WordCount with a reduce: 640 MB maps (200 ECU-s at grep tcp...
        // actually WordCount 90/64), shuffle 128 MB at 0.5 ECU-s/MB.
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs =
            vec![JobSpec::new(0, "wc", JobKind::WordCount, 640.0, 10).with_reduce(4, 128.0, 0.5)];
        let map_ecu = 640.0 * 90.0 / 64.0;
        let reduce_ecu = 128.0 * 0.5;
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let r = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        assert_eq!(r.outcomes.len(), 1);
        let executed: f64 = r.metrics.ecu_sec_by_machine.values().sum();
        assert!(
            (executed - (map_ecu + reduce_ecu)).abs() < 1e-6,
            "executed {executed} vs {}",
            map_ecu + reduce_ecu
        );
        // The shuffle object landed in the placement.
        let shuffle = DataId(cluster.num_data());
        let total_shuffle: f64 = r
            .final_placement
            .stores_of(shuffle)
            .iter()
            .map(|&(_, mb)| mb)
            .sum();
        assert!(
            (total_shuffle - 128.0).abs() < 1e-6,
            "shuffle {total_shuffle}"
        );
    }

    #[test]
    fn map_only_jobs_are_unaffected_by_reduce_support() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 640.0, 10)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let r = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let executed: f64 = r.metrics.ecu_sec_by_machine.values().sum();
        assert!((executed - 200.0).abs() < 1e-6);
    }

    #[test]
    fn reduce_completion_time_is_after_map_completion() {
        let _cluster = ec2_20_node(0.0, 3600.0);
        let with_reduce =
            vec![JobSpec::new(0, "wc", JobKind::WordCount, 640.0, 10).with_reduce(2, 640.0, 1.0)];
        let map_only = vec![JobSpec::new(0, "wc", JobKind::WordCount, 640.0, 10)];
        let mut c1 = ec2_20_node(0.0, 3600.0);
        let w1 = bind_workload(&mut c1, with_reduce, PlacementPolicy::RoundRobin, 1);
        let mut c2 = ec2_20_node(0.0, 3600.0);
        let w2 = bind_workload(&mut c2, map_only, PlacementPolicy::RoundRobin, 1);
        let r1 = Simulation::new(&c1, &w1).run(&mut LocalGreedy).unwrap();
        let r2 = Simulation::new(&c2, &w2).run(&mut LocalGreedy).unwrap();
        assert!(r1.makespan > r2.makespan);
    }

    #[test]
    fn speculation_trades_dollars_for_makespan_under_stragglers() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 2560.0, 40)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let base = Simulation::new(&cluster, &workload)
            .with_stragglers(0.3, 8.0, 5)
            .run(&mut LocalGreedy)
            .unwrap();
        let spec = Simulation::new(&cluster, &workload)
            .with_stragglers(0.3, 8.0, 5)
            .with_speculation(true)
            .run(&mut LocalGreedy)
            .unwrap();
        // The paper's §VI-A reasoning, quantified: speculative copies cost
        // extra dollars and buy completion time.
        assert!(
            spec.metrics.total_dollars() > base.metrics.total_dollars(),
            "spec {} vs base {}",
            spec.metrics.total_dollars(),
            base.metrics.total_dollars()
        );
        assert!(
            spec.makespan < base.makespan,
            "spec {} vs base {}",
            spec.makespan,
            base.makespan
        );
        assert_eq!(spec.outcomes.len(), 1);
    }

    #[test]
    fn speculation_without_stragglers_is_inert() {
        let mut cluster = ec2_20_node(0.0, 3600.0);
        let jobs = vec![JobSpec::new(0, "g", JobKind::Grep, 640.0, 10)];
        let workload = bind_workload(&mut cluster, jobs, PlacementPolicy::RoundRobin, 1);
        let a = Simulation::new(&cluster, &workload)
            .run(&mut LocalGreedy)
            .unwrap();
        let b = Simulation::new(&cluster, &workload)
            .with_speculation(true)
            .run(&mut LocalGreedy)
            .unwrap();
        assert_eq!(a.metrics.total_dollars(), b.metrics.total_dollars());
        assert_eq!(a.makespan, b.makespan);
    }
}
